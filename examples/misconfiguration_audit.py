#!/usr/bin/env python
"""Misconfiguration audit across the paper's 16 environments.

For every (OS, installer) environment of Table 1, takes the default
resolver configuration that installation produces, runs the 45
DNSSEC-secured domains (5 of them islands of security) through it, and
reports whether secured domains leak to the DLV registry — the Table 2
+ Table 3 story end to end.

Run:  python examples/misconfiguration_audit.py
"""

from repro.analysis import format_table
from repro.configs import all_environments
from repro.core import LeakageExperiment, standard_workload
from repro.workloads import Universe, UniverseParams, secured_domains


def audit_environment(env, specs, filler):
    universe = Universe(
        specs,
        UniverseParams(modulus_bits=256, registry_filler=filler),
    )
    config = env.default_config()
    experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
    result = experiment.run([spec.name for spec in specs])
    return {
        "environment": env.describe(),
        "validates": config.validation_machinery_active,
        "dlv": config.lookaside_enabled,
        "anchor": config.root_anchor_available,
        "leaked": result.leakage.leaked_count,
        "ad": result.authenticated_answers,
    }


def main() -> None:
    specs = secured_domains()
    filler = tuple(standard_workload(10).registry_filler(2000))
    rows = []
    for resolver in ("bind", "unbound"):
        for env in all_environments(resolver):
            rows.append(audit_environment(env, specs, filler))
    print(
        format_table(
            ["Environment", "Validates", "DLV", "Anchor", "Leaked", "AD answers"],
            [
                (
                    r["environment"],
                    "yes" if r["validates"] else "no",
                    "yes" if r["dlv"] else "no",
                    "yes" if r["anchor"] else "MISSING",
                    r["leaked"],
                    r["ad"],
                )
                for r in rows
            ],
            title="Default-configuration audit: 45 secured domains per environment",
        )
    )
    risky = [r for r in rows if r["leaked"] > 0]
    print(
        f"\n{len(risky)} of {len(rows)} environments leak DNSSEC-secured "
        f"domains out of the box — all of them BIND installs whose default "
        f"config enables look-aside without a usable trust anchor."
    )


if __name__ == "__main__":
    main()
