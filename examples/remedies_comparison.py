#!/usr/bin/env python
"""Side-by-side comparison of the paper's remedies (Section 6.2).

Runs the same 150-domain workload under vanilla DLV, TXT signalling,
Z-bit signalling, and privacy-preserving (hashed) DLV, then prints
leakage and cost for each — including the paper-style additive overhead
accounting and the fully-deployed totals.

Run:  python examples/remedies_comparison.py
"""

from repro.analysis import format_table
from repro.core import (
    Remedy,
    compare_all,
    standard_workload,
)
from repro.core.overhead import SignalingCost
from repro.core.setup import EXPERIMENT_MODULUS_BITS
from repro.dnscore import RRType
from repro.resolver import correct_bind_config
from repro.workloads import UniverseParams

SIZE = 150


def main() -> None:
    workload = standard_workload(SIZE)
    base_params = UniverseParams(
        modulus_bits=EXPERIMENT_MODULUS_BITS,
        registry_filler=tuple(workload.registry_filler(10000)),
    )
    runs = compare_all(
        workload.domains,
        workload.names(SIZE),
        correct_bind_config(),
        base_params,
        remedies=(Remedy.NONE, Remedy.TXT, Remedy.ZBIT, Remedy.HASHED),
    )
    rows = []
    for remedy, run in runs.items():
        result = run.result
        txt_cost = SignalingCost.of_query_type(result.capture, RRType.TXT)
        rows.append(
            (
                remedy.value,
                result.leakage.leaked_count,
                result.leakage.dlv_queries,
                result.authenticated_answers,
                f"{result.overhead.response_time:.1f}",
                f"{result.overhead.traffic_mb:.3f}",
                result.overhead.queries_issued,
                txt_cost.exchanges,
            )
        )
    print(
        format_table(
            [
                "Option", "Leaked", "DLV queries", "AD answers",
                "Time (s)", "Traffic (MB)", "Queries", "TXT exchanges",
            ],
            rows,
            title=f"Remedy comparison over {SIZE} popular domains",
        )
    )
    print(
        "\nTakeaways (matching the paper's Section 6.2):\n"
        "  * TXT and Z-bit signalling eliminate Case-2 leakage entirely;\n"
        "  * the Z bit is free (no extra packets), TXT costs ~1 cacheable\n"
        "    query per zone;\n"
        "  * hashed DLV keeps look-aside functional while exposing only\n"
        "    digests (see examples/dictionary_attack.py for its limits);\n"
        "  * islands of security still validate (AD count unchanged)."
    )


if __name__ == "__main__":
    main()
