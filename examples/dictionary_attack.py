#!/usr/bin/env python
"""Dictionary attack against privacy-preserving DLV (Section 6.2.4).

The hashed-DLV remedy replaces domain names with digests in look-aside
queries.  This example plays the registry operator: it captures the
hashed queries of a 120-domain browsing session, then tries to invert
them with dictionaries of increasing size and relevance.

Run:  python examples/dictionary_attack.py
"""

from repro.analysis import format_table
from repro.core import (
    DictionaryAttack,
    LeakageExperiment,
    Remedy,
    coverage_curve,
    resolver_config_for,
    standard_universe,
    standard_workload,
)
from repro.resolver import correct_bind_config

SIZE = 120


def main() -> None:
    workload = standard_workload(SIZE)
    universe = standard_universe(
        workload, filler_count=5000, registry_hashed=True
    )
    config = resolver_config_for(Remedy.HASHED, correct_bind_config())
    experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
    result = experiment.run(workload.names(SIZE))

    print(f"plaintext domains leaked:  {result.leakage.leaked_count}")
    attack = DictionaryAttack(universe.registry_origin, universe.registry_address)
    digests = attack.observed_digest_labels(result.capture)
    print(f"digests observed:          {len(digests)}")
    print(f"example digest query:      {digests[0]}.{universe.registry_origin.to_text()}\n")

    # An attacker with an irrelevant dictionary recovers nothing...
    decoys = standard_workload(SIZE, seed=909).names(SIZE)
    futile = attack.attack(result.capture, decoys)
    print(
        f"decoy dictionary ({len(decoys)} names): recovered "
        f"{futile.recovered_count} after {futile.hash_evaluations} hashes"
    )

    # ...but a targeted dictionary (the popular-domain list the queries
    # came from) recovers everything — the paper's caveat.
    targeted = workload.names(SIZE)
    rows = coverage_curve(
        attack, result.capture, targeted, checkpoints=(10, 30, 60, 120)
    )
    print()
    print(
        format_table(
            ["Dictionary size", "Recovered", "Recovery rate"],
            [
                (r["dictionary_size"], r["recovered"], f"{r['recovery_rate']:.0%}")
                for r in rows
            ],
            title="Targeted dictionary: recovery vs size",
        )
    )
    print(
        "\nConclusion (paper Section 6.2.4): hashing defeats a blind\n"
        "observer, but a determined adversary with a good candidate list\n"
        "still learns which *known* domains were queried — so the authors\n"
        "recommend combining it with the DLV-aware signalling remedies."
    )


if __name__ == "__main__":
    main()
