#!/usr/bin/env python
"""Build a custom scenario from a hand-written master file.

Demonstrates the zone text I/O plus the low-level building blocks: an
operator signs their zone ``shiny.dev`` but their registrar cannot
publish a DS record (an island of security, the exact situation DLV was
designed for).  We load the zone from master-file text, wire up a
miniature DNS world around it, deposit the trust anchor in the DLV
registry, and watch a validating resolver secure it off-path — while a
neighbouring unsigned domain leaks.

Run:  python examples/custom_zone_experiment.py
"""

from repro.crypto import KeyPool
from repro.dnscore import Name, RRType, ROOT
from repro.netsim import Network, ZeroLatency
from repro.resolver import (
    RecursiveResolver,
    TrustAnchor,
    TrustAnchorStore,
    correct_bind_config,
)
from repro.servers import AuthoritativeServer, DLVRegistryServer
from repro.zones import ZoneBuilder, standard_ns_hosts, zone_from_text, zone_to_text

ZONE_TEXT = """\
$ORIGIN shiny.dev.
$TTL 3600
shiny.dev.      3600 IN SOA ns1.shiny.dev. hostmaster.shiny.dev. 1 7200 3600 1209600 3600
shiny.dev.      3600 IN NS  ns1.shiny.dev.
shiny.dev.      3600 IN A   203.0.113.80
ns1.shiny.dev.  3600 IN A   203.0.113.53
www.shiny.dev.  3600 IN A   203.0.113.81
"""


def main() -> None:
    pool = KeyPool(seed=7, pool_size=8, modulus_bits=256)
    network = Network(latency=ZeroLatency())

    # 1. The operator's zone, from master-file text, then signed.
    shiny = zone_from_text(ZONE_TEXT)
    shiny_keys = pool.keys_for_zone(shiny.origin)
    shiny.sign(shiny_keys)
    print("loaded and signed the zone:\n")
    print(zone_to_text(shiny))

    # 2. A 'dev' TLD that does NOT publish shiny.dev's DS — the island.
    dev = ZoneBuilder(Name(["dev"]))
    dev.with_ns(standard_ns_hosts(Name(["dev"]), ["203.0.113.1"]))
    dev.delegate(Name.from_text("shiny.dev"), [(Name.from_text("ns1.shiny.dev"), "203.0.113.53")])
    dev.delegate(Name.from_text("plain.dev"), [(Name.from_text("ns1.plain.dev"), "203.0.113.54")])
    dev_zone = dev.signed(pool.keys_for_zone(Name(["dev"])))

    plain = ZoneBuilder(Name.from_text("plain.dev"))
    plain.with_ns(standard_ns_hosts(Name.from_text("plain.dev"), ["203.0.113.54"]))
    plain.with_address(Name.from_text("plain.dev"), ipv4="203.0.113.90")

    # 3. Root and the DLV registry (with shiny.dev's anchor deposited).
    registry_origin = Name.from_text("dlv.isc.org")
    registry_keys = pool.keys_for_zone(registry_origin)
    registry = DLVRegistryServer.build(
        origin=registry_origin,
        keyset=registry_keys,
        deposits={shiny.origin: shiny_keys},
    )
    root = ZoneBuilder(ROOT)
    root.with_ns([(Name.from_text("ns1.rootsrv.net"), "203.0.113.0")])
    root.delegate(Name(["dev"]), standard_ns_hosts(Name(["dev"]), ["203.0.113.1"]), child_keyset=pool.keys_for_zone(Name(["dev"])))
    root.delegate(Name(["org"]), standard_ns_hosts(Name(["org"]), ["203.0.113.2"]))
    org = ZoneBuilder(Name(["org"]))
    org.with_ns(standard_ns_hosts(Name(["org"]), ["203.0.113.2"]))
    org.delegate(Name.from_text("isc.org"), [(Name.from_text("ns1.isc.org"), "203.0.113.3")])
    isc = ZoneBuilder(Name.from_text("isc.org"))
    isc.with_ns(standard_ns_hosts(Name.from_text("isc.org"), ["203.0.113.3"]))
    isc.delegate(registry_origin, [(registry_origin.prepend("ns1"), "203.0.113.4")])
    root_keys = pool.keys_for_zone(ROOT)
    network.register("203.0.113.0", AuthoritativeServer([root.signed(root_keys)]))
    network.register("203.0.113.1", AuthoritativeServer([dev_zone]))
    network.register("203.0.113.2", AuthoritativeServer([org.build()]))
    network.register("203.0.113.3", AuthoritativeServer([isc.build()]))
    network.register("203.0.113.4", registry)
    network.register("203.0.113.53", AuthoritativeServer([shiny]))
    network.register("203.0.113.54", AuthoritativeServer([plain.build()]))

    # 4. A correctly configured validating resolver with DLV enabled.
    from repro.crypto import make_ds

    anchors = TrustAnchorStore()
    anchors.add(TrustAnchor(zone=ROOT, ds=make_ds(ROOT, root_keys.ksk.dnskey)))
    anchors.add(TrustAnchor(zone=registry_origin, dnskey=registry_keys.ksk.dnskey))
    resolver = RecursiveResolver(
        network=network,
        address="203.0.113.100",
        config=correct_bind_config(),
        root_hints=["203.0.113.0"],
        anchors=anchors,
    )
    network.register(resolver.address, resolver)

    for qname in ("www.shiny.dev", "plain.dev"):
        result = resolver.resolve(Name.from_text(qname), RRType.A)
        lookaside = result.lookaside
        print(
            f"{qname:16s} -> {result.rcode.name}, status={result.status.value}, "
            f"DLV queries={lookaside.queries_sent if lookaside else 0}, "
            f"anchored_at={lookaside.anchored_at.to_text() if lookaside and lookaside.anchored_at else '-'}"
        )
    print(
        "\nshiny.dev validates *securely* through its DLV deposit despite\n"
        "the missing DS; plain.dev (which never asked for any of this)\n"
        "was still reported to the registry — the paper's Case-2 leak."
    )


if __name__ == "__main__":
    main()
