#!/usr/bin/env python
"""Leakage growth and decay (Figs. 8/9) at example scale.

Sweeps the top-N popular domains for N in {100, 500, 2000} against a
correctly configured look-aside resolver and prints the leaked-domain
counts and proportions, visualising the aggressive-negative-caching
effect the paper identifies.

Run:  python examples/leakage_sweep.py
"""

from repro.analysis import (
    fig8_dlv_queries,
    fig9_leak_proportion,
    leakage_sweep,
)

SIZES = (100, 500, 2000)


def main() -> None:
    points = leakage_sweep(sizes=SIZES, filler_count=20000)
    _, fig8_text = fig8_dlv_queries(points)
    _, fig9_text = fig9_leak_proportion(points)
    print(fig8_text)
    print()
    print(fig9_text)
    print()
    print("Why the proportion decays: every 'No such name' from the")
    print("registry carries a validated NSEC record proving an entire")
    print("canonical-order *range* of names absent.  The resolver caches")
    print("these ranges aggressively (RFC 5074), so the more you query,")
    print("the more future look-aside queries are answered locally —")
    print("the registry still sees most of a small browsing session.")
    for point in points:
        print(
            f"  top-{point.domains:<6} leaked {point.leaked_domains:>5} "
            f"({point.proportion:.0%}), utility {point.utility:.2%}"
        )


if __name__ == "__main__":
    main()
