#!/usr/bin/env python
"""Quickstart: watch a DLV registry observe your browsing.

Builds a small simulated DNS world (root, TLDs, leaf zones, the
``dlv.isc.org`` registry), points a correctly configured validating
resolver at it, resolves a handful of popular domains, and prints what
the registry operator saw — the paper's Case-1/Case-2 leakage split.

Run:  python examples/quickstart.py
"""

from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.dnscore import RRType
from repro.resolver import correct_bind_config


def main() -> None:
    # 1. A seeded world: 50 popular domains, the calibrated registry.
    workload = standard_workload(50)
    universe = standard_universe(workload, filler_count=5000)

    # 2. A *correctly* configured BIND-style resolver: root trust anchor
    #    installed, dnssec-lookaside auto (the paper's Fig. 6 config).
    config = correct_bind_config()
    print(f"resolver config: {config.describe()}\n")

    # 3. Query every domain once from a stub, capturing all packets.
    experiment = LeakageExperiment(universe, config)
    result = experiment.run(workload.names(50))

    # 4. What did the DLV registry learn?
    leak = result.leakage
    print(f"domains queried:            {leak.domains_queried}")
    print(f"DLV queries at registry:    {leak.dlv_queries}")
    print(f"  Case-1 (deposited):       {leak.case1_queries}")
    print(f"  Case-2 (privacy leak):    {leak.case2_queries}")
    print(f"leaked domains:             {leak.leaked_count} "
          f"({leak.leaked_proportion:.0%} of what you browsed)")
    print(f"validation utility:         {leak.utility_fraction:.1%} "
          f"of DLV queries got a useful answer\n")

    print("a sample of what the registry operator saw:")
    for domain in sorted(leak.leaked_domains, key=str)[:10]:
        print(f"  {domain.to_text():40s} (no DLV record: pure leakage)")

    # 5. The registry had nothing to do with most of these domains:
    #    none of them even deployed DNSSEC.
    print(f"\nvalidation statuses: {result.status_counts}")
    print(f"simulated time: {result.overhead.response_time:.1f}s, "
          f"traffic {result.overhead.traffic_mb:.2f} MB, "
          f"{result.overhead.queries_issued} queries")
    a_queries = result.overhead.type_count(RRType.A)
    print(f"(of which {a_queries} were A queries)")


if __name__ == "__main__":
    main()
