"""The paper's 16 measurement environments (Table 1).

Eight operating-system releases × two installation methods (package
installer vs. manual source build), each carrying the resolver versions
the paper records and the default configuration that installation
produces on that OS family:

* Debian-family systems (Debian, Ubuntu) use ``apt-get``;
* Fedora-family systems (Fedora, CentOS) use ``yum``;
* manual installs behave identically everywhere (no config file).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

from ..resolver import ResolverConfig
from .bind import InstallMethod, config_from_install
from .unbound import UnboundInstall, config_from_unbound_install


class OsFamily(enum.Enum):
    DEBIAN = "debian"   # apt-get
    FEDORA = "fedora"   # yum


@dataclasses.dataclass(frozen=True)
class OperatingSystem:
    name: str
    family: OsFamily
    bind_package_version: str
    unbound_package_version: str


#: Table 1's rows: OS, package-installed versions; manual installs used
#: BIND 9.10.3 and Unbound 1.5.7 everywhere.
OPERATING_SYSTEMS: Tuple[OperatingSystem, ...] = (
    OperatingSystem("CentOS 6.7", OsFamily.FEDORA, "9.9.4", "1.4.20"),
    OperatingSystem("CentOS 7.1", OsFamily.FEDORA, "9.9.4", "1.4.29"),
    OperatingSystem("Debian 7", OsFamily.DEBIAN, "9.8.4", "1.4.17"),
    OperatingSystem("Debian 8", OsFamily.DEBIAN, "9.9.5", "1.4.22"),
    OperatingSystem("Fedora 21", OsFamily.FEDORA, "9.9.6", "1.5.7"),
    OperatingSystem("Fedora 22", OsFamily.FEDORA, "9.10.2", "1.5.7"),
    OperatingSystem("Ubuntu 12.04", OsFamily.DEBIAN, "9.9.5", "1.4.16"),
    OperatingSystem("Ubuntu 14.04", OsFamily.DEBIAN, "9.9.5", "1.4.22"),
)

MANUAL_BIND_VERSION = "9.10.3"
MANUAL_UNBOUND_VERSION = "1.5.7"


@dataclasses.dataclass(frozen=True)
class Environment:
    """One of the 16 (OS, installer) measurement hosts."""

    os: OperatingSystem
    manual_install: bool
    resolver: str  # "bind" or "unbound"

    @property
    def installer(self) -> str:
        if self.manual_install:
            return "manual"
        return "apt-get" if self.os.family is OsFamily.DEBIAN else "yum"

    @property
    def version(self) -> str:
        if self.resolver == "bind":
            return MANUAL_BIND_VERSION if self.manual_install else self.os.bind_package_version
        return (
            MANUAL_UNBOUND_VERSION
            if self.manual_install
            else self.os.unbound_package_version
        )

    def default_config(self) -> ResolverConfig:
        """The configuration this environment starts with out of the box."""
        if self.resolver == "bind":
            if self.manual_install:
                return config_from_install(InstallMethod.MANUAL)
            method = (
                InstallMethod.APT_GET
                if self.os.family is OsFamily.DEBIAN
                else InstallMethod.YUM
            )
            return config_from_install(method)
        if self.manual_install:
            return config_from_unbound_install(UnboundInstall.MANUAL_DEFAULT)
        return config_from_unbound_install(UnboundInstall.PACKAGE)

    def describe(self) -> str:
        return f"{self.os.name} / {self.installer} / {self.resolver} {self.version}"


def all_environments(resolver: str = "bind") -> List[Environment]:
    """The 16 hosts of Table 1 for one resolver implementation."""
    if resolver not in ("bind", "unbound"):
        raise ValueError("resolver must be 'bind' or 'unbound'")
    environments: List[Environment] = []
    for os_spec in OPERATING_SYSTEMS:
        for manual in (False, True):
            environments.append(
                Environment(os=os_spec, manual_install=manual, resolver=resolver)
            )
    return environments
