"""Unbound configuration model (paper Section 4.4).

Unbound has no explicit enable switches: DNSSEC validation exists iff an
``auto-trust-anchor-file`` is configured, and DLV iff a
``dlv-anchor-file`` is.  The paper credits this implicit style with
avoiding BIND's misconfiguration class: you cannot turn validation on
without simultaneously supplying the key material it needs, so the
"validation on, anchor missing" state is unrepresentable.
"""

from __future__ import annotations

import enum

from ..resolver import ResolverConfig, ResolverFlavor


class UnboundInstall(enum.Enum):
    #: Package install: root anchor set up by the package, DLV off.
    PACKAGE = "package"
    #: Manual install, statements left commented out: nothing enabled.
    MANUAL_DEFAULT = "manual-default"
    #: Manual install with both anchors uncommented (Fig. 7).
    MANUAL_CONFIGURED = "manual-configured"


def unbound_conf_for(install: UnboundInstall) -> str:
    """The unbound.conf fragment each scenario uses (paper Fig. 7)."""
    if install is UnboundInstall.PACKAGE:
        return (
            "server:\n"
            '    auto-trust-anchor-file: "/var/lib/unbound/root.key"\n'
        )
    if install is UnboundInstall.MANUAL_DEFAULT:
        return (
            "server:\n"
            '    # auto-trust-anchor-file: "/usr/local/etc/unbound/root.key"\n'
            '    # dlv-anchor-file: "dlv.isc.org.key"\n'
        )
    return (
        "server:\n"
        '    auto-trust-anchor-file: "/usr/local/etc/unbound/root.key"\n'
        '    dlv-anchor-file: "dlv.isc.org.key"\n'
    )


def config_from_unbound_install(install: UnboundInstall) -> ResolverConfig:
    """Behavioural config for an Unbound installation.

    The invariant (and the point of Section 4.4): in Unbound,
    ``trust_anchor_included`` and validation are the same switch, so the
    leaky "validating without an anchor" state cannot arise.
    """
    if install is UnboundInstall.PACKAGE:
        return ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=True,
            dlv_anchor_included=False,
        )
    if install is UnboundInstall.MANUAL_DEFAULT:
        return ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=False,
            dlv_anchor_included=False,
        )
    return ResolverConfig(
        flavor=ResolverFlavor.UNBOUND,
        trust_anchor_included=True,
        dlv_anchor_included=True,
    )
