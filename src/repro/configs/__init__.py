"""Resolver configuration models: BIND/Unbound defaults and the 16
measurement environments of the paper's Table 1."""

from .bind import (
    AptGetVariant,
    InstallMethod,
    config_from_install,
    named_conf_for,
)
from .environments import (
    Environment,
    MANUAL_BIND_VERSION,
    MANUAL_UNBOUND_VERSION,
    OPERATING_SYSTEMS,
    OperatingSystem,
    OsFamily,
    all_environments,
)
from .unbound import (
    UnboundInstall,
    config_from_unbound_install,
    unbound_conf_for,
)

__all__ = [
    "AptGetVariant",
    "Environment",
    "InstallMethod",
    "MANUAL_BIND_VERSION",
    "MANUAL_UNBOUND_VERSION",
    "OPERATING_SYSTEMS",
    "OperatingSystem",
    "OsFamily",
    "UnboundInstall",
    "all_environments",
    "config_from_install",
    "config_from_unbound_install",
    "named_conf_for",
    "unbound_conf_for",
]
