"""BIND installation models: default configs per installer (Section 4.3).

The paper finds that BIND's *default* configuration differs by
installation method, and that two of the three defaults contradict the
BIND Administrator Reference Manual (ARM):

* ``apt-get`` (Debian/Ubuntu): ``dnssec-validation auto`` only — DLV is
  absent and the DLV trust anchor is not included (non-ARM default);
* ``yum`` (Fedora/CentOS): validation ``yes``, ``dnssec-lookaside
  auto``, and ``include "/etc/bind.keys"`` — DLV enabled *by default*
  (contradicts the ARM, which says DLV defaults to off);
* manual (source build): **no configuration file at all** — the operator
  writes one, typically following the ARM, and the trust-anchor include
  is the step that gets forgotten.

:func:`named_conf_for` reproduces the Fig. 4-6 file contents;
:func:`config_from_install` maps an installation (plus optional operator
edits) to the behavioural :class:`~repro.resolver.ResolverConfig`.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..resolver import (
    LookasideSetting,
    ResolverConfig,
    ResolverFlavor,
    ValidationSetting,
)


class InstallMethod(enum.Enum):
    APT_GET = "apt-get"
    YUM = "yum"
    MANUAL = "manual"


class AptGetVariant(enum.Enum):
    """The paper's apt-get scenarios."""

    #: Pure distro default: dnssec-validation auto, no DLV.
    DEFAULT = "default"
    #: Table 3's `apt-get†`: the operator read the ARM and changed
    #: dnssec-validation to ``yes`` and enabled DLV — but the anchor
    #: include line is still missing.
    ARM_EDITED = "arm-edited"


def named_conf_for(method: InstallMethod, arm_edited: bool = False) -> str:
    """The named.conf.options content each installation produces
    (paper Figs. 4, 5, 6)."""
    if method is InstallMethod.APT_GET and not arm_edited:
        return (
            "options {\n"
            "    dnssec-validation auto;\n"
            "};\n"
        )
    if method is InstallMethod.APT_GET and arm_edited:
        return (
            "options {\n"
            "    dnssec-enable yes;\n"
            "    dnssec-validation yes;\n"
            "    dnssec-lookaside auto;\n"
            "};\n"
        )
    if method is InstallMethod.YUM:
        return (
            "options {\n"
            "    dnssec-enable yes;\n"
            "    dnssec-validation yes;\n"
            "    dnssec-lookaside auto;\n"
            "};\n"
            'include "/etc/bind.keys";\n'
        )
    # Manual install: Fig. 6 is the *correct* config an expert writes.
    return (
        "options {\n"
        "    dnssec-enable yes;\n"
        "    dnssec-validation yes;\n"
        "    dnssec-lookaside auto;\n"
        "};\n"
        'include "/etc/bind.keys";  // frequently forgotten\n'
    )


def config_from_install(
    method: InstallMethod,
    arm_edited: bool = False,
    anchor_included: Optional[bool] = None,
) -> ResolverConfig:
    """Behavioural config for a BIND installation.

    ``anchor_included`` overrides the installation's default
    trust-anchor state (e.g. a careful operator adding the include line
    after a manual install).
    """
    if method is InstallMethod.APT_GET and not arm_edited:
        # dnssec-validation auto uses the built-in anchor; no DLV.
        return ResolverConfig(
            flavor=ResolverFlavor.BIND,
            dnssec_enable=True,
            dnssec_validation=ValidationSetting.AUTO,
            dnssec_lookaside=LookasideSetting.NO,
            trust_anchor_included=False if anchor_included is None else anchor_included,
            dlv_anchor_included=True,
        )
    if method is InstallMethod.APT_GET and arm_edited:
        # Table 3's apt-get†: validation yes + DLV on, anchor missing.
        return ResolverConfig(
            flavor=ResolverFlavor.BIND,
            dnssec_enable=True,
            dnssec_validation=ValidationSetting.YES,
            dnssec_lookaside=LookasideSetting.AUTO,
            trust_anchor_included=False if anchor_included is None else anchor_included,
            dlv_anchor_included=True,
        )
    if method is InstallMethod.YUM:
        # bind.keys included by default: anchor present, DLV on.
        return ResolverConfig(
            flavor=ResolverFlavor.BIND,
            dnssec_enable=True,
            dnssec_validation=ValidationSetting.YES,
            dnssec_lookaside=LookasideSetting.AUTO,
            trust_anchor_included=True if anchor_included is None else anchor_included,
            dlv_anchor_included=True,
        )
    # Manual: DNSSEC on by default, anchor must be included by hand —
    # the paper's scenario is that it is not.
    return ResolverConfig(
        flavor=ResolverFlavor.BIND,
        dnssec_enable=True,
        dnssec_validation=ValidationSetting.YES,
        dnssec_lookaside=LookasideSetting.AUTO,
        trust_anchor_included=False if anchor_included is None else anchor_included,
        dlv_anchor_included=True,
    )
