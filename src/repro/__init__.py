"""Reproduction of "Privacy Implications of DNSSEC Look-Aside Validation".

A pure-Python DNS/DNSSEC/DLV simulator and measurement framework that
reproduces the leakage experiments, root-cause analysis, and remedy
evaluations of Mohaisen et al. (ICDCS 2017 / IEEE TDSC 2018).

Layers, bottom to top:

* :mod:`repro.dnscore`   — names, records, messages, wire format.
* :mod:`repro.crypto`    — textbook RSA, DNSSEC keys, DS digests, NSEC3.
* :mod:`repro.netsim`    — simulated clock, latency, network, capture.
* :mod:`repro.zones`     — zone model and DNSSEC signer.
* :mod:`repro.servers`   — authoritative servers and the DLV registry.
* :mod:`repro.resolver`  — recursive resolver with DNSSEC validation and
  RFC 5074 look-aside, including aggressive negative caching.
* :mod:`repro.configs`   — BIND/Unbound behavioural configuration models
  and the paper's 16 measurement environments.
* :mod:`repro.workloads` — synthetic Alexa-like domains, the Huque-45
  secured set, DITL-style traces, and the Universe builder.
* :mod:`repro.core`      — the paper's contribution: leakage
  classification, experiments, remedies, overhead, dictionary attacks.
* :mod:`repro.analysis`  — regeneration of every table and figure.
"""

__version__ = "1.0.0"
