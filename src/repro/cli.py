"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — what this package reproduces, and the module map.
* ``quickstart`` — a small end-to-end leakage run (like the example).
* ``sweep``    — the Fig 8/9 leakage sweep at chosen sizes.
* ``tables``   — regenerate Tables 1-5.
* ``report``   — the full reproduction report (every table and figure).
* ``attack``   — the remedy-tampering and enumeration demonstrations.
* ``trace``    — resolve one name fully instrumented and render the
  span tree, per-observer leak summary, and metric counters.
* ``profile``  — cProfile one fig8-style cell (optionally cache-warm or
  with hot-path caches disabled) and report the hot functions plus
  cache statistics.
* ``store``    — inspect the crash-safe sweep result store:
  ``ls`` committed cells, ``verify`` payload + fingerprint integrity,
  ``gc`` temp/corrupt/stale-version/lease files.
* ``work``     — join a distributed sweep as one worker: claim cells
  from a shared store under the lease discipline, take over dead
  peers' cells, exit when the board is drained.

Exit-code contract (``sweep``, ``store``, ``work``): 0 success,
1 corruption/incomplete, 2 usage error, 3 cells quarantined.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from . import __version__


def _cmd_info(args: argparse.Namespace) -> int:
    print(
        f"repro {__version__} — reproduction of 'Privacy Implications of\n"
        "DNSSEC Look-Aside Validation' (Mohaisen et al., ICDCS 2017).\n\n"
        "A pure-Python DNS/DNSSEC/DLV simulator measuring how DLV-enabled\n"
        "resolvers leak user queries to look-aside registries, plus the\n"
        "paper's remedies (TXT/Z-bit signalling, hashed DLV).\n\n"
        "Layers: dnscore, crypto, netsim, zones, servers, resolver,\n"
        "configs, workloads, core, analysis.  See DESIGN.md and\n"
        "EXPERIMENTS.md in the repository root."
    )
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .core import LeakageExperiment, standard_universe, standard_workload
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)
    universe = standard_universe(workload, filler_count=args.filler)
    experiment = LeakageExperiment(universe, correct_bind_config())
    result = experiment.run(workload.names(args.domains))
    print(result.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from .analysis import (
        fig8_dlv_queries,
        fig9_leak_proportion,
        leakage_sweep,
        sharded_leakage_sweep,
    )

    sizes = [int(part) for part in args.sizes.split(",")]
    store = None
    outcomes: list = []
    if args.resume and not args.store:
        print("--resume requires --store DIR", file=sys.stderr)
        return 2
    if args.store:
        from .core import ResultStore

        if args.resume and not os.path.isdir(args.store):
            print(
                f"--resume: store '{args.store}' does not exist "
                "(nothing to resume)",
                file=sys.stderr,
            )
            return 2
        store = ResultStore(args.store)
    if args.distributed is not None:
        if store is None:
            print("--distributed requires --store DIR", file=sys.stderr)
            return 2
        return _run_distributed_sweep(args, sizes)
    if args.parallelism > 1 or args.shards is not None or store is not None:
        shards = args.shards if args.shards is not None else args.parallelism
        executor = None
        if args.executor == "serial":
            from .core import SerialExecutor

            executor = SerialExecutor()
        points = sharded_leakage_sweep(
            sizes=sizes,
            filler_count=args.filler,
            shards=shards,
            parallelism=args.parallelism,
            executor=executor,
            store=store,
            fail_fast=args.fail_fast,
            timeout=args.timeout,
            retries=args.retries,
            outcomes=outcomes,
        )
        print(
            f"sharded sweep: {shards} shard(s), "
            f"{args.parallelism} worker(s), executor={args.executor}"
            + (f", store={args.store}" if store is not None else "")
        )
        print()
    else:
        points = leakage_sweep(sizes=sizes, filler_count=args.filler)
    print(fig8_dlv_queries(points)[1])
    print()
    print(fig9_leak_proportion(points)[1])
    quarantined = [cell for outcome in outcomes for cell in outcome.quarantined]
    if outcomes:
        reused = sum(outcome.cells_reused for outcome in outcomes)
        rerun = sum(outcome.cells_rerun for outcome in outcomes)
        print()
        print(
            f"store: {reused} cell(s) reused, {rerun} re-run, "
            f"{len(quarantined)} quarantined"
            + (
                f", {store.stats.corrupt_detected} corrupt detected"
                if store is not None and store.stats.corrupt_detected
                else ""
            )
        )
    if quarantined:
        print("quarantined cells (affected points are partial):")
        for cell in quarantined:
            print(f"  - {cell.describe()}")
        return 3
    return 0


def _run_distributed_sweep(args: argparse.Namespace, sizes: List[int]) -> int:
    """The ``repro sweep --distributed N`` coordinator path."""
    from .analysis import fig8_dlv_queries, fig9_leak_proportion
    from .analysis.figures import LeakageSweepPoint
    from .core.distrib import run_distributed_sweep

    outcome = run_distributed_sweep(
        args.store,
        workers=args.distributed,
        sizes=sizes,
        filler_count=args.filler,
        shards=args.shards,
        ttl=args.lease_ttl,
        retries=args.retries,
    )
    print(
        f"distributed sweep: {args.distributed} worker(s), "
        f"store={args.store}"
    )
    print(f"  {outcome.describe()}")
    for worker_id, code in sorted(outcome.worker_exits.items()):
        print(f"  worker {worker_id}: exit {code}")
    print()
    points = [
        LeakageSweepPoint(
            domains=size,
            dlv_queries=result.leakage.dlv_queries,
            leaked_domains=result.leakage.leaked_count,
            proportion=result.leakage.leaked_count / size if size else 0.0,
            utility=result.leakage.utility_fraction,
        )
        for size, result in zip(sorted(sizes), outcome.stage_results)
    ]
    print(fig8_dlv_queries(points)[1])
    print()
    print(fig9_leak_proportion(points)[1])
    if outcome.quarantined:
        print("\nquarantined cells (affected points are partial):")
        for cell in outcome.quarantined:
            print(f"  - {cell.describe()}")
        return 3
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from .core import ResultStore
    from .core.distrib import (
        WorkerFault,
        load_sweep_manifest,
        read_marker,
        run_worker,
    )

    fault = None
    if args.die_after_claims is not None or args.stall_after_claims is not None:
        fault = WorkerFault(
            die_after_claims=args.die_after_claims,
            stall_after_claims=args.stall_after_claims,
            stall_seconds=args.stall_seconds,
        )
    report = run_worker(
        args.store,
        args.worker_id,
        ttl=args.ttl,
        retries=args.retries,
        poll_interval=args.poll_interval,
        max_takeovers=args.max_takeovers,
        fault=fault,
    )
    # The exit-code contract is judged against the *board*, not just
    # this worker: peers' quarantines leave the sweep incomplete too.
    store = ResultStore(args.store)
    manifest = load_sweep_manifest(store)
    missing = 0
    quarantined = 0
    for cell in manifest.cells():
        digest = cell.key.digest()
        if store.path_for(digest).exists():
            continue
        if read_marker(store.quarantine_path_for(digest)) is not None:
            quarantined += 1
        else:
            missing += 1
    if args.json:
        import json as json_module

        payload = report.as_dict()
        payload["board"] = {"missing": missing, "quarantined": quarantined}
        print(json_module.dumps(payload, sort_keys=True))
    else:
        stats = report.stats
        print(
            f"worker {args.worker_id}: {stats.committed} committed, "
            f"{stats.claims} claim(s), {stats.takeovers} takeover(s), "
            f"{stats.duplicates} duplicate(s), "
            f"{stats.quarantined} quarantined"
        )
        if quarantined or missing:
            print(
                f"board: {quarantined} cell(s) quarantined, "
                f"{missing} missing"
            )
    if missing:
        return 1
    if quarantined:
        return 3
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import ResultStore

    store = ResultStore(args.root)
    if args.action == "ls":
        rows = []
        for entry in store.entries():
            key = entry.header.get("key", {}).get("fields", {})
            extra = dict(key.get("extra", ()) or [])
            rows.append(
                (
                    entry.digest[:12],
                    key.get("kind", "?"),
                    key.get("code_version", "?"),
                    str(key.get("seed", "?")),
                    f"{key.get('shard_index', '?')}/{key.get('shard_count', '?')}",
                    str(extra.get("trace", "?")),
                    f"{entry.path.stat().st_size}",
                )
            )
        print(
            format_table(
                ["cell", "kind", "version", "seed", "shard", "trace", "bytes"],
                rows,
                title=f"store {args.root}: {len(rows)} committed cell(s)",
            )
        )
        return 0
    if args.action == "verify":
        report = store.verify()
        print(
            f"verified {report.checked} cell(s): {report.ok} ok, "
            f"{len(report.corrupt)} corrupt"
        )
        for path in report.corrupt:
            print(f"  corrupt (quarantined to *.corrupt): {path}")
        return 0 if report.clean else 1
    if args.action == "gc":
        removed = store.gc(all_versions=args.all_versions)
        leases = (
            removed["lease_orphaned"]
            + removed["lease_expired"]
            + removed["lease_corrupt"]
            + removed["lease_stale"]
        )
        print(
            f"gc: removed {removed['tmp']} temp, {removed['corrupt']} "
            f"corrupt, {removed['stale']} stale-version, "
            f"{leases} lease file(s) "
            f"({removed['lease_orphaned']} orphaned, "
            f"{removed['lease_expired']} expired, "
            f"{removed['lease_corrupt']} corrupt, "
            f"{removed['lease_stale']} rename remnant) "
            f"({removed['bytes']} bytes)"
        )
        return 0
    raise AssertionError(f"unknown store action {args.action!r}")


def _window_json(window) -> dict:
    """Availability-extended window counters for ``--json`` output."""
    return {
        "queries": window.queries,
        "failures": window.failures,
        "servfail_rate": window.servfail_rate,
        "timeout_rate": window.timeout_rate,
        "leak_rate": window.leak_rate,
        "case2_queries": window.case2_queries,
        "leaked_domains": len(window.leaked_domains),
        "retries": window.retries,
        "stale_served": window.stale_served,
        "admission_queued": window.admission_queued,
        "admission_rejected": window.admission_rejected,
        "latency_p50": window.latency_p50,
        "latency_p99": window.latency_p99,
        "cache_hit_rate": window.cache_hit_rate,
    }


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    """The --chaos / --adversary modes of `repro replay`."""
    import json as json_module

    from .core import (
        ReplayLoad,
        deploy_poisoner,
        deploy_referral_bomber,
        deploy_sig_bomber,
        deploy_spoofer,
        registry_outage_scenario,
        run_adversary_replay,
        run_chaos_replay,
        standard_universe,
        standard_workload,
    )
    from .dnscore import RCode
    from .resolver import DlvOutagePolicy, correct_bind_config

    workload = standard_workload(args.domains, seed=args.seed)
    universe = standard_universe(
        workload, filler_count=args.filler, seed=args.seed
    )
    names = [spec.name for spec in workload.domains]
    load = ReplayLoad(
        users=args.users,
        per_user_qps=args.per_user_qps,
        queries=args.queries,
        window_seconds=args.window,
        max_concurrent=args.max_inflight,
        max_queue=args.max_queue,
        seed=args.seed,
    )
    policies = {
        "fallback": correct_bind_config(),
        "strict": correct_bind_config(
            dlv_outage_policy=DlvOutagePolicy.SERVFAIL
        ),
        "stale": dataclasses.replace(correct_bind_config(), serve_stale=True),
    }
    config = policies[args.policy]

    def on_window(window) -> None:
        if not args.json:
            print("  " + window.describe())

    if args.adversary:
        personas = {
            "spoofer": lambda u: deploy_spoofer(u, seed=args.seed),
            "poisoner": lambda u: deploy_poisoner(
                u, victims=names[: min(5, len(names))], seed=args.seed
            ),
            "referral-bomber": lambda u: deploy_referral_bomber(
                u, seed=args.seed
            ),
            "sig-bomber": lambda u: deploy_sig_bomber(u, seed=args.seed),
        }
        result = run_adversary_replay(
            universe,
            config,
            names,
            adversary=personas[args.adversary],
            adversary_label=args.adversary,
            policy_label=args.policy,
            load=load,
            progress=on_window,
        )
    else:
        rcode = None if args.fault_rcode == "blackhole" else RCode.SERVFAIL
        result = run_chaos_replay(
            universe,
            config,
            names,
            scenario=registry_outage_scenario(
                rcode=rcode, start=args.fault_start, end=args.fault_end
            ),
            scenario_label=f"registry-{args.fault_rcode}",
            policy_label=args.policy,
            load=load,
            progress=on_window,
        )
    if args.json:
        payload = {
            "scenario": result.scenario,
            "adversary": result.adversary,
            "policy": result.policy,
            "users": load.users,
            "fault_bounds": result.fault_bounds,
            "overall": _window_json(result.overall),
            "during_fault": _window_json(result.during_fault()),
            "after_fault": _window_json(result.after_fault()),
            "responses_forged": result.responses_forged,
            "poisoned_cache_entries": result.poisoned_cache_entries,
            "upstream_sends": result.upstream_sends,
            "windows": len(result.windows),
            "wall_seconds": result.wall_seconds,
        }
        print(json_module.dumps(payload, sort_keys=True))
    else:
        print(result.describe())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .core import ReplayParams, run_population_replay

    if args.chaos or args.adversary:
        return _cmd_chaos_replay(args)

    params = ReplayParams(
        users=args.users,
        queries=args.queries,
        domains=args.domains,
        registry_filler=args.filler,
        per_user_qps=args.per_user_qps,
        window_seconds=args.window,
        max_concurrent=args.max_inflight,
        max_queue=args.max_queue,
        seed=args.seed,
    )

    def on_window(window) -> None:
        if not args.json:
            print("  " + window.describe())

    if not args.json:
        print(
            f"replaying {params.queries} queries from {params.users} "
            f"concurrent users (window {params.window_seconds:,.0f}s, "
            f"max in-flight {params.max_concurrent})"
        )
    result = run_population_replay(params, progress=on_window)
    if args.json:
        import json as json_module

        overall = result.overall
        payload = {
            "users": params.users,
            "queries": overall.queries,
            "failures": overall.failures,
            "simulated_seconds": result.simulated_seconds,
            "simulated_qps": result.simulated_qps,
            "replay_rate": result.replay_rate,
            "wall_seconds": result.wall_seconds,
            "dlv_queries": overall.dlv_queries,
            "case1_queries": overall.case1_queries,
            "case2_queries": overall.case2_queries,
            "leaked_domains": len(overall.leaked_domains),
            "leak_rate": overall.leak_rate,
            "cache_hit_rate": overall.cache_hit_rate,
            "mean_latency": overall.mean_latency,
            "peak_in_flight": result.scheduler.peak_active,
            "admission_queued": result.scheduler.queued,
            "windows": len(result.windows),
        }
        print(json_module.dumps(payload, sort_keys=True))
    else:
        print(result.describe())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .analysis import (
        table1_environments,
        table2_config_variations,
        table3_secured_domains,
        table4_query_types,
        table5_txt_overhead,
    )

    print(table1_environments()[1], end="\n\n")
    print(table2_config_variations()[1], end="\n\n")
    print(table3_secured_domains(filler_count=2000)[1], end="\n\n")
    sizes = [int(part) for part in args.sizes.split(",")]
    print(table4_query_types(sizes=sizes, filler_count=args.filler)[1], end="\n\n")
    print(table5_txt_overhead(sizes=sizes, filler_count=args.filler)[1])
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import ReportScale, build_report

    scale = {
        "paper": ReportScale.paper,
        "quick": ReportScale.quick,
        "tiny": ReportScale.tiny,
    }[args.scale]()
    text = build_report(scale)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import (
        LeakageExperiment,
        NsecZoneWalker,
        interpose_tampering,
        standard_universe,
        standard_workload,
    )
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)

    # 1. Z-bit tampering re-opens the leak.
    universe = standard_universe(
        workload, filler_count=args.filler, deploy_zbit_signal=True
    )
    for address in universe.hosting_addresses():
        interpose_tampering(universe.network, address, force_z_bit=True)
    experiment = LeakageExperiment(
        universe, correct_bind_config(zbit_signaling=True), ptr_fraction=0.0
    )
    tampered = experiment.run(workload.names(args.domains))

    # 2. NSEC zone walk enumerates the registry.
    walk_universe = standard_universe(workload, filler_count=min(args.filler, 2000))
    walker = NsecZoneWalker(
        walk_universe.network,
        walk_universe.registry_address,
        walk_universe.registry_origin,
    )
    walk = walker.walk()

    print(
        format_table(
            ["Attack", "Result"],
            [
                (
                    "Z-bit MITM vs zbit remedy",
                    f"{tampered.leakage.leaked_count} domains leaked "
                    f"(remedy bypassed)",
                ),
                (
                    "NSEC zone walk",
                    f"enumerated {walk_universe.registry_zone.deposit_count()} "
                    f"registry entries in {walk.queries_sent} queries",
                ),
            ],
            title="Attack demonstrations (paper Sections 6.2.3 and 7.3)",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import (
        LeakageExperiment,
        MetricsRegistry,
        Tracer,
        export_traces_jsonl,
        observer_trace_summary,
        render_span_tree,
        standard_universe,
        standard_workload,
    )
    from .dnscore import Name
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)
    universe = standard_universe(
        workload, filler_count=args.filler, registry_hashed=args.hashed
    )
    if args.qname:
        qname = Name.from_text(args.qname)
    else:
        # Default to the first signed domain without a DLV deposit: its
        # look-aside search is guaranteed to come up empty, producing
        # the Case-2 leak the trace is meant to show.
        qname = next(
            (
                spec.name
                for spec in workload.domains
                if not spec.dlv_deposited
            ),
            workload.domains[0].name,
        )
    experiment = LeakageExperiment(
        universe,
        correct_bind_config(),
        ptr_fraction=0.0,
        tracer=Tracer(universe.clock),
        metrics=MetricsRegistry(),
    )
    result = experiment.run([qname])
    for root in result.traces:
        print(render_span_tree(root))
        print()
    summaries = observer_trace_summary(result.traces)
    if summaries:
        print("Observer exposure (who saw what):")
        for summary in summaries:
            print("  " + summary.describe())
            for leaked in summary.leaked_qnames:
                print(f"    leaked: {leaked}")
        print()
    if result.metrics:
        print("Counters:")
        for name, value in result.metrics["counters"].items():
            print(f"  {name} = {value}")
        histograms = result.metrics["histograms"]
        if histograms:
            print("Histograms:")
            for name, stats in histograms.items():
                print(
                    f"  {name}: count={stats['count']} mean={stats['mean']:.4f} "
                    f"min={stats['min']:.4f} max={stats['max']:.4f}"
                )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(export_traces_jsonl(result.traces))
        print(f"\ntraces written to {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from . import perf
    from .core import LeakageExperiment, standard_universe, standard_workload
    from .resolver import correct_bind_config

    if args.uncached:
        perf.set_caches_enabled(False)
    if args.warm:
        # One untimed cell first, so the profile shows steady-state
        # (memo-hit) behaviour rather than cache fill.
        workload = standard_workload(args.domains)
        universe = standard_universe(workload, filler_count=args.filler)
        LeakageExperiment(universe, correct_bind_config()).run(
            workload.names(args.domains)
        )
    profiler = cProfile.Profile()
    profiler.enable()
    workload = standard_workload(args.domains)
    universe = standard_universe(workload, filler_count=args.filler)
    experiment = LeakageExperiment(universe, correct_bind_config())
    experiment.run(workload.names(args.domains))
    profiler.disable()
    if args.output:
        profiler.dump_stats(args.output)
        print(f"profile written to {args.output} (inspect with pstats/snakeviz)")
    else:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.limit)
    cache_lines = perf.hotpath_cache_stats()
    if cache_lines:
        print("Hot-path caches:")
        for name, stats_dict in cache_lines.items():
            rendered = " ".join(f"{k}={v}" for k, v in stats_dict.items())
            print(f"  {name}: {rendered}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNSSEC look-aside validation privacy-leak reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="package overview").set_defaults(
        func=_cmd_info
    )

    quickstart = subparsers.add_parser("quickstart", help="small end-to-end run")
    quickstart.add_argument("--domains", type=int, default=100)
    quickstart.add_argument("--filler", type=int, default=20000)
    quickstart.set_defaults(func=_cmd_quickstart)

    exit_contract = (
        "exit codes:\n"
        "  0  success — every cell ran (or was reused) cleanly\n"
        "  1  corruption — verification found corrupt cells / the board\n"
        "     was left incomplete\n"
        "  2  usage error (bad flag combination, missing store)\n"
        "  3  quarantine — some cells were quarantined; healthy output\n"
        "     was still produced but the affected points are partial"
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="Fig 8/9 leakage sweep",
        epilog=exit_contract,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("--sizes", default="100,1000")
    sweep.add_argument("--filler", type=int, default=20000)
    sweep.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker processes for the sharded runner (default 1: the "
        "incremental serial sweep)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        help="shard count (default: --parallelism); pin it while varying "
        "--parallelism for byte-identical output across worker counts",
    )
    sweep.add_argument(
        "--executor",
        choices=("process", "serial"),
        default="process",
        help="sharded execution backend: fork worker pool, or the "
        "in-process fallback for debugging",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        help="crash-safe result store: completed shard cells commit here "
        "as they finish and are reused on later runs (implies the "
        "sharded runner)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted stored sweep: requires --store, and "
        "the store must already exist; committed cells are skipped and "
        "only missing/corrupt/failed ones re-run",
    )
    failure = sweep.add_mutually_exclusive_group()
    failure.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="abort the sweep on the first failing cell",
    )
    failure.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="quarantine failing cells and complete the rest "
        "(default; exits 3 with a quarantine summary if any cell "
        "was quarantined)",
    )
    sweep.set_defaults(fail_fast=False)
    sweep.add_argument(
        "--timeout",
        type=float,
        help="per-cell wall-clock budget in seconds (a cell exceeding it "
        "is terminated and retried)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget per failing cell, on a deterministic "
        "exponential backoff (default 2)",
    )
    sweep.add_argument(
        "--distributed",
        type=int,
        metavar="N",
        help="coordinator mode: write the sweep manifest into --store, "
        "spawn N independent 'repro work' worker processes to drain it "
        "under the lease discipline, and merge (requires --store; see "
        "'repro work --help' for joining from other hosts)",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="distributed mode: lease heartbeat TTL in seconds — a "
        "worker silent this long is presumed dead and its cell taken "
        "over (default 30)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    store = subparsers.add_parser(
        "store",
        help="inspect the crash-safe sweep result store",
        epilog=exit_contract,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    store.add_argument("action", choices=("ls", "verify", "gc"))
    store.add_argument("--root", required=True, help="store directory")
    store.add_argument(
        "--all-versions",
        action="store_true",
        help="gc: keep cells from other code versions instead of "
        "reclaiming them",
    )
    store.set_defaults(func=_cmd_store)

    work = subparsers.add_parser(
        "work",
        help="join a distributed sweep as one lease-coordinated worker",
        epilog=exit_contract,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    work.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="shared result store holding the sweep manifest (written by "
        "'repro sweep --distributed' or write_sweep_manifest)",
    )
    work.add_argument(
        "--worker-id",
        required=True,
        help="this worker's identity, recorded in its lease claims and "
        "journal events (unique per process/host, e.g. 'host3-w0')",
    )
    work.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        help="lease heartbeat TTL in seconds; must match the fleet's "
        "(default 30)",
    )
    work.add_argument(
        "--retries",
        type=int,
        default=2,
        help="local retry budget per failing cell before quarantining "
        "it for the whole fleet (default 2)",
    )
    work.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="idle rescan interval when every open cell is leased to a "
        "live peer (default 0.05s)",
    )
    work.add_argument(
        "--max-takeovers",
        type=int,
        default=3,
        help="a cell whose lease has been taken over this many times is "
        "quarantined as poison (default 3)",
    )
    work.add_argument(
        "--json",
        action="store_true",
        help="print the worker report as JSON (machine consumption)",
    )
    work.add_argument(
        "--die-after-claims",
        type=int,
        metavar="N",
        help="failure injection (tests/CI): SIGKILL this worker right "
        "after its Nth successful claim, mid-cell with the lease held",
    )
    work.add_argument(
        "--stall-after-claims",
        type=int,
        metavar="N",
        help="failure injection (tests/CI): after the Nth claim, stall "
        "without heartbeating for --stall-seconds before running the "
        "cell (exercises the fencing path)",
    )
    work.add_argument(
        "--stall-seconds",
        type=float,
        default=0.0,
        help="stall duration for --stall-after-claims",
    )
    work.set_defaults(func=_cmd_work)

    tables = subparsers.add_parser("tables", help="regenerate Tables 1-5")
    tables.add_argument("--sizes", default="100")
    tables.add_argument("--filler", type=int, default=20000)
    tables.set_defaults(func=_cmd_tables)

    report = subparsers.add_parser("report", help="full reproduction report")
    report.add_argument(
        "--scale", choices=("tiny", "quick", "paper"), default="quick"
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    attack = subparsers.add_parser("attack", help="attack demonstrations")
    attack.add_argument("--domains", type=int, default=100)
    attack.add_argument("--filler", type=int, default=5000)
    attack.set_defaults(func=_cmd_attack)

    trace = subparsers.add_parser(
        "trace", help="trace one resolution and render its span tree"
    )
    trace.add_argument(
        "--qname", help="name to resolve (default: a Case-2 leaking domain)"
    )
    trace.add_argument("--domains", type=int, default=50)
    trace.add_argument("--filler", type=int, default=2000)
    trace.add_argument(
        "--hashed", action="store_true", help="hashed (privacy-preserving) registry"
    )
    trace.add_argument("--output", help="also write the trace as JSONL")
    trace.set_defaults(func=_cmd_trace)

    profile = subparsers.add_parser(
        "profile",
        help="cProfile one fig8-style cell and report hot functions",
    )
    profile.add_argument("--domains", type=int, default=150)
    profile.add_argument("--filler", type=int, default=1000)
    profile.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative"
    )
    profile.add_argument("--limit", type=int, default=25)
    profile.add_argument(
        "--warm",
        action="store_true",
        help="run one untimed cell first so memos are hot (steady state)",
    )
    profile.add_argument(
        "--uncached",
        action="store_true",
        help="disable the hot-path caches for this profile",
    )
    profile.add_argument(
        "--output", help="dump raw cProfile stats to a file instead"
    )
    profile.set_defaults(func=_cmd_profile)

    replay = subparsers.add_parser(
        "replay",
        help="population-scale DITL replay on the event scheduler",
    )
    replay.add_argument(
        "--users", type=int, default=8, help="concurrent stub clients"
    )
    replay.add_argument(
        "--queries", type=int, default=2000, help="total queries to replay"
    )
    replay.add_argument("--domains", type=int, default=60)
    replay.add_argument("--filler", type=int, default=300)
    replay.add_argument(
        "--per-user-qps",
        type=float,
        default=0.05,
        help="mean per-user query rate before diurnal modulation",
    )
    replay.add_argument(
        "--window",
        type=float,
        default=300.0,
        help="aggregation-window width in simulated seconds",
    )
    replay.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission cap on concurrent sessions",
    )
    replay.add_argument("--seed", type=int, default=2017)
    replay.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    replay.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound the admission FIFO; arrivals beyond it are shed",
    )
    replay.add_argument(
        "--chaos",
        action="store_true",
        help="replay under a scripted DLV registry outage window",
    )
    replay.add_argument(
        "--adversary",
        choices=["spoofer", "poisoner", "referral-bomber", "sig-bomber"],
        default=None,
        help="replay with a byzantine persona live on the wire",
    )
    replay.add_argument(
        "--policy",
        choices=["fallback", "strict", "stale"],
        default="strict",
        help="resolver policy for --chaos/--adversary replays",
    )
    replay.add_argument(
        "--fault-start",
        type=float,
        default=300.0,
        help="outage window start (simulated seconds, --chaos)",
    )
    replay.add_argument(
        "--fault-end",
        type=float,
        default=1800.0,
        help="outage window end (simulated seconds, --chaos)",
    )
    replay.add_argument(
        "--fault-rcode",
        choices=["servfail", "blackhole"],
        default="servfail",
        help="registry outage mode: answers SERVFAIL or black-holes",
    )
    replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
