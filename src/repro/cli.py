"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — what this package reproduces, and the module map.
* ``quickstart`` — a small end-to-end leakage run (like the example).
* ``sweep``    — the Fig 8/9 leakage sweep at chosen sizes.
* ``tables``   — regenerate Tables 1-5.
* ``report``   — the full reproduction report (every table and figure).
* ``attack``   — the remedy-tampering and enumeration demonstrations.
* ``trace``    — resolve one name fully instrumented and render the
  span tree, per-observer leak summary, and metric counters.
* ``profile``  — cProfile one fig8-style cell (optionally cache-warm or
  with hot-path caches disabled) and report the hot functions plus
  cache statistics.
* ``store``    — inspect the crash-safe sweep result store:
  ``ls`` committed cells, ``verify`` payload + fingerprint integrity,
  ``gc`` temp/corrupt/stale-version files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__


def _cmd_info(args: argparse.Namespace) -> int:
    print(
        f"repro {__version__} — reproduction of 'Privacy Implications of\n"
        "DNSSEC Look-Aside Validation' (Mohaisen et al., ICDCS 2017).\n\n"
        "A pure-Python DNS/DNSSEC/DLV simulator measuring how DLV-enabled\n"
        "resolvers leak user queries to look-aside registries, plus the\n"
        "paper's remedies (TXT/Z-bit signalling, hashed DLV).\n\n"
        "Layers: dnscore, crypto, netsim, zones, servers, resolver,\n"
        "configs, workloads, core, analysis.  See DESIGN.md and\n"
        "EXPERIMENTS.md in the repository root."
    )
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .core import LeakageExperiment, standard_universe, standard_workload
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)
    universe = standard_universe(workload, filler_count=args.filler)
    experiment = LeakageExperiment(universe, correct_bind_config())
    result = experiment.run(workload.names(args.domains))
    print(result.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from .analysis import (
        fig8_dlv_queries,
        fig9_leak_proportion,
        leakage_sweep,
        sharded_leakage_sweep,
    )

    sizes = [int(part) for part in args.sizes.split(",")]
    store = None
    outcomes: list = []
    if args.resume and not args.store:
        print("--resume requires --store DIR", file=sys.stderr)
        return 2
    if args.store:
        from .core import ResultStore

        if args.resume and not os.path.isdir(args.store):
            print(
                f"--resume: store '{args.store}' does not exist "
                "(nothing to resume)",
                file=sys.stderr,
            )
            return 2
        store = ResultStore(args.store)
    if args.parallelism > 1 or args.shards is not None or store is not None:
        shards = args.shards if args.shards is not None else args.parallelism
        executor = None
        if args.executor == "serial":
            from .core import SerialExecutor

            executor = SerialExecutor()
        points = sharded_leakage_sweep(
            sizes=sizes,
            filler_count=args.filler,
            shards=shards,
            parallelism=args.parallelism,
            executor=executor,
            store=store,
            fail_fast=args.fail_fast,
            timeout=args.timeout,
            retries=args.retries,
            outcomes=outcomes,
        )
        print(
            f"sharded sweep: {shards} shard(s), "
            f"{args.parallelism} worker(s), executor={args.executor}"
            + (f", store={args.store}" if store is not None else "")
        )
        print()
    else:
        points = leakage_sweep(sizes=sizes, filler_count=args.filler)
    print(fig8_dlv_queries(points)[1])
    print()
    print(fig9_leak_proportion(points)[1])
    quarantined = [cell for outcome in outcomes for cell in outcome.quarantined]
    if outcomes:
        reused = sum(outcome.cells_reused for outcome in outcomes)
        rerun = sum(outcome.cells_rerun for outcome in outcomes)
        print()
        print(
            f"store: {reused} cell(s) reused, {rerun} re-run, "
            f"{len(quarantined)} quarantined"
            + (
                f", {store.stats.corrupt_detected} corrupt detected"
                if store is not None and store.stats.corrupt_detected
                else ""
            )
        )
    if quarantined:
        print("quarantined cells (affected points are partial):")
        for cell in quarantined:
            print(f"  - {cell.describe()}")
        return 3
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import ResultStore

    store = ResultStore(args.root)
    if args.action == "ls":
        rows = []
        for entry in store.entries():
            key = entry.header.get("key", {}).get("fields", {})
            extra = dict(key.get("extra", ()) or [])
            rows.append(
                (
                    entry.digest[:12],
                    key.get("kind", "?"),
                    key.get("code_version", "?"),
                    str(key.get("seed", "?")),
                    f"{key.get('shard_index', '?')}/{key.get('shard_count', '?')}",
                    str(extra.get("trace", "?")),
                    f"{entry.path.stat().st_size}",
                )
            )
        print(
            format_table(
                ["cell", "kind", "version", "seed", "shard", "trace", "bytes"],
                rows,
                title=f"store {args.root}: {len(rows)} committed cell(s)",
            )
        )
        return 0
    if args.action == "verify":
        report = store.verify()
        print(
            f"verified {report.checked} cell(s): {report.ok} ok, "
            f"{len(report.corrupt)} corrupt"
        )
        for path in report.corrupt:
            print(f"  corrupt (quarantined to *.corrupt): {path}")
        return 0 if report.clean else 1
    if args.action == "gc":
        removed = store.gc(all_versions=args.all_versions)
        print(
            f"gc: removed {removed['tmp']} temp, {removed['corrupt']} "
            f"corrupt, {removed['stale']} stale-version file(s) "
            f"({removed['bytes']} bytes)"
        )
        return 0
    raise AssertionError(f"unknown store action {args.action!r}")


def _cmd_tables(args: argparse.Namespace) -> int:
    from .analysis import (
        table1_environments,
        table2_config_variations,
        table3_secured_domains,
        table4_query_types,
        table5_txt_overhead,
    )

    print(table1_environments()[1], end="\n\n")
    print(table2_config_variations()[1], end="\n\n")
    print(table3_secured_domains(filler_count=2000)[1], end="\n\n")
    sizes = [int(part) for part in args.sizes.split(",")]
    print(table4_query_types(sizes=sizes, filler_count=args.filler)[1], end="\n\n")
    print(table5_txt_overhead(sizes=sizes, filler_count=args.filler)[1])
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import ReportScale, build_report

    scale = {
        "paper": ReportScale.paper,
        "quick": ReportScale.quick,
        "tiny": ReportScale.tiny,
    }[args.scale]()
    text = build_report(scale)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import (
        LeakageExperiment,
        NsecZoneWalker,
        interpose_tampering,
        standard_universe,
        standard_workload,
    )
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)

    # 1. Z-bit tampering re-opens the leak.
    universe = standard_universe(
        workload, filler_count=args.filler, deploy_zbit_signal=True
    )
    for address in universe.hosting_addresses():
        interpose_tampering(universe.network, address, force_z_bit=True)
    experiment = LeakageExperiment(
        universe, correct_bind_config(zbit_signaling=True), ptr_fraction=0.0
    )
    tampered = experiment.run(workload.names(args.domains))

    # 2. NSEC zone walk enumerates the registry.
    walk_universe = standard_universe(workload, filler_count=min(args.filler, 2000))
    walker = NsecZoneWalker(
        walk_universe.network,
        walk_universe.registry_address,
        walk_universe.registry_origin,
    )
    walk = walker.walk()

    print(
        format_table(
            ["Attack", "Result"],
            [
                (
                    "Z-bit MITM vs zbit remedy",
                    f"{tampered.leakage.leaked_count} domains leaked "
                    f"(remedy bypassed)",
                ),
                (
                    "NSEC zone walk",
                    f"enumerated {walk_universe.registry_zone.deposit_count()} "
                    f"registry entries in {walk.queries_sent} queries",
                ),
            ],
            title="Attack demonstrations (paper Sections 6.2.3 and 7.3)",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import (
        LeakageExperiment,
        MetricsRegistry,
        Tracer,
        export_traces_jsonl,
        observer_trace_summary,
        render_span_tree,
        standard_universe,
        standard_workload,
    )
    from .dnscore import Name
    from .resolver import correct_bind_config

    workload = standard_workload(args.domains)
    universe = standard_universe(
        workload, filler_count=args.filler, registry_hashed=args.hashed
    )
    if args.qname:
        qname = Name.from_text(args.qname)
    else:
        # Default to the first signed domain without a DLV deposit: its
        # look-aside search is guaranteed to come up empty, producing
        # the Case-2 leak the trace is meant to show.
        qname = next(
            (
                spec.name
                for spec in workload.domains
                if not spec.dlv_deposited
            ),
            workload.domains[0].name,
        )
    experiment = LeakageExperiment(
        universe,
        correct_bind_config(),
        ptr_fraction=0.0,
        tracer=Tracer(universe.clock),
        metrics=MetricsRegistry(),
    )
    result = experiment.run([qname])
    for root in result.traces:
        print(render_span_tree(root))
        print()
    summaries = observer_trace_summary(result.traces)
    if summaries:
        print("Observer exposure (who saw what):")
        for summary in summaries:
            print("  " + summary.describe())
            for leaked in summary.leaked_qnames:
                print(f"    leaked: {leaked}")
        print()
    if result.metrics:
        print("Counters:")
        for name, value in result.metrics["counters"].items():
            print(f"  {name} = {value}")
        histograms = result.metrics["histograms"]
        if histograms:
            print("Histograms:")
            for name, stats in histograms.items():
                print(
                    f"  {name}: count={stats['count']} mean={stats['mean']:.4f} "
                    f"min={stats['min']:.4f} max={stats['max']:.4f}"
                )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(export_traces_jsonl(result.traces))
        print(f"\ntraces written to {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from . import perf
    from .core import LeakageExperiment, standard_universe, standard_workload
    from .resolver import correct_bind_config

    if args.uncached:
        perf.set_caches_enabled(False)
    if args.warm:
        # One untimed cell first, so the profile shows steady-state
        # (memo-hit) behaviour rather than cache fill.
        workload = standard_workload(args.domains)
        universe = standard_universe(workload, filler_count=args.filler)
        LeakageExperiment(universe, correct_bind_config()).run(
            workload.names(args.domains)
        )
    profiler = cProfile.Profile()
    profiler.enable()
    workload = standard_workload(args.domains)
    universe = standard_universe(workload, filler_count=args.filler)
    experiment = LeakageExperiment(universe, correct_bind_config())
    experiment.run(workload.names(args.domains))
    profiler.disable()
    if args.output:
        profiler.dump_stats(args.output)
        print(f"profile written to {args.output} (inspect with pstats/snakeviz)")
    else:
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.limit)
    cache_lines = perf.hotpath_cache_stats()
    if cache_lines:
        print("Hot-path caches:")
        for name, stats_dict in cache_lines.items():
            rendered = " ".join(f"{k}={v}" for k, v in stats_dict.items())
            print(f"  {name}: {rendered}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNSSEC look-aside validation privacy-leak reproduction",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="package overview").set_defaults(
        func=_cmd_info
    )

    quickstart = subparsers.add_parser("quickstart", help="small end-to-end run")
    quickstart.add_argument("--domains", type=int, default=100)
    quickstart.add_argument("--filler", type=int, default=20000)
    quickstart.set_defaults(func=_cmd_quickstart)

    sweep = subparsers.add_parser("sweep", help="Fig 8/9 leakage sweep")
    sweep.add_argument("--sizes", default="100,1000")
    sweep.add_argument("--filler", type=int, default=20000)
    sweep.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker processes for the sharded runner (default 1: the "
        "incremental serial sweep)",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        help="shard count (default: --parallelism); pin it while varying "
        "--parallelism for byte-identical output across worker counts",
    )
    sweep.add_argument(
        "--executor",
        choices=("process", "serial"),
        default="process",
        help="sharded execution backend: fork worker pool, or the "
        "in-process fallback for debugging",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        help="crash-safe result store: completed shard cells commit here "
        "as they finish and are reused on later runs (implies the "
        "sharded runner)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted stored sweep: requires --store, and "
        "the store must already exist; committed cells are skipped and "
        "only missing/corrupt/failed ones re-run",
    )
    failure = sweep.add_mutually_exclusive_group()
    failure.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="abort the sweep on the first failing cell",
    )
    failure.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="quarantine failing cells and complete the rest "
        "(default; exits 3 with a quarantine summary if any cell "
        "was quarantined)",
    )
    sweep.set_defaults(fail_fast=False)
    sweep.add_argument(
        "--timeout",
        type=float,
        help="per-cell wall-clock budget in seconds (a cell exceeding it "
        "is terminated and retried)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget per failing cell, on a deterministic "
        "exponential backoff (default 2)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    store = subparsers.add_parser(
        "store", help="inspect the crash-safe sweep result store"
    )
    store.add_argument("action", choices=("ls", "verify", "gc"))
    store.add_argument("--root", required=True, help="store directory")
    store.add_argument(
        "--all-versions",
        action="store_true",
        help="gc: keep cells from other code versions instead of "
        "reclaiming them",
    )
    store.set_defaults(func=_cmd_store)

    tables = subparsers.add_parser("tables", help="regenerate Tables 1-5")
    tables.add_argument("--sizes", default="100")
    tables.add_argument("--filler", type=int, default=20000)
    tables.set_defaults(func=_cmd_tables)

    report = subparsers.add_parser("report", help="full reproduction report")
    report.add_argument(
        "--scale", choices=("tiny", "quick", "paper"), default="quick"
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    attack = subparsers.add_parser("attack", help="attack demonstrations")
    attack.add_argument("--domains", type=int, default=100)
    attack.add_argument("--filler", type=int, default=5000)
    attack.set_defaults(func=_cmd_attack)

    trace = subparsers.add_parser(
        "trace", help="trace one resolution and render its span tree"
    )
    trace.add_argument(
        "--qname", help="name to resolve (default: a Case-2 leaking domain)"
    )
    trace.add_argument("--domains", type=int, default=50)
    trace.add_argument("--filler", type=int, default=2000)
    trace.add_argument(
        "--hashed", action="store_true", help="hashed (privacy-preserving) registry"
    )
    trace.add_argument("--output", help="also write the trace as JSONL")
    trace.set_defaults(func=_cmd_trace)

    profile = subparsers.add_parser(
        "profile",
        help="cProfile one fig8-style cell and report hot functions",
    )
    profile.add_argument("--domains", type=int, default=150)
    profile.add_argument("--filler", type=int, default=1000)
    profile.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative"
    )
    profile.add_argument("--limit", type=int, default=25)
    profile.add_argument(
        "--warm",
        action="store_true",
        help="run one untimed cell first so memos are hot (steady state)",
    )
    profile.add_argument(
        "--uncached",
        action="store_true",
        help="disable the hot-path caches for this profile",
    )
    profile.add_argument(
        "--output", help="dump raw cProfile stats to a file instead"
    )
    profile.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
