"""Full-report builder: regenerate the paper's evaluation in one call.

Produces a single text document with every table and figure at a
selectable scale — the programmatic face of the benchmark harness, also
used by ``python -m repro report``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from .figures import (
    fig8_dlv_queries,
    fig9_leak_proportion,
    fig10_overhead_breakdown,
    fig11_remedy_comparison,
    fig12_ditl,
    leakage_sweep,
)
from .render import format_table
from .survey import prevalence_estimate, survey_breakdown
from .tables import (
    table1_environments,
    table2_config_variations,
    table3_secured_domains,
    table4_query_types,
    table5_txt_overhead,
)


@dataclasses.dataclass(frozen=True)
class ReportScale:
    """How big a report run should be."""

    sweep_sizes: Sequence[int] = (100, 1000)
    table_sizes: Sequence[int] = (100,)
    filler_count: int = 20000
    fig11_size: int = 200
    ditl_scale: float = 0.01

    @classmethod
    def tiny(cls) -> "ReportScale":
        """Seconds-scale report for smoke tests and demos."""
        return cls(
            sweep_sizes=(50, 150),
            table_sizes=(50,),
            filler_count=1500,
            fig11_size=50,
            ditl_scale=0.003,
        )

    @classmethod
    def quick(cls) -> "ReportScale":
        return cls()

    @classmethod
    def paper(cls) -> "ReportScale":
        """Closer to publication scale (minutes, not seconds)."""
        return cls(
            sweep_sizes=(100, 1000, 10000),
            table_sizes=(100, 1000),
            filler_count=60000,
            fig11_size=500,
            ditl_scale=0.02,
        )


def _heading(title: str) -> str:
    bar = "=" * len(title)
    return f"{title}\n{bar}"


def build_report(scale: Optional[ReportScale] = None) -> str:
    """Run every experiment and assemble the text report."""
    scale = scale or ReportScale.quick()
    sections: List[str] = [
        _heading(
            "Reproduction report: Privacy Implications of DNSSEC "
            "Look-Aside Validation"
        )
    ]

    sections.append(table1_environments()[1])
    sections.append(table2_config_variations()[1])

    points = leakage_sweep(
        sizes=scale.sweep_sizes, filler_count=scale.filler_count
    )
    sections.append(fig8_dlv_queries(points)[1])
    sections.append(fig9_leak_proportion(points)[1])

    sections.append(table3_secured_domains(filler_count=2000)[1])

    sections.append(
        table4_query_types(
            sizes=scale.table_sizes, filler_count=scale.filler_count
        )[1]
    )

    rows5, text5 = table5_txt_overhead(
        sizes=scale.table_sizes, filler_count=scale.filler_count
    )
    sections.append(text5)
    sections.append(fig10_overhead_breakdown(rows5)[1])

    sections.append(
        fig11_remedy_comparison(
            size=scale.fig11_size, filler_count=scale.filler_count
        )[1]
    )

    sections.append(fig12_ditl(scale=scale.ditl_scale)[1])

    survey_rows = survey_breakdown()
    estimate = prevalence_estimate()
    sections.append(
        format_table(
            ["Answer", "Respondents", "Share"],
            [
                (r["answer"], r["respondents"], f"{r['share']:.1%}")
                for r in survey_rows
            ],
            title="DNS-OARC 2015 survey (Section 5.2)",
        )
        + (
            f"\nmodelled leak-everything prevalence: "
            f"{estimate['leaks_everything_fraction']:.1%} of respondents"
        )
    )

    return "\n\n".join(sections) + "\n"
