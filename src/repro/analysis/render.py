"""Plain-text rendering helpers for tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[Sequence[object]],
    title: str = "",
    width: int = 40,
) -> str:
    """Render an (x, y) series with a proportional ASCII bar per row."""
    numeric = [float(point[1]) for point in points]
    peak = max(numeric) if numeric else 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12} | {y_label}")
    for point, value in zip(points, numeric):
        bar = "#" * int(round(width * value / peak)) if peak > 0 else ""
        lines.append(f"{str(point[0]):>12} | {value:>14,.4g} {bar}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"
