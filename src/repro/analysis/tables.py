"""Regeneration of the paper's tables (1-5).

Each ``tableN_*`` function returns structured rows plus a text rendering
via :func:`repro.analysis.render.format_table`.  Tables 3-5 run actual
simulations; their entry points take size/seed parameters so benches can
scale them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..configs import (
    Environment,
    InstallMethod,
    all_environments,
    config_from_install,
)
from ..dnscore import Name, RRType
from ..resolver import ResolverConfig, correct_bind_config
from ..workloads import (
    AlexaWorkload,
    Universe,
    UniverseParams,
    secured_domains,
)
from ..core import (
    LeakageExperiment,
    Remedy,
    RemedyRun,
    run_remedy,
    standard_experiment,
    standard_workload,
)
from ..core.overhead import SignalingCost
from ..core.setup import EXPERIMENT_MODULUS_BITS
from .render import format_table, percent


# ----------------------------------------------------------------------
# Table 1 — resolver versions and settings per environment
# ----------------------------------------------------------------------

def table1_environments() -> Tuple[List[dict], str]:
    """Table 1: the 16 hosts with their package/manual versions."""
    rows = []
    for env_bind in all_environments("bind"):
        if env_bind.manual_install:
            continue
        os_name = env_bind.os.name
        bind_p = env_bind.os.bind_package_version
        unbound_p = env_bind.os.unbound_package_version
        rows.append(
            {
                "os": os_name,
                "bind_package": bind_p,
                "bind_manual": "9.10.3",
                "unbound_package": unbound_p,
                "unbound_manual": "1.5.7",
            }
        )
    text = format_table(
        ["Operating System", "BIND (P)", "BIND (M)", "Unbound (P)", "Unbound (M)"],
        [
            (r["os"], r["bind_package"], r["bind_manual"], r["unbound_package"], r["unbound_manual"])
            for r in rows
        ],
        title="Table 1: resolver versions per environment",
    )
    return rows, text


# ----------------------------------------------------------------------
# Table 2 — default configuration variations
# ----------------------------------------------------------------------

def table2_config_variations() -> Tuple[List[dict], str]:
    """Table 2: what each installation method configures by default."""
    rows = []
    for method, label in (
        (InstallMethod.APT_GET, "apt-get"),
        (InstallMethod.YUM, "yum"),
        (InstallMethod.MANUAL, "manual"),
    ):
        if method is InstallMethod.MANUAL:
            # Manual install ships no config at all: everything N/A.
            rows.append(
                {
                    "installer": label,
                    "dnssec": "N/A",
                    "validation": "N/A",
                    "dlv": "N/A",
                    "trust_anchor": "N/A",
                    "arm_compliant": False,
                }
            )
            continue
        config = config_from_install(method)
        rows.append(
            {
                "installer": label,
                "dnssec": "Yes" if config.dnssec_enable else "No",
                "validation": config.dnssec_validation.value.capitalize(),
                "dlv": (
                    "Auto"
                    if config.lookaside_enabled
                    else "N/A"
                ),
                "trust_anchor": "Yes" if config.trust_anchor_included else "N/A",
                # The ARM says: validation defaults to yes, DLV to no.
                "arm_compliant": (
                    config.dnssec_validation.value == "yes"
                    and not config.lookaside_enabled
                ),
            }
        )
    text = format_table(
        ["Installer", "DNSSEC", "validation", "DLV", "trust anchor", "ARM-compliant"],
        [
            (r["installer"], r["dnssec"], r["validation"], r["dlv"], r["trust_anchor"], "yes" if r["arm_compliant"] else "NO")
            for r in rows
        ],
        title="Table 2: default configuration variations",
    )
    return rows, text


# ----------------------------------------------------------------------
# Table 3 — do DNSSEC-secured domains leak to DLV, per configuration?
# ----------------------------------------------------------------------

_TABLE3_CONFIGS: Tuple[Tuple[str, ResolverConfig], ...] = (
    ("apt-get", config_from_install(InstallMethod.APT_GET)),
    ("apt-get+ARM-edit", config_from_install(InstallMethod.APT_GET, arm_edited=True)),
    ("yum", config_from_install(InstallMethod.YUM)),
    ("manual", config_from_install(InstallMethod.MANUAL)),
)


def table3_secured_domains(
    filler_count: int = 2000,
) -> Tuple[List[dict], str]:
    """Table 3 + Section 5.2: query the 45 secured domains under each
    default configuration; do they reach the DLV registry?

    Expected: apt-get No, apt-get(ARM-edited) Yes, yum No (only the five
    islands), manual Yes.
    """
    rows = []
    specs = secured_domains()
    island_count = sum(1 for s in specs if s.is_island_of_security())
    # Any small workload provides the seeded filler-name generator.
    workload = standard_workload(10)
    filler = workload.registry_filler(filler_count)
    for label, config in _TABLE3_CONFIGS:
        universe = Universe(
            specs,
            UniverseParams(
                modulus_bits=EXPERIMENT_MODULUS_BITS,
                registry_filler=filler,
            ),
        )
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run([s.name for s in specs])
        leak = result.leakage
        secured_leaked = leak.leaked_count
        islands_served = len(leak.served_domains)
        rows.append(
            {
                "config": label,
                # Table 3's Yes/No: do secured domains *leak* (Case-2)?
                "leaks": secured_leaked > 0,
                "dlv_queried": leak.dlv_queries > 0,
                "secured_domains_leaked": secured_leaked,
                "islands_via_dlv": islands_served,
                "dlv_queries": leak.dlv_queries,
                "authenticated": result.authenticated_answers,
            }
        )
    text = format_table(
        ["Configuration", "Leak (Table 3)", "Case-2 leaked", "Islands served", "DLV queries", "AD answers"],
        [
            (
                r["config"],
                "Yes" if r["leaks"] else "No",
                r["secured_domains_leaked"],
                r["islands_via_dlv"],
                r["dlv_queries"],
                r["authenticated"],
            )
            for r in rows
        ],
        title=(
            "Table 3: 45 DNSSEC-secured domains "
            f"({island_count} islands of security) per configuration"
        ),
    )
    return rows, text


# ----------------------------------------------------------------------
# Table 4 — query-type mix per dataset size
# ----------------------------------------------------------------------

TABLE4_TYPES = (RRType.A, RRType.AAAA, RRType.DNSKEY, RRType.DS, RRType.NS, RRType.PTR)


def table4_query_types(
    sizes: Sequence[int] = (100, 1000),
    seed: int = 2016,
    filler_count: int = 20000,
) -> Tuple[List[dict], str]:
    """Table 4: number of issued queries per type and dataset size.

    One incremental experiment per size list (shared caches, like the
    paper's sequential runs on one resolver would *not* share — so each
    size gets a fresh resolver, as in the paper)."""
    rows = []
    for size in sizes:
        workload = standard_workload(size, seed=seed)
        experiment = standard_experiment(
            size, correct_bind_config(), filler_count=filler_count, seed=seed
        )
        result = experiment.run(workload.names(size))
        counts = result.overhead.query_type_counts
        row = {"size": size}
        for rtype in TABLE4_TYPES:
            row[rtype.name] = counts.get(rtype, 0)
        row["DLV"] = counts.get(RRType.DLV, 0)
        rows.append(row)
    text = format_table(
        ["# Domains"] + [t.name for t in TABLE4_TYPES] + ["DLV"],
        [
            tuple([r["size"]] + [r[t.name] for t in TABLE4_TYPES] + [r["DLV"]])
            for r in rows
        ],
        title="Table 4: number of DNS queries by type",
    )
    return rows, text


# ----------------------------------------------------------------------
# Table 5 — overhead of the TXT remedy
# ----------------------------------------------------------------------

def table5_txt_overhead(
    sizes: Sequence[int] = (100, 1000),
    seed: int = 2016,
    filler_count: int = 20000,
) -> Tuple[List[dict], str]:
    """Table 5: baseline vs TXT-signalling overhead per dataset size.

    Accounting follows the paper (Section 6.2.3): the run executes DLV
    with TXT signalling *inserted*; the overhead is the cost of the TXT
    exchanges themselves (their RTTs, bytes, and count); the baseline is
    the run's remaining traffic.
    """
    rows = []
    for size in sizes:
        workload = standard_workload(size, seed=seed)
        run = run_remedy(
            Remedy.TXT,
            workload.domains,
            workload.names(size),
            correct_bind_config(),
            base_params=UniverseParams(
                modulus_bits=EXPERIMENT_MODULUS_BITS,
                registry_filler=tuple(workload.registry_filler(filler_count)),
            ),
        )
        result = run.result
        # The TXT exchange cost within the run, measured packet by
        # packet from the run's own capture.
        cost = SignalingCost.of_query_type(result.capture, RRType.TXT)
        total_time = result.overhead.response_time
        total_bytes = result.overhead.traffic_bytes
        total_queries = result.overhead.queries_issued
        base_time = total_time - cost.seconds
        base_bytes = total_bytes - cost.bytes
        base_queries = total_queries - cost.exchanges
        rows.append(
            {
                "size": size,
                "time_baseline": base_time,
                "time_overhead": cost.seconds,
                "time_ratio": cost.seconds / base_time if base_time else 0.0,
                "traffic_baseline_mb": base_bytes / 1e6,
                "traffic_overhead_mb": cost.bytes / 1e6,
                "traffic_ratio": cost.bytes / base_bytes if base_bytes else 0.0,
                "queries_baseline": base_queries,
                "queries_overhead": cost.exchanges,
                "queries_ratio": cost.exchanges / base_queries if base_queries else 0.0,
            }
        )
    text = format_table(
        [
            "# Domains",
            "Time base (s)", "Time ovh (s)", "Time %",
            "Traffic base (MB)", "Traffic ovh (MB)", "Traffic %",
            "Queries base", "Queries ovh", "Queries %",
        ],
        [
            (
                r["size"],
                f"{r['time_baseline']:.2f}", f"{r['time_overhead']:.2f}", percent(r["time_ratio"]),
                f"{r['traffic_baseline_mb']:.3f}", f"{r['traffic_overhead_mb']:.3f}", percent(r["traffic_ratio"]),
                r["queries_baseline"], r["queries_overhead"], percent(r["queries_ratio"]),
            )
            for r in rows
        ],
        title="Table 5: TXT-remedy overhead (baseline / overhead / ratio)",
    )
    return rows, text


