"""Regeneration of every table and figure in the paper's evaluation."""

from .breakdown import per_tld_leakage, render_per_tld
from .figures import (
    LeakageSweepPoint,
    fig8_dlv_queries,
    fig9_leak_proportion,
    fig10_overhead_breakdown,
    fig11_remedy_comparison,
    fig12_ditl,
    leakage_sweep,
    sharded_leakage_sweep,
)
from .render import format_series, format_table, percent
from .report import ReportScale, build_report
from .survey import (
    ISC_DLV_USERS,
    TOTAL_RESPONDENTS,
    Respondent,
    model_population,
    prevalence_estimate,
    survey_breakdown,
)
from .tables import (
    TABLE4_TYPES,
    table1_environments,
    table2_config_variations,
    table3_secured_domains,
    table4_query_types,
    table5_txt_overhead,
)

__all__ = [
    "ISC_DLV_USERS",
    "LeakageSweepPoint",
    "ReportScale",
    "Respondent",
    "TABLE4_TYPES",
    "build_report",
    "TOTAL_RESPONDENTS",
    "fig10_overhead_breakdown",
    "fig11_remedy_comparison",
    "fig12_ditl",
    "fig8_dlv_queries",
    "fig9_leak_proportion",
    "format_series",
    "format_table",
    "leakage_sweep",
    "sharded_leakage_sweep",
    "model_population",
    "per_tld_leakage",
    "percent",
    "render_per_tld",
    "prevalence_estimate",
    "survey_breakdown",
    "table1_environments",
    "table2_config_variations",
    "table3_secured_domains",
    "table4_query_types",
    "table5_txt_overhead",
]
