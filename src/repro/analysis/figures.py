"""Regeneration of the paper's figures (8-12) as data series.

Each ``figN_*`` function runs the underlying experiment and returns the
plotted series as rows plus an ASCII rendering — the "same rows/series
the paper reports", printable by the benches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..dnscore import RRType
from ..resolver import ResolverConfig, correct_bind_config
from ..workloads import (
    DitlParams,
    UniverseParams,
    evaluate_txt_overhead,
    generate_trace,
)
from ..core import (
    LeakageExperiment,
    Remedy,
    run_remedy,
    standard_experiment,
    standard_workload,
)
from ..core.overhead import SignalingCost
from ..core.setup import (
    DEFAULT_REGISTRY_FILLER_COUNT,
    EXPERIMENT_MODULUS_BITS,
    standard_universe,
)
from .render import format_series, format_table, percent


# ----------------------------------------------------------------------
# Figures 8 and 9 — DLV query counts and leaked-domain proportion vs N
# ----------------------------------------------------------------------

@dataclasses.dataclass
class LeakageSweepPoint:
    domains: int
    dlv_queries: int
    leaked_domains: int
    proportion: float
    utility: float


def leakage_sweep(
    sizes: Sequence[int] = (100, 1000, 10000),
    seed: int = 2016,
    filler_count: int = DEFAULT_REGISTRY_FILLER_COUNT,
    config: Optional[ResolverConfig] = None,
) -> List[LeakageSweepPoint]:
    """One incremental run over the top-N prefixes (shared caches, as
    when one resolver serves a user population working down the list)."""
    workload = standard_workload(max(sizes), seed=seed)
    universe = standard_universe(workload, filler_count=filler_count)
    experiment = LeakageExperiment(universe, config or correct_bind_config())
    points: List[LeakageSweepPoint] = []
    cumulative_leaked = 0
    cumulative_queries = 0
    previous = 0
    for size in sorted(sizes):
        result = experiment.run(workload.names(size)[previous:])
        cumulative_leaked += result.leakage.leaked_count
        cumulative_queries += result.leakage.dlv_queries
        points.append(
            LeakageSweepPoint(
                domains=size,
                dlv_queries=cumulative_queries,
                leaked_domains=cumulative_leaked,
                proportion=cumulative_leaked / size,
                utility=result.leakage.utility_fraction,
            )
        )
        previous = size
    return points


def sharded_leakage_sweep(
    sizes: Sequence[int] = (100, 1000, 10000),
    seed: int = 2016,
    filler_count: int = DEFAULT_REGISTRY_FILLER_COUNT,
    config: Optional[ResolverConfig] = None,
    shards: Optional[int] = None,
    parallelism: int = 1,
    executor=None,
    store=None,
    fail_fast: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    outcomes: Optional[list] = None,
) -> List[LeakageSweepPoint]:
    """The Figs 8/9 sweep on the sharded parallel runner.

    Semantics differ from :func:`leakage_sweep` in one respect: each
    size point is an *independent* sharded run over the top-N names
    (every shard gets a fresh resolver from a derived sub-seed), not
    one incremental warm-cache walk — the population-of-resolvers
    reading of the paper's sweep rather than the single-resolver one.
    For a fixed ``(seed, shards)`` the points are byte-identical
    regardless of ``parallelism`` or executor choice.

    With ``store`` (a :class:`~repro.core.store.ResultStore`) the sweep
    runs crash-safe through :func:`~repro.core.store.run_stored_sweep`:
    completed shard cells commit as they finish, an interrupted sweep
    resumes from the committed cells, and only missing/corrupt cells
    re-run.  Per-size :class:`~repro.core.store.SweepOutcome` records
    are appended to ``outcomes`` when given; quarantined cells make the
    affected point *partial* (keep-going default) or raise
    (``fail_fast=True``).
    """
    from ..core import (
        run_sharded_experiment,
        run_stored_sweep,
        standard_universe_factory,
    )

    resolver_config = config or correct_bind_config()
    points: List[LeakageSweepPoint] = []
    for size in sorted(sizes):
        workload = standard_workload(size, seed=seed)
        factory = standard_universe_factory(
            size, filler_count=filler_count, workload_seed=seed
        )
        if store is not None:
            outcome = run_stored_sweep(
                factory,
                resolver_config,
                workload.names(size),
                seed=seed,
                shards=shards,
                parallelism=parallelism,
                executor=executor,
                store=store,
                timeout=timeout,
                retries=retries,
                fail_fast=fail_fast,
            )
            if outcomes is not None:
                outcomes.append(outcome)
            result = outcome.result
        else:
            result = run_sharded_experiment(
                factory,
                resolver_config,
                workload.names(size),
                seed=seed,
                shards=shards,
                parallelism=parallelism,
                executor=executor,
            )
        leak = result.leakage
        points.append(
            LeakageSweepPoint(
                domains=size,
                dlv_queries=leak.dlv_queries,
                leaked_domains=leak.leaked_count,
                proportion=leak.leaked_count / size if size else 0.0,
                utility=leak.utility_fraction,
            )
        )
    return points


def fig8_dlv_queries(points: Sequence[LeakageSweepPoint]) -> Tuple[List[dict], str]:
    rows = [
        {
            "domains": p.domains,
            "dlv_queries": p.dlv_queries,
            "leaked_domains": p.leaked_domains,
        }
        for p in points
    ]
    text = format_series(
        "# domains",
        "leaked domains (cumulative)",
        [(p.domains, p.leaked_domains) for p in points],
        title="Fig 8: number of DLV-leaked domains vs queried domains",
    )
    return rows, text


def fig9_leak_proportion(points: Sequence[LeakageSweepPoint]) -> Tuple[List[dict], str]:
    rows = [
        {"domains": p.domains, "proportion": p.proportion} for p in points
    ]
    text = format_series(
        "# domains",
        "leaked proportion",
        [(p.domains, p.proportion) for p in points],
        title="Fig 9: proportion of leaked domains (decays with N, log-x)",
    )
    return rows, text


# ----------------------------------------------------------------------
# Figure 10 — baseline / overhead / total per metric (Table 5 visual)
# ----------------------------------------------------------------------

def fig10_overhead_breakdown(table5_rows: Sequence[dict]) -> Tuple[List[dict], str]:
    rows = list(table5_rows)
    sections = []
    for metric, base_key, ovh_key, unit in (
        ("response time", "time_baseline", "time_overhead", "s"),
        ("traffic", "traffic_baseline_mb", "traffic_overhead_mb", "MB"),
        ("queries", "queries_baseline", "queries_overhead", ""),
    ):
        body = format_table(
            ["# domains", f"baseline ({unit})", f"overhead ({unit})", "total"],
            [
                (
                    r["size"],
                    f"{r[base_key]:,.2f}",
                    f"{r[ovh_key]:,.2f}",
                    f"{r[base_key] + r[ovh_key]:,.2f}",
                )
                for r in rows
            ],
            title=f"Fig 10 ({metric})",
        )
        sections.append(body)
    return rows, "\n\n".join(sections)


# ----------------------------------------------------------------------
# Figure 11 — DLV vs TXT vs Z bit across the three metrics
# ----------------------------------------------------------------------

def fig11_remedy_comparison(
    size: int = 200,
    seed: int = 2016,
    filler_count: int = 20000,
) -> Tuple[List[dict], str]:
    """The three options on a common workload.

    Paper accounting: each option's *total* = the vanilla-DLV baseline
    plus the option's signalling cost (TXT exchanges for TXT; nothing
    extra for the Z bit, which rides in existing responses).  We also
    report the fully-deployed totals our simulator measures, where
    remedy gating *reduces* traffic by suppressing DLV queries.
    """
    workload = standard_workload(size, seed=seed)
    names = workload.names(size)
    base_params = UniverseParams(
        modulus_bits=EXPERIMENT_MODULUS_BITS,
        registry_filler=tuple(workload.registry_filler(filler_count)),
    )
    runs = {
        remedy: run_remedy(
            remedy, workload.domains, names, correct_bind_config(), base_params
        )
        for remedy in (Remedy.NONE, Remedy.TXT, Remedy.ZBIT)
    }
    baseline = runs[Remedy.NONE].result.overhead
    txt_cost = SignalingCost.of_query_type(
        runs[Remedy.TXT].result.capture, RRType.TXT
    )
    rows = [
        {
            "option": "DLV",
            "time_s": baseline.response_time,
            "traffic_mb": baseline.traffic_mb,
            "queries": baseline.queries_issued,
            "deployed_time_s": baseline.response_time,
            "deployed_traffic_mb": baseline.traffic_mb,
            "deployed_queries": baseline.queries_issued,
            "leaked": runs[Remedy.NONE].result.leakage.leaked_count,
        },
        {
            "option": "TXT",
            "time_s": baseline.response_time + txt_cost.seconds,
            "traffic_mb": baseline.traffic_mb + txt_cost.bytes / 1e6,
            "queries": baseline.queries_issued + txt_cost.exchanges,
            "deployed_time_s": runs[Remedy.TXT].result.overhead.response_time,
            "deployed_traffic_mb": runs[Remedy.TXT].result.overhead.traffic_mb,
            "deployed_queries": runs[Remedy.TXT].result.overhead.queries_issued,
            "leaked": runs[Remedy.TXT].result.leakage.leaked_count,
        },
        {
            "option": "Z bit",
            "time_s": baseline.response_time,
            "traffic_mb": baseline.traffic_mb,
            "queries": baseline.queries_issued,
            "deployed_time_s": runs[Remedy.ZBIT].result.overhead.response_time,
            "deployed_traffic_mb": runs[Remedy.ZBIT].result.overhead.traffic_mb,
            "deployed_queries": runs[Remedy.ZBIT].result.overhead.queries_issued,
            "leaked": runs[Remedy.ZBIT].result.leakage.leaked_count,
        },
    ]
    text = format_table(
        [
            "Option",
            "Time (s, paper acct)", "Traffic (MB)", "Queries",
            "Time (s, deployed)", "Traffic (MB, deployed)", "Queries (deployed)",
            "Leaked domains",
        ],
        [
            (
                r["option"],
                f"{r['time_s']:.2f}", f"{r['traffic_mb']:.3f}", r["queries"],
                f"{r['deployed_time_s']:.2f}",
                f"{r['deployed_traffic_mb']:.3f}",
                r["deployed_queries"],
                r["leaked"],
            )
            for r in rows
        ],
        title=f"Fig 11: DLV vs TXT vs Z bit ({size} domains)",
    )
    return rows, text


# ----------------------------------------------------------------------
# Figure 12 — DITL trace experiment
# ----------------------------------------------------------------------

def fig12_ditl(
    scale: float = 0.02, seed: int = 42
) -> Tuple[Dict[str, object], str]:
    """The DITL trace experiment: per-minute volume, cumulative queries,
    and cumulative TXT overhead vs baseline."""
    params = DitlParams(seed=seed, scale=scale)
    trace = generate_trace(params)
    result = evaluate_txt_overhead(trace, params)
    rescale = trace.rescale_factor()
    summary = {
        "minutes": int(len(trace.per_minute)),
        "scale": scale,
        "total_queries_scaled": trace.total_queries,
        "total_queries_rescaled": int(trace.total_queries * rescale),
        "rate_min_qpm": int(trace.per_minute.min() * rescale),
        "rate_max_qpm": int(trace.per_minute.max() * rescale),
        "overhead_bytes_scaled": result.total_overhead_bytes,
        "overhead_gb_rescaled": result.rescaled_total_overhead_bytes() / 1e9,
        "overhead_mbps_rescaled": result.overhead_mbps() * rescale,
        "baseline_gb_rescaled": result.total_baseline_bytes * rescale / 1e9,
    }
    checkpoints = list(range(0, len(trace.per_minute), max(1, len(trace.per_minute) // 14)))
    series_a = [(m, int(trace.per_minute[m] * rescale)) for m in checkpoints]
    cumulative = trace.cumulative()
    series_b = [(m, int(cumulative[m] * rescale)) for m in checkpoints]
    series_c = [
        (m, result.cumulative_overhead_bytes[m] * rescale / 1e9)
        for m in checkpoints
    ]
    text = "\n\n".join(
        [
            format_series("minute", "queries/min", series_a, title="Fig 12a: per-minute query volume"),
            format_series("minute", "cumulative queries", series_b, title="Fig 12b: cumulative queries"),
            format_series("minute", "cumulative TXT overhead (GB)", series_c, title="Fig 12c: cumulative TXT-signalling overhead"),
            (
                f"total queries (rescaled): {summary['total_queries_rescaled']:,} "
                f"(paper: 92,705,013)\n"
                f"TXT overhead (rescaled): {summary['overhead_gb_rescaled']:.2f} GB "
                f"over 7 h = {summary['overhead_mbps_rescaled']:.2f} Mbps "
                f"(paper: ~1.2 GB, 0.38 Mbps)"
            ),
        ]
    )
    return summary, text
