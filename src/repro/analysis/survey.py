"""The DNS-OARC 2015 operator survey (paper Section 5.2).

The paper surveyed 56 attendees who run their own recursive resolvers:

* 17 (30.35 %) use defaults produced by a package installer;
* 5 (8.9 %) use defaults of a manual installation;
* 34 (60.7 %) use their own configuration;
* 35 (62.5 %) use ISC's DLV server; 21 (37.5 %) use other anchors.

We reproduce the published breakdown as data, and provide a seeded
population model that maps respondents onto the configuration classes of
Table 2/3 — used by the misconfiguration-prevalence bench to estimate
how many operators' resolvers would leak.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

from ..configs import InstallMethod, config_from_install
from ..resolver import ResolverConfig

TOTAL_RESPONDENTS = 56
PACKAGE_DEFAULTS = 17
MANUAL_DEFAULTS = 5
OWN_CONFIGURATION = 34
ISC_DLV_USERS = 35


def survey_breakdown() -> List[dict]:
    """The published response counts and shares."""
    rows = [
        ("package-installer defaults", PACKAGE_DEFAULTS),
        ("manual-install defaults", MANUAL_DEFAULTS),
        ("own configuration", OWN_CONFIGURATION),
    ]
    return [
        {
            "answer": label,
            "respondents": count,
            "share": count / TOTAL_RESPONDENTS,
        }
        for label, count in rows
    ] + [
        {
            "answer": "uses ISC DLV server",
            "respondents": ISC_DLV_USERS,
            "share": ISC_DLV_USERS / TOTAL_RESPONDENTS,
        }
    ]


@dataclasses.dataclass(frozen=True)
class Respondent:
    """One modelled survey respondent's resolver."""

    index: int
    config_class: str
    config: ResolverConfig

    def leaks_everything(self) -> bool:
        """Would this resolver send every domain to DLV?  True when the
        validation machinery runs without a usable root anchor while
        look-aside is on."""
        return (
            self.config.lookaside_enabled
            and not self.config.root_anchor_available
        )

    def queries_dlv(self) -> bool:
        return self.config.lookaside_enabled


def model_population(seed: int = 56) -> List[Respondent]:
    """Map the 56 respondents onto configuration classes.

    Package-default users split between apt-get (no DLV) and yum (DLV
    on, anchor present); manual-default users run the paper's risky
    manual scenario; own-configuration users mostly configure correctly
    but a seeded minority reproduce the missing-anchor mistake the paper
    demonstrates is easy to make.
    """
    rng = random.Random(seed)
    respondents: List[Respondent] = []
    index = 0
    for _ in range(PACKAGE_DEFAULTS):
        method = rng.choice([InstallMethod.APT_GET, InstallMethod.YUM])
        respondents.append(
            Respondent(index, f"package:{method.value}", config_from_install(method))
        )
        index += 1
    for _ in range(MANUAL_DEFAULTS):
        respondents.append(
            Respondent(index, "manual-default", config_from_install(InstallMethod.MANUAL))
        )
        index += 1
    for _ in range(OWN_CONFIGURATION):
        # 1 in 5 own-config operators forget the anchor include —
        # the paper's "unlikely to correctly make the configuration"
        # observation, kept conservative.
        forgot_anchor = rng.random() < 0.2
        config = config_from_install(
            InstallMethod.MANUAL, anchor_included=not forgot_anchor
        )
        respondents.append(
            Respondent(
                index,
                "own-config" + (":broken-anchor" if forgot_anchor else ""),
                config,
            )
        )
        index += 1
    return respondents


def prevalence_estimate(seed: int = 56) -> Dict[str, float]:
    """Fractions of the modelled population in each risk class."""
    population = model_population(seed)
    total = len(population)
    dlv_users = sum(1 for r in population if r.queries_dlv())
    leak_all = sum(1 for r in population if r.leaks_everything())
    return {
        "respondents": float(total),
        "dlv_enabled_fraction": dlv_users / total,
        "leaks_everything_fraction": leak_all / total,
        "isc_dlv_share_published": ISC_DLV_USERS / TOTAL_RESPONDENTS,
    }
