"""Per-TLD leakage breakdown.

Explains *where* the Fig 9 suppression happens: in TLDs where the
registry has no deposits, the whole branch collapses into one or two
NSEC ranges, so everything after the first query is suppressed; in the
deposit-dense TLDs (com/net/org) ranges are narrow and almost every
domain leaks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.experiment import ExperimentResult
from ..dnscore import Name
from .render import format_table


def per_tld_leakage(
    result: ExperimentResult,
    queried_names: Sequence[Name],
) -> List[dict]:
    """Rows of (tld, queried, leaked, proportion), sorted by volume."""
    queried_by_tld: Dict[str, int] = {}
    leaked_by_tld: Dict[str, int] = {}
    for name in queried_names:
        tld = name.labels[-1]
        queried_by_tld[tld] = queried_by_tld.get(tld, 0) + 1
    for name in result.leakage.leaked_domains:
        tld = name.labels[-1]
        leaked_by_tld[tld] = leaked_by_tld.get(tld, 0) + 1
    rows = []
    for tld, queried in sorted(
        queried_by_tld.items(), key=lambda item: -item[1]
    ):
        leaked = leaked_by_tld.get(tld, 0)
        rows.append(
            {
                "tld": tld,
                "queried": queried,
                "leaked": leaked,
                "proportion": leaked / queried if queried else 0.0,
            }
        )
    return rows


def render_per_tld(rows: List[dict]) -> str:
    return format_table(
        ["TLD", "Queried", "Leaked", "Proportion"],
        [
            (r["tld"], r["queried"], r["leaked"], f"{r['proportion']:.0%}")
            for r in rows
        ],
        title="Leakage by TLD (suppression concentrates in deposit-free TLDs)",
    )
