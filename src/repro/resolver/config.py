"""Behavioural resolver configuration.

:class:`ResolverConfig` captures the knobs the paper varies across its
16 environments (Section 4.3/4.4):

* BIND's ``dnssec-enable``, ``dnssec-validation yes|auto|no``, and
  ``dnssec-lookaside auto|no`` statements, plus whether the trust-anchor
  ``include`` line made it into the config;
* Unbound's implicit style: validation and look-aside exist only when
  the corresponding anchor files are configured;
* the remedy switches this reproduction adds (Section 6.2): TXT
  signalling, Z-bit signalling, and hashed (privacy-preserving) DLV.

The ``effective_*`` properties encode the semantics the paper reverse
engineers — most importantly that with ``dnssec-validation yes`` and no
anchor included, validation machinery runs but can never conclude
*secure*, which is what floods the DLV registry.
"""

from __future__ import annotations

import dataclasses
import enum

from .hardening import HardeningPolicy


class ResolverFlavor(enum.Enum):
    BIND = "bind"
    UNBOUND = "unbound"


class ValidationSetting(enum.Enum):
    """BIND's dnssec-validation values."""

    YES = "yes"
    AUTO = "auto"
    NO = "no"


class LookasideSetting(enum.Enum):
    """BIND's dnssec-lookaside values."""

    AUTO = "auto"
    NO = "no"


class DlvOutagePolicy(enum.Enum):
    """How the resolver degrades when the DLV registry is unreachable.

    The paper's Section 8.4 documents registry outages breaking
    validation for look-aside-dependent resolvers; the ISC phase-out is
    the terminal instance.  Resolver implementations differed, and the
    policy changes both availability *and* what the registry operator
    observes during the outage:

    * ``SERVFAIL`` — validation cannot conclude, so every answer that
      needed the registry fails (strict-BIND behaviour: availability
      collapses, but the search is re-attempted on every query, so the
      registry path keeps carrying the full Case-2 exposure);
    * ``INSECURE_FALLBACK`` — treat registry-unreachable like "no DLV
      record": answers flow without AD (paired with
      ``dlv_fail_holddown`` this mirrors BIND's SERVFAIL/bad cache:
      after one failed search the resolver holds the registry down and
      stops leaking for the hold-down window);
    * ``DISABLE_AFTER_N`` — after ``dlv_disable_threshold`` consecutive
      registry failures, turn look-aside off for the rest of the
      process lifetime (the operational "rndc flush + config edit" the
      ISC phase-out eventually forced on everyone, automated).
    """

    SERVFAIL = "servfail"
    INSECURE_FALLBACK = "insecure-fallback"
    DISABLE_AFTER_N = "disable-after-n-failures"


@dataclasses.dataclass(frozen=True)
class ResolverConfig:
    """One resolver's security configuration."""

    flavor: ResolverFlavor = ResolverFlavor.BIND
    dnssec_enable: bool = True
    dnssec_validation: ValidationSetting = ValidationSetting.YES
    dnssec_lookaside: LookasideSetting = LookasideSetting.NO
    #: Did the operator include the root trust anchor (bind.keys /
    #: auto-trust-anchor-file)?  The paper's key misconfiguration knob.
    trust_anchor_included: bool = True
    #: Is a DLV anchor configured (built-in for BIND's `auto`;
    #: dlv-anchor-file for Unbound)?
    dlv_anchor_included: bool = True

    # ---- remedies (paper Section 6.2; off = vanilla behaviour) ----
    txt_signaling: bool = False
    zbit_signaling: bool = False
    hashed_dlv: bool = False
    #: Hardened TXT signalling (Section 6.2.3 "Attacks"): verify the
    #: signal RRset's signature against the zone's own DNSKEY before
    #: acting on it, defeating on-path rewriting for signed zones.
    validate_txt_signal: bool = False
    #: Ablation knob: RFC 5074 aggressive negative caching of registry
    #: NSEC records.  Disabling it shows how much of the leakage
    #: suppression in Figs 8/9 the mechanism is responsible for.
    aggressive_nsec_caching: bool = True
    #: RFC 7816 query-name minimisation toward ancestor servers — the
    #: upstream-privacy measure the paper's threat model cites.  It
    #: hides full names from the root/TLDs but not from the registry.
    qname_minimization: bool = False

    # ---- resilience (fault-injection subsystem; defaults preserve the
    # ---- pre-resilience behaviour exactly) ----
    #: Degradation policy when the DLV registry is unreachable.  The
    #: default mirrors this simulator's historical behaviour (and
    #: lenient resolvers): fall back to an insecure answer.
    dlv_outage_policy: DlvOutagePolicy = DlvOutagePolicy.INSECURE_FALLBACK
    #: After a failed registry search, suppress further look-aside
    #: searches for this many sim-seconds (BIND's bad/SERVFAIL cache).
    #: 0 disables the hold-down: every resolution re-probes the registry.
    dlv_fail_holddown: float = 0.0
    #: Consecutive registry failures before ``DISABLE_AFTER_N`` turns
    #: look-aside off entirely.
    dlv_disable_threshold: int = 5
    #: RFC 8767 serve-stale: answer from expired cache entries when
    #: every upstream is unreachable.
    serve_stale: bool = False
    #: How long past expiry an entry stays servable (RFC 8767 suggests
    #: 1-3 days).
    serve_stale_window: float = 86400.0
    #: SERVFAIL/lame-server hold-down for the iterative engine: a server
    #: that answered SERVFAIL/REFUSED (or a zone whose servers all timed
    #: out) is skipped for this many sim-seconds.  0 disables the cache.
    lame_ttl: float = 0.0

    # ---- byzantine robustness (adversary subsystem; the default policy
    # ---- is fully hardened and benign-transparent) ----
    #: Response matching, bailiwick scrubbing, referral-direction checks
    #: and work budgets applied by the engine and validator.  Use
    #: ``HardeningPolicy.off()`` for the wire-trusting baseline the
    #: adversary matrix compares against.
    hardening: HardeningPolicy = HardeningPolicy()

    # ---- engine limits (formerly module constants in engine.py,
    # ---- promoted so chaos/adversary cells can sweep them) ----
    #: Referrals one iterative walk may follow before giving up.
    max_referrals: int = 30
    #: CNAME chain length before the resolution is declared a loop.
    max_cname_chain: int = 8
    #: UDP retransmissions per server before failing over.
    max_retries: int = 3

    # ---- performance (hot-path optimization pass; results are
    # ---- byte-identical either way, only wall-clock changes) ----
    #: Per-resolver verify memo: each distinct (key, RRset, RRSIG)
    #: triple is modexp-verified once, while the logical KeyTrap
    #: counters (``signature_checks`` / ``crypto_verify_calls``) still
    #: advance on every check.  Also gated by the process-wide switch in
    #: :mod:`repro.perf` (``REPRO_DISABLE_HOTPATH_CACHES``).
    hot_path_caches: bool = True

    # ------------------------------------------------------------------
    # Effective behaviour
    # ------------------------------------------------------------------

    @property
    def validation_machinery_active(self) -> bool:
        """Does the resolver attempt DNSSEC validation at all?"""
        if self.flavor is ResolverFlavor.BIND:
            return (
                self.dnssec_enable
                and self.dnssec_validation is not ValidationSetting.NO
            )
        # Unbound: validation exists iff a trust anchor file is set up.
        return self.trust_anchor_included or self.dlv_anchor_included

    @property
    def root_anchor_available(self) -> bool:
        """Can validation actually reach a configured root anchor?

        BIND with ``dnssec-validation auto`` uses the built-in anchor, so
        the include line does not matter; with ``yes`` the anchor must be
        included manually — the trap the paper documents.
        """
        if not self.validation_machinery_active:
            return False
        if (
            self.flavor is ResolverFlavor.BIND
            and self.dnssec_validation is ValidationSetting.AUTO
        ):
            return True
        return self.trust_anchor_included

    @property
    def lookaside_enabled(self) -> bool:
        """Will the resolver consult a DLV registry?"""
        if not self.validation_machinery_active:
            return False
        if self.flavor is ResolverFlavor.BIND:
            return (
                self.dnssec_lookaside is LookasideSetting.AUTO
                and self.dlv_anchor_included
            )
        return self.dlv_anchor_included

    def describe(self) -> str:
        parts = [self.flavor.value]
        if self.flavor is ResolverFlavor.BIND:
            parts.append(f"dnssec-enable={'yes' if self.dnssec_enable else 'no'}")
            parts.append(f"dnssec-validation={self.dnssec_validation.value}")
            parts.append(f"dnssec-lookaside={self.dnssec_lookaside.value}")
        parts.append(f"anchor={'yes' if self.trust_anchor_included else 'no'}")
        parts.append(f"dlv-anchor={'yes' if self.dlv_anchor_included else 'no'}")
        remedies = [
            name
            for name, enabled in (
                ("txt", self.txt_signaling),
                ("zbit", self.zbit_signaling),
                ("hashed-dlv", self.hashed_dlv),
            )
            if enabled
        ]
        if remedies:
            parts.append("remedies=" + "+".join(remedies))
        if self.dlv_outage_policy is not DlvOutagePolicy.INSECURE_FALLBACK:
            parts.append(f"dlv-outage={self.dlv_outage_policy.value}")
        if self.serve_stale:
            parts.append("serve-stale")
        return " ".join(parts)


def correct_bind_config(**overrides) -> ResolverConfig:
    """The Fig. 6 'correct' manual configuration: validation + DLV +
    anchors all present."""
    defaults = dict(
        flavor=ResolverFlavor.BIND,
        dnssec_enable=True,
        dnssec_validation=ValidationSetting.YES,
        dnssec_lookaside=LookasideSetting.AUTO,
        trust_anchor_included=True,
        dlv_anchor_included=True,
    )
    defaults.update(overrides)
    return ResolverConfig(**defaults)


def broken_anchor_bind_config(**overrides) -> ResolverConfig:
    """The paper's leaky configuration: validation yes, DLV on, but the
    trust anchor include line missing (apt-get + manual edit, or manual
    install without bind.keys)."""
    defaults = dict(
        flavor=ResolverFlavor.BIND,
        dnssec_enable=True,
        dnssec_validation=ValidationSetting.YES,
        dnssec_lookaside=LookasideSetting.AUTO,
        trust_anchor_included=False,
        dlv_anchor_included=True,
    )
    defaults.update(overrides)
    return ResolverConfig(**defaults)
