"""Trust anchors: the validator's pre-configured roots of trust.

A resolver validates a chain up to the deepest configured anchor
(normally the DNS root key).  DLV adds a *look-aside* anchor: the DLV
registry zone's own key, configured out of band (e.g. BIND's built-in
``dlv.isc.org`` anchor, or Unbound's ``dlv-anchor-file``).

The paper's central misconfiguration (Section 4.3) is a resolver with
``dnssec-validation yes`` but **no root anchor installed** — validation
then can never conclude *secure*, and with look-aside enabled every
domain is sent to the DLV registry.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..crypto import verify_ds_matches
from ..dnscore import DNSKEY, DS, Name


@dataclasses.dataclass(frozen=True)
class TrustAnchor:
    """A configured trust anchor: a DS or a DNSKEY for a zone apex."""

    zone: Name
    ds: Optional[DS] = None
    dnskey: Optional[DNSKEY] = None

    def __post_init__(self) -> None:
        if (self.ds is None) == (self.dnskey is None):
            raise ValueError("an anchor is exactly one of DS or DNSKEY")

    def matches_key(self, dnskey: DNSKEY) -> bool:
        """Does *dnskey* (from the zone's DNSKEY RRset) match this anchor?"""
        if self.dnskey is not None:
            return dnskey == self.dnskey
        assert self.ds is not None
        return verify_ds_matches(self.zone, dnskey, self.ds)


class TrustAnchorStore:
    """The set of configured anchors, looked up by closest enclosure."""

    def __init__(self):
        self._anchors: Dict[Name, TrustAnchor] = {}

    def add(self, anchor: TrustAnchor) -> None:
        self._anchors[anchor.zone] = anchor

    def remove(self, zone: Name) -> None:
        self._anchors.pop(zone, None)

    def anchor_for_zone(self, zone: Name) -> Optional[TrustAnchor]:
        """The anchor configured exactly at *zone*, if any."""
        return self._anchors.get(zone)

    def closest_enclosing(self, name: Name) -> Optional[TrustAnchor]:
        """The deepest anchor at-or-above *name*."""
        for ancestor in name.ancestors():
            anchor = self._anchors.get(ancestor)
            if anchor is not None:
                return anchor
        return None

    def has_any(self) -> bool:
        return bool(self._anchors)

    def __len__(self) -> int:
        return len(self._anchors)
