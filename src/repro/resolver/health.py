"""Per-server health tracking: SRTT, failures, backoff, lame caching.

Real resolvers keep a per-server scoreboard: a smoothed RTT estimate
(BIND's SRTT, Unbound's infra cache), consecutive-failure counts, and a
short-lived "lame server" / SERVFAIL hold-down so a broken server is
not hammered on every resolution.  The iterative engine consults this
tracker to order a cut's addresses, to pace its retransmissions with
exponential backoff, and to fail fast against servers it recently saw
dead — the behaviours the fault-injection benches measure.

All timing runs on the simulated clock, so health state is as
deterministic as everything else in a run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from ..netsim import SimClock

#: EWMA weight of the previous SRTT estimate (BIND uses ~0.7).
_SRTT_ALPHA = 0.7
#: First-retry backoff in seconds; doubles per attempt up to the cap.
_BACKOFF_BASE = 0.4
_BACKOFF_CAP = 8.0


@dataclasses.dataclass
class ServerStats:
    """The scoreboard for one server address."""

    srtt: Optional[float] = None
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    last_failure_at: Optional[float] = None
    #: Until when the server is held down as lame/SERVFAIL-ing.
    lame_until: float = 0.0


class ServerHealth:
    """Tracks per-address health on the simulated clock.

    ``lame_ttl`` is the SERVFAIL/lame-server hold-down: a server marked
    lame is skipped by the engine until the hold-down expires.  The
    default of 0 disables the cache (every query is attempted), which
    preserves the traffic shape of fault-free experiments; resolvers
    opt in via :class:`~repro.resolver.config.ResolverConfig.lame_ttl`.
    """

    def __init__(
        self,
        clock: SimClock,
        lame_ttl: float = 0.0,
        backoff_base: float = _BACKOFF_BASE,
        backoff_cap: float = _BACKOFF_CAP,
    ):
        if lame_ttl < 0:
            raise ValueError("lame_ttl must be non-negative")
        self._clock = clock
        self.lame_ttl = lame_ttl
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._stats: Dict[str, ServerStats] = {}
        self.lame_markings = 0

    def stats(self, address: str) -> ServerStats:
        entry = self._stats.get(address)
        if entry is None:
            entry = ServerStats()
            self._stats[address] = entry
        return entry

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_success(self, address: str, rtt: float) -> None:
        entry = self.stats(address)
        entry.successes += 1
        entry.consecutive_failures = 0
        if entry.srtt is None:
            entry.srtt = rtt
        else:
            entry.srtt = _SRTT_ALPHA * entry.srtt + (1.0 - _SRTT_ALPHA) * rtt

    def record_failure(self, address: str) -> None:
        entry = self.stats(address)
        entry.failures += 1
        entry.consecutive_failures += 1
        entry.last_failure_at = self._clock.now

    def mark_lame(self, address: str) -> None:
        """Hold an address down after a SERVFAIL/REFUSED/lame response.
        No-op when the lame cache is disabled (``lame_ttl == 0``)."""
        if self.lame_ttl <= 0:
            return
        entry = self.stats(address)
        entry.lame_until = self._clock.now + self.lame_ttl
        self.lame_markings += 1

    def is_lame(self, address: str) -> bool:
        entry = self._stats.get(address)
        return entry is not None and self._clock.now < entry.lame_until

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based): exponential,
        deterministic, capped."""
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)

    def order(self, addresses: Iterable[str]) -> List[str]:
        """Preference order over a cut's addresses.

        Deduplicates, keeps healthy servers in their given order (so
        fault-free runs are byte-identical to the pre-health engine),
        and demotes servers with recent consecutive failures or an
        active lame hold-down to the back.
        """
        seen = set()
        unique: List[str] = []
        for address in addresses:
            if address not in seen:
                seen.add(address)
                unique.append(address)

        def sort_key(address: str):
            entry = self._stats.get(address)
            consecutive = entry.consecutive_failures if entry is not None else 0
            return (self.is_lame(address), consecutive)

        return sorted(unique, key=sort_key)  # stable: ties keep input order
