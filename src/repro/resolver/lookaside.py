"""DNSSEC Look-aside Validation (RFC 5074) as BIND/Unbound implement it.

When normal validation cannot conclude *secure* — because a parent zone
proved there is no DS (island of security), or because no trust anchor
is configured at all — a look-aside-enabled resolver searches a DLV
registry for an off-path trust anchor:

1. form ``<target>.<registry>`` and query it with type DLV;
2. on "No such name", strip the leading label and try again, down to the
   TLD level ("enclosing records", RFC 5074 section 4.1);
3. suppress queries whose non-existence a previously *validated* NSEC
   from the registry already proves (aggressive negative caching);
4. a found DLV record is used exactly like a DS record: fetch the target
   zone's DNSKEY, match, verify, and continue the chain.

This module is deliberately faithful to the **lax rule** the paper
demonstrates: the look-aside search runs for *every* non-secure name,
including the vast majority of domains that never deployed DNSSEC —
that is the privacy leak.  The remedy hooks (TXT / Z-bit gating, hashed
queries) live in :mod:`repro.resolver.recursive`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..crypto import hash_domain_label
from ..dnscore import Name, RCode, RRType, RRset
from .config import DlvOutagePolicy
from .engine import IterativeEngine, ResolutionError
from .negcache import NegativeCache
from .validator import ValidationStatus, Validator, ZoneSecurity


@dataclasses.dataclass
class LookasideResult:
    """What one look-aside search did and concluded."""

    status: ValidationStatus
    #: DLV queries actually sent on the wire during this search.
    queries_sent: int
    #: Queries suppressed by the negative caches (exact or aggressive).
    queries_suppressed: int
    #: The candidate name whose DLV record anchored the chain, if any.
    anchored_at: Optional[Name] = None
    #: True when the registry could not be reached (or the search was
    #: skipped because of a recent failure): the degradation policy in
    #: :class:`~repro.resolver.recursive.RecursiveResolver` keys off it.
    registry_unreachable: bool = False
    #: Why the search never ran, when it didn't: "disabled" (auto-off
    #: after repeated failures) or "holddown" (inside the fail window).
    skipped: Optional[str] = None


class DlvLookaside:
    """The look-aside searcher bound to one registry."""

    def __init__(
        self,
        engine: IterativeEngine,
        validator: Validator,
        negcache: NegativeCache,
        registry_origin: Name,
        hashed: bool = False,
        aggressive_caching: bool = True,
        outage_policy: DlvOutagePolicy = DlvOutagePolicy.INSECURE_FALLBACK,
        fail_holddown: float = 0.0,
        disable_threshold: int = 5,
        tracer=None,
        metrics=None,
    ):
        self._engine = engine
        self._validator = validator
        self._negcache = negcache
        self._clock = engine.clock
        #: Optional telemetry sinks (duck-typed, ``None``-guarded).
        #: The tracer is where the Case-1/Case-2 classification lands:
        #: every probe span carries a ``leak`` tag.
        self._tracer = tracer
        self._metrics = metrics
        self.registry_origin = registry_origin
        self.hashed = hashed
        self.aggressive_caching = aggressive_caching
        #: Graceful-degradation knobs (see :class:`DlvOutagePolicy`).
        self.outage_policy = outage_policy
        self.fail_holddown = fail_holddown
        self.disable_threshold = max(1, disable_threshold)
        #: Consecutive failed registry contacts (reset on any success).
        self.registry_failures = 0
        #: True once ``DISABLE_AFTER_N`` tripped: look-aside is off.
        self.disabled = False
        self._holddown_until = 0.0
        self.total_queries_sent = 0
        self.total_queries_suppressed = 0
        self.searches_skipped = 0

    # ------------------------------------------------------------------
    # Name construction
    # ------------------------------------------------------------------

    def dlv_query_name(self, candidate: Name) -> Name:
        """The owner name queried in the registry for *candidate*."""
        if self.hashed:
            return self.registry_origin.prepend(hash_domain_label(candidate))
        return candidate.concatenate(self.registry_origin)

    def candidates(self, zone: Name) -> List[Name]:
        """Label-stripping search order for *zone* (deepest first).

        Hashed mode has no enclosing-record semantics — only the exact
        domain digest can be registered — so the search is one name.
        """
        if self.hashed:
            return [zone]
        return [
            ancestor
            for ancestor in zone.ancestors()
            if ancestor.label_count >= 1
        ]

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------

    def try_lookaside(self, zone: Name) -> LookasideResult:
        """Search the registry for a trust anchor covering *zone*.

        Degradation handling: a search that cannot reach the registry is
        a *registry failure* — it arms the fail hold-down, counts toward
        the auto-disable threshold, and flags the result so the resolver
        can apply its :class:`DlvOutagePolicy`.

        When a tracer is attached, the search is a ``lookaside`` span
        with one ``dlv_probe`` child per candidate, each tagged with
        the paper's classification — ``leak="case-1"`` (the name is
        deposited: an involved party asking about itself) or
        ``leak="case-2"`` (not deposited: a query the registry had no
        business seeing).  The first Case-2 probe also tags the parent
        span (``leak`` / ``leak_point``): *this* is where the privacy
        leak happened.
        """
        tracer = self._tracer
        if tracer is None:
            return self._search(zone)
        tracer.begin("lookaside", zone=zone.to_text())
        try:
            result = self._search(zone)
        except BaseException:
            tracer.finish(failed=True)
            raise
        attrs = {
            "status": result.status.value,
            "sent": result.queries_sent,
            "suppressed": result.queries_suppressed,
        }
        if result.skipped is not None:
            attrs["skipped"] = result.skipped
        if result.registry_unreachable:
            attrs["registry_unreachable"] = True
        if result.anchored_at is not None:
            attrs["anchored_at"] = result.anchored_at.to_text()
        tracer.finish(**attrs)
        return result

    def _search(self, zone: Name) -> LookasideResult:
        tracer = self._tracer
        metrics = self._metrics
        skipped = self._skip_reason()
        if skipped is not None:
            self.searches_skipped += 1
            if metrics is not None:
                metrics.inc("lookaside.searches_skipped")
            return LookasideResult(
                status=ValidationStatus.INSECURE,
                queries_sent=0,
                queries_suppressed=0,
                registry_unreachable=skipped == "holddown",
                skipped=skipped,
            )
        if metrics is not None:
            metrics.inc("lookaside.searches")
        sent = 0
        suppressed = 0
        unreachable = False
        leak_tagged = False
        registry_security = self._validator.zone_security(self.registry_origin)
        registry_trusted = registry_security.status is ValidationStatus.SECURE
        result_status = ValidationStatus.INSECURE
        anchored_at: Optional[Name] = None
        for candidate in self.candidates(zone):
            dlv_name = self.dlv_query_name(candidate)
            if self._suppressed(dlv_name):
                suppressed += 1
                if tracer is not None:
                    tracer.event(
                        "dlv_probe", candidate=candidate.to_text(),
                        dlv_name=dlv_name.to_text(), outcome="suppressed",
                        leak="none",
                    )
                if metrics is not None:
                    metrics.inc("lookaside.probes_suppressed")
                continue
            if tracer is not None:
                tracer.begin(
                    "dlv_probe", candidate=candidate.to_text(),
                    dlv_name=dlv_name.to_text(),
                )
            try:
                outcome = self._engine.resolve(dlv_name, RRType.DLV)
            except ResolutionError:
                unreachable = True
                self._note_registry_failure()
                if tracer is not None:
                    tracer.finish(outcome="unreachable", leak="none",
                                  failed=True)
                if metrics is not None:
                    metrics.inc("lookaside.registry_unreachable")
                break
            self._note_registry_contact()
            if not outcome.from_cache:
                sent += 1
                if metrics is not None:
                    metrics.inc("lookaside.probes_sent")
            if outcome.is_positive():
                # A positive answer means the candidate *is* deposited:
                # Case-1 traffic from an involved party (hashed probes
                # expose only a digest and classify separately).
                leak = "hashed" if self.hashed else "case-1"
                if metrics is not None and not self.hashed:
                    metrics.inc("lookaside.case1_probes")
                dlv_rrset = self._extract_dlv(outcome.answer, dlv_name)
                if dlv_rrset is None:
                    if tracer is not None:
                        tracer.finish(outcome="malformed", leak=leak)
                    continue
                if not registry_trusted:
                    # The registry's own chain does not validate (no or
                    # stale DLV anchor): its records must not anchor
                    # anything.  The query already leaked, though.
                    if tracer is not None:
                        tracer.finish(outcome="registry_untrusted", leak=leak)
                    break
                if not self._validator.verify_with_zone_keys(
                    dlv_rrset, outcome.rrsig, self.registry_origin
                ):
                    result_status = ValidationStatus.BOGUS
                    if tracer is not None:
                        tracer.finish(outcome="bogus_dlv", leak=leak)
                    break
                security = self._anchor_chain(candidate, dlv_rrset, zone)
                result_status = security.status
                anchored_at = candidate
                if tracer is not None:
                    tracer.finish(
                        outcome="anchored", leak=leak,
                        anchored_status=security.status.value,
                    )
                break
            # Negative: the candidate is NOT deposited — the probe told
            # the registry about a domain it has no relationship with.
            # This is the paper's Case-2, the privacy leak itself.
            leak = "hashed" if self.hashed else "case-2"
            if metrics is not None and not self.hashed:
                metrics.inc("lookaside.case2_probes")
            if registry_trusted:
                self._cache_denial(outcome)
            if tracer is not None:
                probe_attrs = {"outcome": outcome.rcode.name, "leak": leak}
                if outcome.from_cache:
                    probe_attrs["cached"] = True
                tracer.finish(**probe_attrs)
                if leak == "case-2" and not leak_tagged:
                    # Tag the enclosing lookaside span as the leak
                    # point, naming the deepest (most sensitive) probe.
                    leak_tagged = True
                    tracer.annotate(
                        leak="case-2", leak_point=dlv_name.to_text()
                    )
            # Keep stripping labels toward the TLD.
        self.total_queries_sent += sent
        self.total_queries_suppressed += suppressed
        return LookasideResult(
            status=result_status,
            queries_sent=sent,
            queries_suppressed=suppressed,
            anchored_at=anchored_at,
            registry_unreachable=unreachable,
        )

    # ------------------------------------------------------------------
    # Graceful degradation bookkeeping
    # ------------------------------------------------------------------

    def _skip_reason(self) -> Optional[str]:
        if self.disabled:
            return "disabled"
        if self._clock.now < self._holddown_until:
            return "holddown"
        return None

    def _note_registry_failure(self) -> None:
        self.registry_failures += 1
        if self.fail_holddown > 0:
            self._holddown_until = self._clock.now + self.fail_holddown
        if (
            self.outage_policy is DlvOutagePolicy.DISABLE_AFTER_N
            and self.registry_failures >= self.disable_threshold
        ):
            self.disabled = True

    def _note_registry_contact(self) -> None:
        self.registry_failures = 0
        self._holddown_until = 0.0

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _suppressed(self, dlv_name: Name) -> bool:
        if self._negcache.known_negative(dlv_name, RRType.DLV):
            return True
        if not self.aggressive_caching:
            return False
        return self._negcache.nsec_covers(self.registry_origin, dlv_name)

    @staticmethod
    def _extract_dlv(answer: Tuple[RRset, ...], dlv_name: Name) -> Optional[RRset]:
        for rrset in answer:
            if rrset.rtype is RRType.DLV and rrset.name == dlv_name:
                return rrset
        return None

    def _cache_denial(self, outcome) -> None:
        """Validate and cache NSEC proofs from a registry denial.

        NSEC3 proofs are deliberately *not* cached aggressively — the
        resolver cannot map them back to name ranges (paper Section 7.3:
        an NSEC3 registry would leak every query).
        """
        if not self.aggressive_caching:
            return
        for nsec_rrset, nsec_sig in outcome.nsec:
            if nsec_rrset.rtype is not RRType.NSEC:
                continue
            if self._validator.verify_with_zone_keys(
                nsec_rrset, nsec_sig, self.registry_origin
            ):
                self._negcache.add_nsec(self.registry_origin, nsec_rrset)

    def _anchor_chain(
        self, candidate: Name, dlv_rrset: RRset, zone: Name
    ) -> ZoneSecurity:
        """Use a DLV RRset as a trust anchor for *candidate*, then walk
        the normal chain down to *zone* if it lies deeper."""
        security = self._validator.security_from_ds_rrset(candidate, dlv_rrset)
        self._validator.invalidate_below(candidate)
        self._validator.set_zone_security(candidate, security)
        if candidate == zone or security.status is not ValidationStatus.SECURE:
            return security
        return self._validator.zone_security(zone)
