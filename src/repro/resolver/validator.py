"""DNSSEC validation: chain-of-trust walking and status classification.

Implements the four RFC 4033 validation outcomes the paper summarises in
Section 2.2:

* ``SECURE``        — an unbroken chain of validated DNSKEY/DS records
  from a configured trust anchor down to the answer zone, and a good
  signature over the answer.
* ``INSECURE``      — the chain provably stops: a parent zone proved
  (via a validated NSEC with no DS bit) that the child has no DS.  This
  is the island-of-security case DLV was invented for.
* ``BOGUS``         — the chain ought to work but a signature or digest
  check failed (tampering, wrong keys, unsigned data in a signed zone).
* ``INDETERMINATE`` — validation cannot even start or conclude, most
  importantly when **no trust anchor is configured** — the paper's
  central misconfiguration, which sends *every* domain to look-aside.

The validator issues the explicit DS and DNSKEY queries that make up a
large share of the paper's Table 4 traffic mix.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from ..dnscore import DS, Message, Name, RCode, ROOT, RRType, RRset
from ..netsim import SimClock
from ..zones.zone import verify_rrset_signature
from .anchors import TrustAnchor, TrustAnchorStore
from .cache import RRsetCache
from .engine import IterativeEngine, ResolutionOutcome
from .negcache import NegativeCache

#: How long a zone's computed security status is memoised (seconds).
_SECURITY_MEMO_TTL = 3600.0


class ValidationStatus(enum.Enum):
    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"
    INDETERMINATE = "indeterminate"


@dataclasses.dataclass
class ZoneSecurity:
    """The validator's conclusion about one zone apex."""

    status: ValidationStatus
    dnskeys: Optional[RRset]
    expires_at: float

    def fresh(self, now: float) -> bool:
        return now < self.expires_at


class Validator:
    """Walks chains of trust over the iterative engine."""

    def __init__(
        self,
        engine: IterativeEngine,
        anchors: TrustAnchorStore,
        cache: RRsetCache,
        negcache: NegativeCache,
        clock: SimClock,
        tracer=None,
        metrics=None,
        verify_memo=None,
    ):
        self._engine = engine
        self._anchors = anchors
        self._cache = cache
        self._negcache = negcache
        self._clock = clock
        #: Optional telemetry sinks, duck-typed and ``None``-guarded —
        #: see :mod:`repro.core.tracing` / :mod:`repro.core.metrics`.
        self._tracer = tracer
        self._metrics = metrics
        #: Optional :class:`repro.crypto.memo.VerifyMemo`.  Consulted
        #: *after* the logical counters and the KeyTrap budget charge,
        #: so cache hits change wall-clock only, never cost accounting.
        self._verify_memo = verify_memo
        self._zone_security: Dict[Name, ZoneSecurity] = {}
        self.signature_checks = 0
        self.signature_failures = 0
        #: Individual cryptographic verify calls (the KeyTrap cost unit:
        #: one per candidate (RRSIG, DNSKEY) pair actually tried).
        self.crypto_verify_calls = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def validate_outcome(self, outcome: ResolutionOutcome) -> ValidationStatus:
        """Classify a resolution outcome.

        Traced as a ``validate`` span whose children are the DS/DNSKEY
        fetches and ``signature_verify`` events the chain walk needed.
        """
        tracer = self._tracer
        if tracer is None:
            return self._validate_outcome_impl(outcome)
        tracer.begin(
            "validate", qname=outcome.qname.to_text(),
            zone=outcome.zone.to_text(),
        )
        try:
            status = self._validate_outcome_impl(outcome)
        except BaseException:
            tracer.finish(failed=True)
            raise
        tracer.finish(status=status.value)
        return status

    def _validate_outcome_impl(
        self, outcome: ResolutionOutcome
    ) -> ValidationStatus:
        security = self.zone_security(outcome.zone)
        if security.status is not ValidationStatus.SECURE:
            return security.status
        assert security.dnskeys is not None
        if outcome.is_positive():
            final = outcome.answer[-1]
            if outcome.rrsig is None:
                return ValidationStatus.BOGUS
            if self._verify_with_keys(final, outcome.rrsig, security.dnskeys):
                return ValidationStatus.SECURE
            return ValidationStatus.BOGUS
        # Negative answer from a secure zone: check the denial proofs.
        for nsec_rrset, nsec_sig in outcome.nsec:
            if nsec_sig is None or not self._verify_with_keys(
                nsec_rrset, nsec_sig, security.dnskeys
            ):
                return ValidationStatus.BOGUS
            if nsec_rrset.rtype is RRType.NSEC:
                self._negcache.add_nsec(outcome.zone, nsec_rrset)
        return ValidationStatus.SECURE

    def zone_security(self, zone: Name) -> ZoneSecurity:
        """Compute (and memoise) the security status of a zone apex."""
        cached = self._zone_security.get(zone)
        if cached is not None and cached.fresh(self._clock.now):
            return cached
        tracer = self._tracer
        if tracer is not None:
            # Span only on computation: memoised reads cost nothing and
            # would drown real chain walks in noise.
            tracer.begin("zone_security", zone=zone.to_text())
            try:
                security = self._compute_zone_security(zone)
            except BaseException:
                tracer.finish(failed=True)
                raise
            tracer.finish(status=security.status.value)
        else:
            security = self._compute_zone_security(zone)
        if self._metrics is not None:
            self._metrics.inc("validator.chain_walks")
        self._zone_security[zone] = security
        return security

    def set_zone_security(self, zone: Name, security: ZoneSecurity) -> None:
        """Install an externally derived conclusion (the DLV path)."""
        self._zone_security[zone] = security

    def invalidate_below(self, apex: Name) -> None:
        """Forget conclusions for apex and everything under it."""
        stale = [
            zone for zone in self._zone_security if zone.is_subdomain_of(apex)
        ]
        for zone in stale:
            del self._zone_security[zone]

    def security_from_ds_rrset(
        self, zone: Name, ds_rrset: RRset
    ) -> ZoneSecurity:
        """Validate *zone*'s DNSKEY RRset against trusted DS-shaped data.

        Used both for the normal parent-DS step and for DLV records
        (which are DS records by another type code, RFC 4431).
        """
        dnskeys, dnskey_sig = self._fetch_dnskey(zone)
        if dnskeys is None:
            return self._conclude(ValidationStatus.BOGUS)
        for ds in ds_rrset.rdatas:
            assert isinstance(ds, DS)
            for dnskey in dnskeys.rdatas:
                anchor = TrustAnchor(zone=zone, ds=DS(ds.key_tag, ds.algorithm, ds.digest_type, ds.digest))
                if not anchor.matches_key(dnskey):  # type: ignore[arg-type]
                    continue
                if dnskey_sig is not None and self._verify_with_keys(
                    dnskeys, dnskey_sig, dnskeys, required_tag=dnskey.key_tag()  # type: ignore[attr-defined]
                ):
                    return self._conclude(ValidationStatus.SECURE, dnskeys)
        return self._conclude(ValidationStatus.BOGUS)

    # ------------------------------------------------------------------
    # Chain walking
    # ------------------------------------------------------------------

    def _compute_zone_security(self, zone: Name) -> ZoneSecurity:
        anchor = self._anchors.anchor_for_zone(zone)
        if anchor is not None:
            return self._security_from_anchor(zone, anchor)
        if zone == ROOT:
            # No root anchor configured: validation can never conclude.
            return self._conclude(ValidationStatus.INDETERMINATE)
        parent = self._engine.parent_cut(zone) or ROOT
        parent_security = self.zone_security(parent)
        if parent_security.status is not ValidationStatus.SECURE:
            # Insecurity and indeterminacy propagate down; bogus parents
            # make children bogus too.
            return self._conclude(parent_security.status)
        ds_rrset, ds_proven_absent = self._fetch_ds(zone, parent, parent_security)
        if ds_proven_absent:
            return self._conclude(ValidationStatus.INSECURE)
        if ds_rrset is None:
            return self._conclude(ValidationStatus.INDETERMINATE)
        return self.security_from_ds_rrset(zone, ds_rrset)

    def _security_from_anchor(self, zone: Name, anchor: TrustAnchor) -> ZoneSecurity:
        dnskeys, dnskey_sig = self._fetch_dnskey(zone)
        if dnskeys is None:
            return self._conclude(ValidationStatus.BOGUS)
        for dnskey in dnskeys.rdatas:
            if not anchor.matches_key(dnskey):  # type: ignore[arg-type]
                continue
            if dnskey_sig is not None and self._verify_with_keys(
                dnskeys, dnskey_sig, dnskeys, required_tag=dnskey.key_tag()  # type: ignore[attr-defined]
            ):
                return self._conclude(ValidationStatus.SECURE, dnskeys)
        return self._conclude(ValidationStatus.BOGUS)

    def _conclude(
        self, status: ValidationStatus, dnskeys: Optional[RRset] = None
    ) -> ZoneSecurity:
        return ZoneSecurity(
            status=status,
            dnskeys=dnskeys,
            expires_at=self._clock.now + _SECURITY_MEMO_TTL,
        )

    # ------------------------------------------------------------------
    # Record fetching
    # ------------------------------------------------------------------

    def _fetch_dnskey(self, zone: Name) -> Tuple[Optional[RRset], Optional[RRset]]:
        entry = self._cache.get(zone, RRType.DNSKEY)
        if entry is not None:
            return entry.rrset, entry.rrsig
        try:
            outcome = self._engine.resolve(zone, RRType.DNSKEY)
        except Exception:
            return None, None
        for rrset in outcome.answer:
            if rrset.rtype is RRType.DNSKEY and rrset.name == zone:
                return rrset, outcome.rrsig
        return None, None

    def _fetch_ds(
        self, zone: Name, parent: Name, parent_security: ZoneSecurity
    ) -> Tuple[Optional[RRset], bool]:
        """Fetch and validate the DS RRset for *zone* from *parent*.

        Returns ``(ds_rrset, proven_absent)``.  A cached DS (e.g. from a
        referral) is used if its signature checks out; otherwise an
        explicit DS query goes to the parent's servers — this is where
        the paper's DS query volume comes from.
        """
        assert parent_security.dnskeys is not None
        entry = self._cache.get(zone, RRType.DS)
        if entry is not None:
            if entry.rrsig is not None and self._verify_with_keys(
                entry.rrset, entry.rrsig, parent_security.dnskeys
            ):
                return entry.rrset, False
        if self._negcache.is_nodata(zone, RRType.DS):
            return None, True
        if self._negcache.nsec_covers(parent, zone):
            return None, True
        try:
            addresses = self._engine.cut_addresses(parent)
            response = self._engine.send_query(addresses[0], zone, RRType.DS)
        except Exception:
            return None, False
        return self._ingest_ds_response(response, zone, parent, parent_security)

    def _ingest_ds_response(
        self,
        response: Message,
        zone: Name,
        parent: Name,
        parent_security: ZoneSecurity,
    ) -> Tuple[Optional[RRset], bool]:
        assert parent_security.dnskeys is not None
        if response.rcode is RCode.NOERROR:
            for rrset in response.answer:
                if rrset.rtype is RRType.DS and rrset.name == zone:
                    rrsig = self._find_rrsig(response.answer, rrset)
                    if rrsig is not None and self._verify_with_keys(
                        rrset, rrsig, parent_security.dnskeys
                    ):
                        self._cache.put(rrset, rrsig=rrsig)
                        return rrset, False
                    return None, False  # present but unverifiable: bogus-ish
            # NODATA: look for a validated NSEC with no DS bit.
            for rrset in response.authority:
                if rrset.rtype is not RRType.NSEC or rrset.name != zone:
                    continue
                rrsig = self._find_rrsig(response.authority, rrset)
                if rrsig is not None and self._verify_with_keys(
                    rrset, rrsig, parent_security.dnskeys
                ):
                    if RRType.DS not in rrset.first().types:  # type: ignore[attr-defined]
                        ttl = self._soa_minimum(response)
                        self._negcache.put_nodata(zone, RRType.DS, ttl)
                        self._negcache.add_nsec(parent, rrset)
                        return None, True
            # Unsigned parent data or missing proofs.
            ttl = self._soa_minimum(response)
            self._negcache.put_nodata(zone, RRType.DS, ttl)
            return None, True
        return None, False

    @staticmethod
    def _soa_minimum(response: Message) -> float:
        for rrset in response.authority:
            if rrset.rtype is RRType.SOA:
                return min(rrset.ttl, rrset.first().minimum)  # type: ignore[attr-defined]
        return 900.0

    @staticmethod
    def _find_rrsig(section, covered: RRset) -> Optional[RRset]:
        for rrset in section:
            if rrset.rtype is not RRType.RRSIG or rrset.name != covered.name:
                continue
            if rrset.first().type_covered is covered.rtype:  # type: ignore[attr-defined]
                return rrset
        return None

    # ------------------------------------------------------------------
    # Signature plumbing
    # ------------------------------------------------------------------

    def _verify_with_keys(
        self,
        rrset: RRset,
        rrsig_rrset: RRset,
        dnskeys: RRset,
        required_tag: Optional[int] = None,
    ) -> bool:
        """Verify an RRSIG against any matching key in a DNSKEY RRset.

        Checks the signature's validity window against the simulated
        clock (RFC 4035 section 5.3.1) before the cryptographic check.
        """
        self.signature_checks += 1
        if self._metrics is not None:
            self._metrics.inc("validator.signature_checks")
        now = self._clock.now
        for rrsig in rrsig_rrset.rdatas:
            if required_tag is not None and rrsig.key_tag != required_tag:  # type: ignore[attr-defined]
                continue
            if not (rrsig.inception <= now <= rrsig.expiration):  # type: ignore[attr-defined]
                continue
            for dnskey in dnskeys.rdatas:
                if dnskey.key_tag() != rrsig.key_tag:  # type: ignore[attr-defined]
                    continue
                # KeyTrap cap: a response stuffed with colliding keys and
                # signatures can demand keys × sigs verifications; once
                # the per-resolution budget is spent, further candidate
                # pairs count as failed instead of being computed.
                if not self._engine.charge_signature():
                    self.signature_failures += 1
                    self._note_signature(rrset, ok=False, reason="budget")
                    return False
                self.crypto_verify_calls += 1
                if self._metrics is not None:
                    self._metrics.inc("validator.crypto_verify_calls")
                if verify_rrset_signature(rrset, rrsig, dnskey, memo=self._verify_memo):  # type: ignore[arg-type]
                    self._note_signature(rrset, ok=True)
                    return True
        self.signature_failures += 1
        if self._metrics is not None:
            self._metrics.inc("validator.signature_failures")
        self._note_signature(rrset, ok=False, reason="no_valid_signature")
        return False

    def _note_signature(
        self, rrset: RRset, ok: bool, reason: Optional[str] = None
    ) -> None:
        """One ``signature_verify`` trace event per signature check."""
        if self._tracer is None:
            return
        attrs = {
            "rrset": f"{rrset.name.to_text()}/{rrset.rtype.name}",
            "ok": ok,
        }
        if reason is not None:
            attrs["reason"] = reason
        self._tracer.event("signature_verify", **attrs)

    def verify_with_zone_keys(
        self, rrset: RRset, rrsig_rrset: Optional[RRset], zone: Name
    ) -> bool:
        """Public helper for the DLV machinery: verify against a zone's
        (already established) keys."""
        if rrsig_rrset is None:
            return False
        security = self.zone_security(zone)
        if security.status is not ValidationStatus.SECURE or security.dnskeys is None:
            return False
        return self._verify_with_keys(rrset, rrsig_rrset, security.dnskeys)
