"""The recursive resolver: iterative engine + validator + look-aside.

This is the simulator's stand-in for BIND and Unbound.  Its decision
logic follows the behaviour the paper reverse-engineers:

* resolve iteratively, with positive/negative caching;
* if validation machinery is active, classify the answer
  (secure / insecure / bogus / indeterminate);
* **if the answer is not secure and look-aside is enabled, search the
  DLV registry** — the lax rule that leaks queries (Sections 3, 5);
* bogus answers are replaced by SERVFAIL toward the stub; secure
  answers carry AD (Section 2.2).

The paper's remedies plug in here:

* *TXT signalling* (6.2.1): before any look-aside, fetch the zone's TXT
  record; only ``dlv=1`` lets the DLV search proceed.
* *Z-bit signalling* (6.2.1): gate the search on the Z header bit the
  authoritative set in its response; costs no extra queries.
* *Hashed DLV* (6.2.2): the look-aside query carries
  ``crypto_hash(domain)`` instead of the domain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from .. import perf
from ..crypto.memo import VerifyMemo
from ..dnscore import Message, Name, RCode, ROOT, RRType, RRset
from ..netsim import Network
from .anchors import TrustAnchorStore
from .cache import RRsetCache
from .config import DlvOutagePolicy, ResolverConfig
from .engine import IterativeEngine, ResolutionError, ResolutionOutcome
from .health import ServerHealth
from .lookaside import DlvLookaside, LookasideResult
from .negcache import NegativeCache
from .validator import ValidationStatus, Validator

#: Default DLV registry domain, as run by ISC (paper Section 2.3).
DEFAULT_REGISTRY_ORIGIN = Name.from_text("dlv.isc.org")


@dataclasses.dataclass
class ResolutionResult:
    """What the resolver concluded for one stub query."""

    qname: Name
    qtype: RRType
    rcode: RCode
    answer: Tuple[RRset, ...]
    status: Optional[ValidationStatus]
    authenticated: bool
    lookaside: Optional[LookasideResult] = None
    #: True when a remedy signal (TXT / Z bit) vetoed the DLV search.
    lookaside_vetoed: bool = False

    def servfail(self) -> bool:
        return self.rcode is RCode.SERVFAIL


class RecursiveResolver:
    """A caching, validating, optionally look-aside-enabled resolver."""

    def __init__(
        self,
        network: Network,
        address: str,
        config: ResolverConfig,
        root_hints: List[str],
        anchors: Optional[TrustAnchorStore] = None,
        registry_origin: Name = DEFAULT_REGISTRY_ORIGIN,
        tracer=None,
        metrics=None,
    ):
        self.network = network
        self.address = address
        self.config = config
        self.registry_origin = registry_origin
        #: Optional telemetry sinks, duck-typed against
        #: :class:`~repro.core.tracing.Tracer` and
        #: :class:`~repro.core.metrics.MetricsRegistry` and threaded
        #: down into the engine, validator, look-aside searcher, and
        #: cache.  ``None`` (the default) keeps every layer on the
        #: untraced fast path.
        self.tracer = tracer
        self.metrics = metrics
        clock = network.clock
        self.cache = RRsetCache(
            clock,
            serve_stale=config.serve_stale,
            stale_window=config.serve_stale_window,
            metrics=metrics,
        )
        self.negcache = NegativeCache(clock)
        self.anchors = anchors or TrustAnchorStore()
        self.health = ServerHealth(clock, lame_ttl=config.lame_ttl)
        self.engine = IterativeEngine(
            network=network,
            address=address,
            cache=self.cache,
            negcache=self.negcache,
            root_hints=root_hints,
            dnssec_ok=config.validation_machinery_active,
            qname_minimization=config.qname_minimization,
            health=self.health,
            serve_stale=config.serve_stale,
            hardening=config.hardening,
            max_referrals=config.max_referrals,
            max_cname_chain=config.max_cname_chain,
            max_retries=config.max_retries,
            tracer=tracer,
            metrics=metrics,
        )
        #: Per-resolver verify memo (hot-path optimization pass): None
        #: when disabled by config or the process-wide perf switch.
        self.verify_memo = (
            VerifyMemo(metrics=metrics)
            if config.hot_path_caches and perf.caches_enabled()
            else None
        )
        self.validator = Validator(
            engine=self.engine,
            anchors=self.anchors,
            cache=self.cache,
            negcache=self.negcache,
            clock=clock,
            tracer=tracer,
            metrics=metrics,
            verify_memo=self.verify_memo,
        )
        self.lookaside = DlvLookaside(
            engine=self.engine,
            validator=self.validator,
            negcache=self.negcache,
            registry_origin=registry_origin,
            hashed=config.hashed_dlv,
            aggressive_caching=config.aggressive_nsec_caching,
            outage_policy=config.dlv_outage_policy,
            fail_holddown=config.dlv_fail_holddown,
            disable_threshold=config.dlv_disable_threshold,
            tracer=tracer,
            metrics=metrics,
        )
        self.resolutions = 0

    # ------------------------------------------------------------------
    # Core resolution
    # ------------------------------------------------------------------

    def resolve(self, qname: Name, qtype: RRType) -> ResolutionResult:
        self.resolutions += 1
        if self.metrics is not None:
            self.metrics.inc("resolver.resolutions")
        tracer = self.tracer
        # One work budget covers everything this stub query triggers —
        # iterative walk, validation chains, DLV searches — so a
        # malicious upstream cannot multiply cost through sub-resolutions.
        if tracer is None:
            with self.engine.resolution_session():
                result = self._resolve_inner(qname, qtype)
            self._note_result(result)
            return result
        # Traced: the stub query becomes one root span, under which the
        # engine, validator, look-aside, and network nest their spans.
        tracer.begin("resolution", qname=qname.to_text(), qtype=qtype.name)
        try:
            with self.engine.resolution_session():
                result = self._resolve_inner(qname, qtype)
        except BaseException:
            tracer.finish(failed=True)
            raise
        attrs = {"rcode": result.rcode.name}
        if result.status is not None:
            attrs["status"] = result.status.value
        if result.authenticated:
            attrs["authenticated"] = True
        if result.lookaside_vetoed:
            attrs["lookaside_vetoed"] = True
        tracer.finish(**attrs)
        self._note_result(result)
        return result

    def _note_result(self, result: ResolutionResult) -> None:
        """Aggregate metrics for one concluded stub resolution."""
        if self.metrics is None:
            return
        self.metrics.inc(f"resolver.rcode.{result.rcode.name}")
        if result.status is not None:
            self.metrics.inc(f"resolver.status.{result.status.value}")
        if result.authenticated:
            self.metrics.inc("resolver.authenticated")
        if result.lookaside_vetoed:
            self.metrics.inc("resolver.lookaside_vetoed")

    def _resolve_inner(self, qname: Name, qtype: RRType) -> ResolutionResult:
        try:
            outcome = self.engine.resolve(qname, qtype)
        except ResolutionError:
            return ResolutionResult(
                qname=qname, qtype=qtype, rcode=RCode.SERVFAIL, answer=(),
                status=None, authenticated=False,
            )
        status: Optional[ValidationStatus] = None
        lookaside_result: Optional[LookasideResult] = None
        vetoed = False
        if self.config.validation_machinery_active:
            status = self.validator.validate_outcome(outcome)
            if self._should_try_lookaside(status):
                allowed, vetoed = self._remedy_gate(outcome)
                if allowed:
                    lookaside_result = self.lookaside.try_lookaside(outcome.zone)
                    if lookaside_result.status is ValidationStatus.SECURE:
                        status = ValidationStatus.SECURE
                    elif lookaside_result.status is ValidationStatus.BOGUS:
                        status = ValidationStatus.BOGUS
        rcode = outcome.rcode
        answer = outcome.answer
        if status is ValidationStatus.BOGUS:
            rcode = RCode.SERVFAIL
            answer = ()
        elif (
            lookaside_result is not None
            and lookaside_result.registry_unreachable
            and self.config.dlv_outage_policy is DlvOutagePolicy.SERVFAIL
        ):
            # Strict degradation (Section 8.4 outages): without the
            # registry the chain cannot conclude, and a strict resolver
            # refuses to answer rather than fall back to insecure.
            status = ValidationStatus.INDETERMINATE
            rcode = RCode.SERVFAIL
            answer = ()
        return ResolutionResult(
            qname=qname,
            qtype=qtype,
            rcode=rcode,
            answer=answer,
            status=status,
            authenticated=status is ValidationStatus.SECURE,
            lookaside=lookaside_result,
            lookaside_vetoed=vetoed,
        )

    def _should_try_lookaside(self, status: ValidationStatus) -> bool:
        if not self.config.lookaside_enabled:
            return False
        # The lax rule: look aside whenever we could not prove secure
        # (insecure or indeterminate).  Actively-bogus answers SERVFAIL.
        return status in (
            ValidationStatus.INSECURE,
            ValidationStatus.INDETERMINATE,
        )

    # ------------------------------------------------------------------
    # Remedy gating (paper Section 6.2.1)
    # ------------------------------------------------------------------

    def _remedy_gate(self, outcome: ResolutionOutcome) -> Tuple[bool, bool]:
        """Apply DLV-aware signalling.  Returns (allowed, vetoed)."""
        if self.config.zbit_signaling:
            if outcome.z_bit:
                return True, False
            return False, True
        if self.config.txt_signaling:
            signal = self._fetch_txt_signal(outcome.zone)
            if signal == 1:
                return True, False
            return False, True
        return True, False

    def _fetch_txt_signal(self, zone: Name) -> Optional[int]:
        try:
            outcome = self.engine.resolve(zone, RRType.TXT)
        except ResolutionError:
            return None
        for rrset in outcome.answer:
            if rrset.rtype is RRType.TXT and rrset.name == zone:
                if not self._txt_signal_trustworthy(zone, rrset, outcome.rrsig):
                    return None
                for txt in rrset.rdatas:
                    signal = txt.dlv_signal()  # type: ignore[attr-defined]
                    if signal is not None:
                        return signal
        return None

    def _txt_signal_trustworthy(
        self, zone: Name, rrset: RRset, rrsig: Optional[RRset]
    ) -> bool:
        """Hardened mode (Section 6.2.3): before acting on a TXT signal
        from a *signed* zone, check its RRSIG against the zone's own
        DNSKEY.  An on-path attacker can rewrite the TXT strings but
        cannot forge the signature.  Unsigned zones cannot be checked —
        the residual risk the paper acknowledges.
        """
        if not self.config.validate_txt_signal:
            return True
        if rrsig is None:
            # No signature: only acceptable if the zone is unsigned
            # (no DNSKEY published).
            try:
                keys = self.engine.resolve(zone, RRType.DNSKEY)
            except ResolutionError:
                return True
            return not keys.is_positive()
        try:
            keys_outcome = self.engine.resolve(zone, RRType.DNSKEY)
        except ResolutionError:
            return False
        for dnskeys in keys_outcome.answer:
            if dnskeys.rtype is not RRType.DNSKEY:
                continue
            from ..zones.zone import verify_rrset_signature

            for sig in rrsig.rdatas:
                for dnskey in dnskeys.rdatas:
                    if dnskey.key_tag() == sig.key_tag:  # type: ignore[attr-defined]
                        if verify_rrset_signature(rrset, sig, dnskey, memo=self.verify_memo):  # type: ignore[arg-type]
                            return True
        return False

    # ------------------------------------------------------------------
    # Stub-facing server interface (netsim DnsServer protocol)
    # ------------------------------------------------------------------

    def handle(self, query: Message) -> Message:
        if query.question is None or query.is_response():
            return query.make_response(rcode=RCode.FORMERR)
        if query.flags.cd:
            # Checking Disabled (RFC 4035 section 3.2.2): the stub takes
            # validation into its own hands, so the resolver skips the
            # validator *and* the look-aside machinery — CD queries do
            # not leak to the registry.
            return self._handle_checking_disabled(query)
        result = self.resolve(query.question.name, query.question.rtype)
        return query.make_response(
            rcode=result.rcode,
            answer=result.answer,
            authenticated_data=result.authenticated and query.dnssec_ok(),
        )

    def _handle_checking_disabled(self, query: Message) -> Message:
        assert query.question is not None
        try:
            with self.engine.resolution_session():
                outcome = self.engine.resolve(
                    query.question.name, query.question.rtype
                )
        except ResolutionError:
            return query.make_response(rcode=RCode.SERVFAIL)
        return query.make_response(rcode=outcome.rcode, answer=outcome.answer)


class StubClient:
    """A stub resolver host sending recursive queries to one resolver."""

    #: Stub retransmissions before giving up (glibc-style).
    MAX_ATTEMPTS = 5

    def __init__(self, network: Network, address: str, resolver_address: str):
        self._network = network
        self.address = address
        self.resolver_address = resolver_address
        self._next_id = 1

    def query(
        self, qname: Name, qtype: RRType = RRType.A, dnssec_ok: bool = True
    ) -> Message:
        from ..netsim.network import QueryTimeout

        query = None
        for _ in range(self.MAX_ATTEMPTS):
            message_id = self._next_id
            self._next_id = (self._next_id + 1) & 0xFFFF or 1
            query = Message.make_query(
                message_id, qname, qtype, recursion_desired=True,
                dnssec_ok=dnssec_ok,
            )
            try:
                return self._network.query(
                    self.address, self.resolver_address, query
                )
            except QueryTimeout:
                continue
        # Persistent loss on the stub link: report failure locally.
        assert query is not None
        return query.make_response(rcode=RCode.SERVFAIL)
