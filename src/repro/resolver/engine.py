"""Iterative resolution: referral chasing, caching, and traffic shape.

The engine is the resolver's "query machine": starting from the deepest
cached zone cut it walks referrals down to the authoritative server,
caches positive and negative answers, chases CNAMEs, fetches missing
nameserver addresses (A and AAAA), primes TLD NS sets, and records the
delegation chain the validator will walk.

Traffic-shape notes (these produce the query mix of the paper's
Table 4):

* every hop of an iterative walk carries the original qtype, so one
  uncached A lookup emits ~3 A queries (root, TLD, SLD);
* AAAA queries for the target zone's NS hosts model dual-stack address
  fetching (~2 per fresh delegation, TTL-cached);
* NS queries come from TLD priming ("cut revalidation") plus a stable
  fraction of SLD revalidations;
* DS and DNSKEY queries are issued by the validator, not here.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from ..dnscore import (
    CNAME,
    Message,
    Name,
    RCode,
    ROOT,
    RRType,
    RRset,
)
from ..netsim import Network, Priority
from ..netsim.network import NetworkError, QueryTimeout
from .cache import RRsetCache
from .hardening import HardeningCounters, HardeningPolicy
from .health import ServerHealth
from .negcache import NegativeCache

#: Engine limits, promoted into :class:`~repro.resolver.config
#: .ResolverConfig` fields (``max_referrals`` / ``max_cname_chain`` /
#: ``max_retries``) so chaos and adversary cells can sweep them; these
#: module values remain the constructor defaults.
_MAX_REFERRALS = 30
_MAX_CNAME_CHAIN = 8
_MAX_RECURSION = 6
#: UDP retransmission attempts before the engine gives up on a server
#: (resolvers typically retry 2-3 times before trying the next one).
_MAX_RETRIES = 3
#: Total sends one cut query may spend across all of a cut's addresses
#: (the per-resolution retry budget of the failover path).
_RETRY_BUDGET = 6
#: Response codes that mark a server lame for the queried zone: the
#: server is up but cannot serve, so failover to a sibling NS is the
#: productive move (and the address enters the SERVFAIL hold-down).
_LAME_RCODES = (RCode.SERVFAIL, RCode.REFUSED, RCode.NOTIMP)

#: Negative-cache TTL used when a negative answer carries no SOA.
_FALLBACK_NEGATIVE_TTL = 900


class ResolutionError(RuntimeError):
    """Raised when iterative resolution cannot make progress."""


class BudgetExceeded(ResolutionError):
    """A per-resolution work budget ran out.

    Distinct from ordinary resolution failure so the failover path knows
    not to keep trying other servers: every further attempt would charge
    the same exhausted budget.
    """


@dataclasses.dataclass
class ResolutionOutcome:
    """What one iterative resolution produced."""

    qname: Name
    qtype: RRType
    rcode: RCode
    #: Final answer RRsets (CNAME chain included), without RRSIGs.
    answer: Tuple[RRset, ...]
    #: RRSIG RRset covering the final answer RRset, if the zone signed it.
    rrsig: Optional[RRset]
    #: Origin of the zone that produced the final (or negative) answer.
    zone: Name
    #: Zone cuts walked or known for the final target, root-first.
    chain: Tuple[Name, ...]
    #: NSEC RRsets (with their RRSIGs) from a negative response.
    nsec: Tuple[Tuple[RRset, Optional[RRset]], ...] = ()
    #: SOA RRset from a negative response.
    soa: Optional[RRset] = None
    #: Z header bit observed on the final response (Z-bit remedy signal).
    z_bit: bool = False
    #: True when served from cache without touching the network.
    from_cache: bool = False
    #: True when the answer is expired data served under RFC 8767
    #: serve-stale because every upstream was unreachable.
    stale: bool = False

    def is_positive(self) -> bool:
        return self.rcode is RCode.NOERROR and bool(self.answer)


@dataclasses.dataclass
class _CutServers:
    addresses: List[str]
    expires_at: float


class IterativeEngine:
    """Performs iterative resolution over the simulated network."""

    def __init__(
        self,
        network: Network,
        address: str,
        cache: RRsetCache,
        negcache: NegativeCache,
        root_hints: List[str],
        dnssec_ok: bool = False,
        tld_priming: bool = True,
        sld_ns_requery_fraction: float = 0.3,
        ns_address_lookups: bool = True,
        qname_minimization: bool = False,
        health: Optional[ServerHealth] = None,
        serve_stale: bool = False,
        retry_budget: int = _RETRY_BUDGET,
        hardening: Optional[HardeningPolicy] = None,
        max_referrals: int = _MAX_REFERRALS,
        max_cname_chain: int = _MAX_CNAME_CHAIN,
        max_retries: int = _MAX_RETRIES,
        tracer=None,
        metrics=None,
    ):
        self._network = network
        self._clock = network.clock
        self.address = address
        self._cache = cache
        self._negcache = negcache
        #: Per-server scoreboard: SRTT, failures, lame hold-downs.
        self.health = health or ServerHealth(network.clock)
        #: RFC 8767: serve expired cache entries when resolution fails.
        self.serve_stale = serve_stale
        self._retry_budget = max(1, retry_budget)
        self._dnssec_ok = dnssec_ok
        self._tld_priming = tld_priming
        self._sld_ns_requery_fraction = sld_ns_requery_fraction
        self._ns_address_lookups = ns_address_lookups
        #: RFC 7816 query-name minimisation: during descent, ask each
        #: ancestor server only for the next label (qtype NS), so the
        #: root and TLDs never see the full query name.  Referenced by
        #: the paper's threat model (Section 3); the DLV-observability
        #: bench shows it does NOT help against the registry.
        self.qname_minimization = qname_minimization
        self._cuts: Dict[Name, _CutServers] = {
            ROOT: _CutServers(list(root_hints), float("inf"))
        }
        self._primed: set = set()
        self._next_id = 1
        #: Byzantine-robustness checks and per-resolution work budgets.
        self.hardening = hardening or HardeningPolicy()
        self.counters = HardeningCounters()
        #: Per-session state (the active work budget and the depth of
        #: open resolution sessions) is **thread-local**: under the
        #: event scheduler each concurrent stub session runs on its own
        #: pooled thread, and its budget must meter *that* client's
        #: resolution, not whichever session happens to be interleaved
        #: with it.  On the serial path there is one thread, so this is
        #: exactly the old single-budget behaviour.
        self._session_state = threading.local()
        self.max_referrals = max_referrals
        self.max_cname_chain = max_cname_chain
        self.max_retries = max_retries
        #: Optional telemetry sinks (duck-typed against
        #: :class:`~repro.core.tracing.Tracer` and
        #: :class:`~repro.core.metrics.MetricsRegistry`; held by
        #: parameter, never imported, to keep this layer leaf-free).
        #: Every emission below is guarded with ``is not None`` so the
        #: untraced path costs one attribute check.
        self._tracer = tracer
        self._metrics = metrics
        self.queries_sent = 0
        self.timeouts = 0
        #: Upstream re-sends actually scheduled after a timeout (the
        #: retry-storm signal the chaos replay windows surface; one less
        #: than the attempt count on a fully failing exchange).
        self.retries = 0
        self.failovers = 0
        self.stale_served = 0
        self.lame_skips = 0

    @property
    def clock(self):
        """The simulated clock the engine (and its caches) run on."""
        return self._clock

    # ------------------------------------------------------------------
    # Work-budget sessions
    # ------------------------------------------------------------------

    def _session(self):
        """This thread's session slot (budget + open-session depth),
        lazily initialised so pooled scheduler threads and the main
        thread each get their own."""
        state = self._session_state
        if not hasattr(state, "budget"):
            state.budget = self.hardening.fresh_budget()
            state.depth = 0
        return state

    @property
    def _budget(self):
        """The calling thread's active work budget."""
        return self._session().budget

    @contextlib.contextmanager
    def resolution_session(self):
        """Scope one stub-facing resolution: every resolve, validator
        chain walk, and DLV search inside the ``with`` block draws on a
        single fresh :class:`~repro.resolver.hardening.WorkBudget`, so
        the hardening caps bound the *total* work one client query can
        trigger.  Sessions nest: inner entries join the outer budget.
        Budgets are per-thread, so concurrent scheduler sessions meter
        their own clients independently.
        """
        state = self._session()
        if state.depth == 0:
            state.budget = self.hardening.fresh_budget()
        state.depth += 1
        try:
            yield state.budget
        finally:
            state.depth -= 1

    def charge_signature(self) -> bool:
        """Spend one signature verification from the active budget;
        ``False`` means the KeyTrap cap is exhausted (the validator
        treats further verification as failed)."""
        if self._budget.charge_signature():
            return True
        self.counters.signature_budget_exhausted += 1
        if self._tracer is not None:
            self._tracer.event("hardening", kind="signature_budget_exhausted")
        if self._metrics is not None:
            self._metrics.inc("hardening.signature_budget_exhausted")
        return False

    # ------------------------------------------------------------------
    # Low-level send
    # ------------------------------------------------------------------

    def send_query(
        self,
        dst: str,
        qname: Name,
        qtype: RRType,
        attempts: Optional[int] = None,
    ) -> Message:
        """Send one query on the wire, retrying on packet loss with
        exponential backoff; public for the validator/DLV machinery.

        The network accounts the timeout itself (the clock advances by
        ``loss_timeout`` per drop); between retries the engine waits an
        additional, growing backoff — the pacing a real resolver applies
        instead of hammering a dead server back-to-back.

        A response that does not echo the outstanding query's message id
        and question section is a spoof: it is dropped (counted in
        ``counters.spoofs_rejected``) and the engine keeps waiting for
        the genuine answer by retrying, exactly like a resolver ignoring
        forged UDP datagrams on its socket.
        """
        if attempts is None:
            attempts = self.max_retries
        tracer = self._tracer
        metrics = self._metrics
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if not self._budget.charge_send():
                self.counters.send_budget_exhausted += 1
                if tracer is not None:
                    tracer.event(
                        "hardening", kind="send_budget_exhausted",
                        server=dst, qname=qname.to_text(),
                    )
                if metrics is not None:
                    metrics.inc("hardening.send_budget_exhausted")
                raise BudgetExceeded(
                    f"work budget exhausted: upstream-send cap "
                    f"({self.hardening.max_upstream_sends}) reached asking "
                    f"{dst} for {qname.to_text()}/{qtype.name}"
                )
            message_id = self._next_id
            self._next_id = (self._next_id + 1) & 0xFFFF or 1
            query = Message.make_query(
                message_id, qname, qtype, recursion_desired=False,
                dnssec_ok=self._dnssec_ok,
            )
            self.queries_sent += 1
            if metrics is not None:
                metrics.inc("engine.queries_sent")
            if tracer is not None:
                tracer.begin(
                    "exchange", server=dst, qname=qname.to_text(),
                    qtype=qtype.name, attempt=attempt + 1,
                )
            sent_at = self._clock.now
            try:
                response = self._network.query(self.address, dst, query)
            except QueryTimeout as timeout:
                self.timeouts += 1
                if metrics is not None:
                    metrics.inc("engine.timeouts")
                if tracer is not None:
                    tracer.finish(outcome="timeout", failed=True)
                self.health.record_failure(dst)
                last_error = timeout
                if attempt + 1 < attempts:
                    self.retries += 1
                    if metrics is not None:
                        metrics.inc("engine.retries")
                    # Retry pacing via the scheduler-friendly absolute
                    # deadline; under the event loop this suspends the
                    # session so other clients' traffic interleaves
                    # during the backoff.
                    self._clock.sleep_until(
                        self._clock.now + self.health.backoff_delay(attempt),
                        priority=Priority.TIMEOUT,
                    )
                continue
            except NetworkError as unreachable:
                # Nothing answers at this address at all (e.g. poisoned
                # glue pointing into the void): permanent for this
                # destination, so retrying would only burn the budget.
                self.timeouts += 1
                if metrics is not None:
                    metrics.inc("engine.timeouts")
                if tracer is not None:
                    tracer.finish(outcome="unreachable", failed=True)
                self.health.record_failure(dst)
                last_error = unreachable
                break
            if not self.hardening.response_matches(query, response):
                self.counters.spoofs_rejected += 1
                if tracer is not None:
                    tracer.event("hardening", kind="spoof_rejected", server=dst)
                    tracer.finish(outcome="spoof_rejected", failed=True)
                if metrics is not None:
                    metrics.inc("hardening.spoofs_rejected")
                last_error = ResolutionError(
                    f"spoofed response from {dst} (id/question mismatch)"
                )
                continue
            self.health.record_success(dst, self._clock.now - sent_at)
            if tracer is not None:
                tracer.finish(rcode=response.rcode.name)
            return response
        raise ResolutionError(
            f"query for {qname.to_text()}/{qtype.name} to {dst} failed "
            f"after {attempts} attempts"
        ) from last_error

    def query_cut(
        self, addresses: List[str], qname: Name, qtype: RRType
    ) -> Message:
        """Query a cut's nameservers with failover.

        Addresses are tried in health order (healthy servers keep their
        configured order, recently-failing and lame ones are demoted).
        Each server gets up to ``_MAX_RETRIES`` sends; a timeout
        exhaustion or a lame response (SERVFAIL/REFUSED/NOTIMP) moves on
        to the next address, bounded by the per-resolution retry budget.
        """
        ordered = self.health.order(addresses)
        usable = [a for a in ordered if not self.health.is_lame(a)]
        if not usable:
            self.lame_skips += 1
            raise ResolutionError(
                f"every server for {qname.to_text()}/{qtype.name} is held "
                f"down as lame ({', '.join(ordered)})"
            )
        budget = self._retry_budget
        last_lame: Optional[Message] = None
        last_error: Optional[ResolutionError] = None
        for index, address in enumerate(usable):
            if budget <= 0:
                break
            attempts = min(self.max_retries, budget)
            budget -= attempts
            if index > 0:
                self.failovers += 1
                if self._metrics is not None:
                    self._metrics.inc("engine.failovers")
            try:
                response = self.send_query(address, qname, qtype, attempts)
            except BudgetExceeded:
                raise  # failover cannot restore an exhausted budget
            except ResolutionError as error:
                last_error = error
                continue
            if response.rcode in _LAME_RCODES:
                self.health.mark_lame(address)
                self.health.record_failure(address)
                last_lame = response
                continue
            return response
        if last_lame is not None:
            raise ResolutionError(
                f"unusable response for {qname.to_text()}/{qtype.name} "
                f"(rcode={last_lame.rcode.name}) from every reachable server"
            )
        raise ResolutionError(
            f"no server for {qname.to_text()}/{qtype.name} answered within "
            f"the retry budget"
        ) from last_error

    # ------------------------------------------------------------------
    # Cut bookkeeping
    # ------------------------------------------------------------------

    def deepest_cut(self, qname: Name) -> Name:
        now = self._clock.now
        for ancestor in qname.ancestors():
            cut = self._cuts.get(ancestor)
            if cut is not None:
                if cut.expires_at > now and cut.addresses:
                    return ancestor
                if ancestor != ROOT:
                    del self._cuts[ancestor]
        return ROOT

    def cut_addresses(self, cut: Name) -> List[str]:
        entry = self._cuts.get(cut)
        if entry is None or (entry.expires_at <= self._clock.now and cut != ROOT):
            raise ResolutionError(f"no fresh servers for cut {cut.to_text()}")
        return entry.addresses

    def known_cuts(self, qname: Name) -> Tuple[Name, ...]:
        """Cuts at-or-above qname, root first (the validator's chain)."""
        cuts = [
            ancestor for ancestor in qname.ancestors() if ancestor in self._cuts
        ]
        return tuple(reversed(cuts))

    def parent_cut(self, zone: Name) -> Optional[Name]:
        if zone == ROOT:
            return None
        current = zone.parent()
        while True:
            if current in self._cuts:
                return current
            if current == ROOT:
                return ROOT
            current = current.parent()

    def _learn_cut(self, child: Name, addresses: List[str], ttl: float) -> None:
        self._cuts[child] = _CutServers(addresses, self._clock.now + ttl)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, qname: Name, qtype: RRType, _depth: int = 0) -> ResolutionOutcome:
        """Resolve (qname, qtype), using caches and the network.

        When a tracer is attached, every call opens a ``resolve`` span
        (nesting for NS-address sub-resolutions) finished with the
        outcome's rcode, zone, and cache provenance.
        """
        tracer = self._tracer
        if tracer is None:
            return self._resolve_impl(qname, qtype, _depth)
        tracer.begin(
            "resolve", qname=qname.to_text(), qtype=qtype.name, depth=_depth
        )
        try:
            outcome = self._resolve_impl(qname, qtype, _depth)
        except ResolutionError as error:
            tracer.finish(error=type(error).__name__, failed=True)
            raise
        attrs = {"rcode": outcome.rcode.name, "zone": outcome.zone.to_text()}
        if outcome.from_cache:
            attrs["cached"] = True
        if outcome.stale:
            attrs["stale"] = True
        tracer.finish(**attrs)
        return outcome

    def _resolve_impl(
        self, qname: Name, qtype: RRType, _depth: int
    ) -> ResolutionOutcome:
        if _depth > _MAX_RECURSION:
            raise ResolutionError(f"recursion too deep resolving {qname.to_text()}")
        state = self._session()
        if _depth == 0 and state.depth == 0:
            # Standalone use (no session open): each top-level resolve
            # is its own budgeted unit of work.
            state.budget = self.hardening.fresh_budget()

        cached = self._lookup_cached(qname, qtype)
        if cached is not None:
            return cached

        answer_rrsets: List[RRset] = []
        current_name = qname
        for _ in range(self.max_cname_chain):
            try:
                outcome = self._resolve_one(current_name, qtype, _depth)
            except ResolutionError:
                outcome = self._stale_outcome(current_name, qtype)
                if outcome is None:
                    raise
            answer_rrsets.extend(outcome.answer)
            cname_target = self._cname_target(outcome, current_name, qtype)
            if cname_target is None:
                return dataclasses.replace(
                    outcome,
                    qname=qname,
                    answer=tuple(answer_rrsets),
                )
            current_name = cname_target
        raise ResolutionError(f"CNAME chain too long from {qname.to_text()}")

    def _cname_target(
        self, outcome: ResolutionOutcome, current: Name, qtype: RRType
    ) -> Optional[Name]:
        if qtype is RRType.CNAME:
            return None
        for rrset in outcome.answer:
            if rrset.rtype is RRType.CNAME and rrset.name == current:
                return rrset.first().target  # type: ignore[attr-defined]
        return None

    def _lookup_cached(self, qname: Name, qtype: RRType) -> Optional[ResolutionOutcome]:
        if self._negcache.is_nxdomain(qname):
            self._note_cache_hit(qname, "negcache", "NXDOMAIN")
            return ResolutionOutcome(
                qname=qname, qtype=qtype, rcode=RCode.NXDOMAIN, answer=(),
                rrsig=None, zone=self._zone_guess(qname),
                chain=self.known_cuts(qname), from_cache=True,
            )
        if self._negcache.is_nodata(qname, qtype):
            self._note_cache_hit(qname, "negcache", "NODATA")
            return ResolutionOutcome(
                qname=qname, qtype=qtype, rcode=RCode.NOERROR, answer=(),
                rrsig=None, zone=self._zone_guess(qname),
                chain=self.known_cuts(qname), from_cache=True,
            )
        entry = self._cache.get(qname, qtype)
        if entry is not None:
            self._note_cache_hit(qname, "rrset", "NOERROR")
            return ResolutionOutcome(
                qname=qname, qtype=qtype, rcode=RCode.NOERROR,
                answer=(entry.rrset,), rrsig=entry.rrsig,
                zone=self._zone_guess(qname), chain=self.known_cuts(qname),
                from_cache=True,
            )
        return None

    def _note_cache_hit(self, qname: Name, source: str, result: str) -> None:
        """Telemetry for an answer served without touching the wire."""
        if self._tracer is not None:
            self._tracer.event(
                "cache_hit", qname=qname.to_text(), source=source,
                result=result,
            )
        if self._metrics is not None:
            self._metrics.inc(f"engine.cache_hits.{source}")

    def _note_scrubbed(self, count: int, bailiwick: Name) -> None:
        """Telemetry for bailiwick-scrubbed records (no-op at zero)."""
        if count <= 0:
            return
        if self._tracer is not None:
            self._tracer.event(
                "hardening", kind="records_scrubbed", count=count,
                bailiwick=bailiwick.to_text(),
            )
        if self._metrics is not None:
            self._metrics.inc("hardening.records_scrubbed", count)

    def _stale_outcome(
        self, qname: Name, qtype: RRType
    ) -> Optional[ResolutionOutcome]:
        """RFC 8767 serve-stale: when iterative resolution failed, fall
        back to an expired cache entry if one is still within the stale
        window.  Stale data is served but never re-signed into the
        caches, and the outcome is flagged so callers can tell."""
        if not self.serve_stale:
            return None
        entry = self._cache.get_stale(qname, qtype)
        if entry is None:
            return None
        self.stale_served += 1
        self._note_cache_hit(qname, "stale", "NOERROR")
        if self._metrics is not None:
            self._metrics.inc("engine.stale_served")
        return ResolutionOutcome(
            qname=qname,
            qtype=qtype,
            rcode=RCode.NOERROR,
            answer=(entry.rrset,),
            rrsig=entry.rrsig,
            zone=self._zone_guess(qname),
            chain=self.known_cuts(qname),
            from_cache=True,
            stale=True,
        )

    def _zone_guess(self, qname: Name) -> Name:
        """Best-effort zone attribution for cached entries: the deepest
        known cut at-or-above the name."""
        for ancestor in qname.ancestors():
            if ancestor in self._cuts:
                return ancestor
        return ROOT

    def _resolve_one(self, qname: Name, qtype: RRType, depth: int) -> ResolutionOutcome:
        cut = self.deepest_cut(qname)
        probe_label_count: Optional[int] = None
        for _ in range(self.max_referrals):
            addresses = self.cut_addresses(cut)
            if self.qname_minimization:
                probe = self._minimized_probe(qname, cut, probe_label_count)
            else:
                probe = qname
            effective_qtype = qtype if probe == qname else RRType.NS
            response = self.query_cut(addresses, probe, effective_qtype)
            classification = self._classify(response, probe, effective_qtype, cut)
            if classification == "answer":
                if probe == qname:
                    return self._accept_answer(response, qname, qtype, cut)
                # Apex NS answer for an intermediate probe: the name
                # exists but is not a cut here; extend the probe.
                self._ingest_simple(response, probe, effective_qtype)
                probe_label_count = probe.label_count + 1
                continue
            if classification == "negative":
                if probe == qname:
                    return self._accept_negative(response, qname, qtype, cut)
                if response.rcode is RCode.NXDOMAIN:
                    # RFC 8020 / 7816: a missing ancestor means the full
                    # name cannot exist either.
                    return self._accept_negative(response, qname, qtype, cut)
                # NODATA for the probe (empty non-terminal): go deeper.
                probe_label_count = probe.label_count + 1
                continue
            if classification == "referral":
                cut = self._follow_referral(response, cut, qname, depth)
                probe_label_count = None
                continue
            raise ResolutionError(
                f"unusable response for {qname.to_text()}/{qtype.name} "
                f"from {addresses[0]} (rcode={response.rcode.name})"
            )
        raise ResolutionError(f"referral loop resolving {qname.to_text()}")

    @staticmethod
    def _minimized_probe(
        qname: Name, cut: Name, probe_label_count: Optional[int]
    ) -> Name:
        """The RFC 7816 probe: one label more than the current cut (or
        than the previous probe), never more than the full name."""
        count = (
            probe_label_count
            if probe_label_count is not None
            else cut.label_count + 1
        )
        count = min(count, qname.label_count)
        return Name(qname.labels[qname.label_count - count :])

    # ------------------------------------------------------------------
    # Response classification
    # ------------------------------------------------------------------

    @staticmethod
    def _classify(response: Message, qname: Name, qtype: RRType, cut: Name) -> str:
        if response.rcode is RCode.NXDOMAIN:
            return "negative"
        if response.rcode is not RCode.NOERROR:
            return "error"
        for rrset in response.answer:
            if rrset.name == qname and rrset.rtype in (qtype, RRType.CNAME):
                return "answer"
        ns_sets = response.find_rrsets(RRType.NS, section="authority")
        for ns in ns_sets:
            if ns.name != cut and qname.is_subdomain_of(ns.name):
                return "referral"
        return "negative"  # NODATA

    def _accept_answer(
        self, response: Message, qname: Name, qtype: RRType, cut: Name
    ) -> ResolutionOutcome:
        answer_rrsets: List[RRset] = []
        rrsig: Optional[RRset] = None
        kept, scrubbed = self.hardening.scrub_rrsets(response.answer, cut)
        self.counters.records_scrubbed += scrubbed
        self._note_scrubbed(scrubbed, cut)
        for rrset in kept:
            if rrset.rtype is RRType.RRSIG:
                continue
            answer_rrsets.append(rrset)
            sig = self._find_rrsig(response.answer, rrset)
            self._cache.put(rrset, rrsig=sig)
            if rrset.name == qname and rrset.rtype in (qtype, RRType.CNAME):
                rrsig = sig
        self._after_authoritative_contact(cut, qname)
        return ResolutionOutcome(
            qname=qname,
            qtype=qtype,
            rcode=RCode.NOERROR,
            answer=tuple(answer_rrsets),
            rrsig=rrsig,
            zone=cut,
            chain=self.known_cuts(qname),
            z_bit=response.flags.z,
        )

    @staticmethod
    def _find_rrsig(section: Tuple[RRset, ...], covered: RRset) -> Optional[RRset]:
        for rrset in section:
            if rrset.rtype is not RRType.RRSIG or rrset.name != covered.name:
                continue
            if rrset.first().type_covered is covered.rtype:  # type: ignore[attr-defined]
                return rrset
        return None

    def _accept_negative(
        self, response: Message, qname: Name, qtype: RRType, cut: Name
    ) -> ResolutionOutcome:
        soa = None
        nsec_pairs: List[Tuple[RRset, Optional[RRset]]] = []
        ttl = _FALLBACK_NEGATIVE_TTL
        kept, scrubbed = self.hardening.scrub_rrsets(response.authority, cut)
        self.counters.records_scrubbed += scrubbed
        self._note_scrubbed(scrubbed, cut)
        for rrset in kept:
            if rrset.rtype is RRType.SOA:
                soa = rrset
                ttl = min(rrset.ttl, rrset.first().minimum)  # type: ignore[attr-defined]
            elif rrset.rtype in (RRType.NSEC, RRType.NSEC3):
                nsec_pairs.append(
                    (rrset, self._find_rrsig(response.authority, rrset))
                )
        if response.rcode is RCode.NXDOMAIN:
            self._negcache.put_nxdomain(qname, ttl)
        else:
            self._negcache.put_nodata(qname, qtype, ttl)
        return ResolutionOutcome(
            qname=qname,
            qtype=qtype,
            rcode=response.rcode,
            answer=(),
            rrsig=None,
            zone=soa.name if soa is not None else cut,
            chain=self.known_cuts(qname),
            nsec=tuple(nsec_pairs),
            soa=soa,
            z_bit=response.flags.z,
        )

    # ------------------------------------------------------------------
    # Referral following
    # ------------------------------------------------------------------

    def _follow_referral(
        self, response: Message, cut: Name, qname: Name, depth: int
    ) -> Name:
        ns_sets = response.find_rrsets(RRType.NS, section="authority")
        referral = None
        for ns in ns_sets:
            if ns.name != cut and (referral is None or ns.name.label_count > referral.name.label_count):
                referral = ns
        if referral is None:
            raise ResolutionError("referral without NS records")
        child = referral.name
        # Direction check: a delegation must descend from the cut toward
        # the query name.  Upward ("here, ask the root again") and
        # sideways referrals are loop/amplification vectors, never
        # legitimate iteration.
        if not self.hardening.referral_allowed(child, cut, qname):
            self.counters.referrals_rejected += 1
            if self._tracer is not None:
                self._tracer.event(
                    "hardening", kind="referral_rejected",
                    cut=cut.to_text(), child=child.to_text(),
                )
            if self._metrics is not None:
                self._metrics.inc("hardening.referrals_rejected")
            raise ResolutionError(
                f"rejected referral from {cut.to_text()} to "
                f"{child.to_text()} (not a descent toward {qname.to_text()})"
            )
        self._cache.put(referral)
        glue_addresses: List[str] = []
        for rrset in response.additional:
            if rrset.rtype not in (RRType.A, RRType.AAAA):
                continue
            # Bailiwick: only glue for hosts inside the referred zone may
            # enter the cache; anything else is attacker-controlled data
            # the parent has no authority over.
            if not self.hardening.glue_in_bailiwick(rrset, child):
                self.counters.glue_rejected += 1
                if self._tracer is not None:
                    self._tracer.event(
                        "hardening", kind="glue_rejected",
                        owner=rrset.name.to_text(), child=child.to_text(),
                    )
                if self._metrics is not None:
                    self._metrics.inc("hardening.glue_rejected")
                continue
            self._cache.put(rrset)
            if rrset.rtype is RRType.A:
                glue_addresses.append(rrset.first().address)  # type: ignore[attr-defined]
        # Cache DS / NSEC material the parent volunteered — but only for
        # the delegated child itself; a DS for any other zone is a
        # chain-of-trust injection.
        for rrset in response.authority:
            if rrset.rtype is RRType.DS:
                if self.hardening.enabled and self.hardening.bailiwick_scrub \
                        and rrset.name != child:
                    self.counters.records_scrubbed += 1
                    self._note_scrubbed(1, child)
                    continue
                self._cache.put(rrset, rrsig=self._find_rrsig(response.authority, rrset))
        if not glue_addresses:
            glue_addresses = self._resolve_ns_addresses(referral, depth)
        if not glue_addresses:
            raise ResolutionError(
                f"no addresses for delegation {child.to_text()}"
            )
        self._learn_cut(child, glue_addresses, float(referral.ttl))
        self._post_referral_maintenance(child, glue_addresses, referral, depth)
        return child

    def _resolve_ns_addresses(self, referral: RRset, depth: int) -> List[str]:
        """Out-of-bailiwick delegation: resolve the NS hosts' addresses.

        Each NS host costs one sub-resolution from the per-resolution
        fanout budget — the NXNSAttack cap: a referral naming dozens of
        dead out-of-zone servers cannot multiply upstream traffic beyond
        ``max_ns_address_resolutions``.
        """
        addresses: List[str] = []
        for rdata in referral.rdatas:
            host = rdata.target  # type: ignore[attr-defined]
            if not self._budget.charge_ns_resolution():
                self.counters.ns_budget_exhausted += 1
                if self._tracer is not None:
                    self._tracer.event(
                        "hardening", kind="ns_budget_exhausted",
                        host=host.to_text(),
                    )
                if self._metrics is not None:
                    self._metrics.inc("hardening.ns_budget_exhausted")
                break
            try:
                outcome = self.resolve(host, RRType.A, _depth=depth + 1)
            except ResolutionError:
                continue
            for rrset in outcome.answer:
                if rrset.rtype is RRType.A and rrset.name == host:
                    addresses.extend(r.address for r in rrset.rdatas)
            if addresses:
                break
        return addresses

    def _post_referral_maintenance(
        self, child: Name, addresses: List[str], referral: RRset, depth: int
    ) -> None:
        """AAAA fetches for NS hosts and TLD priming (see module docs)."""
        if self._ns_address_lookups:
            for rdata in list(referral.rdatas)[:2]:
                host = rdata.target  # type: ignore[attr-defined]
                if self._cache.get(host, RRType.AAAA) is not None:
                    continue
                if self._negcache.known_negative(host, RRType.AAAA):
                    continue
                self._side_query(addresses[0], host, RRType.AAAA)
        if self._tld_priming and child.label_count == 1 and child not in self._primed:
            self._primed.add(child)
            self._side_query(addresses[0], child, RRType.NS)

    def _after_authoritative_contact(self, cut: Name, qname: Name) -> None:
        """Stable-fraction SLD NS revalidation (BIND cut revalidation)."""
        if cut.label_count != 2 or cut in self._primed:
            return
        if self._sld_ns_requery_fraction <= 0:
            return
        digest = hashlib.md5(cut.to_text().encode("ascii")).digest()
        if digest[0] / 255.0 < self._sld_ns_requery_fraction:
            self._primed.add(cut)
            addresses = self.cut_addresses(cut)
            self._side_query(addresses[0], cut, RRType.NS)
        else:
            self._primed.add(cut)

    def _side_query(self, dst: str, qname: Name, qtype: RRType) -> None:
        """A best-effort maintenance query: failures (persistent packet
        loss) must not abort the resolution it piggybacks on."""
        try:
            response = self.send_query(dst, qname, qtype)
        except ResolutionError:
            return
        self._ingest_simple(response, qname, qtype)

    def _ingest_simple(self, response: Message, qname: Name, qtype: RRType) -> None:
        """Cache the positive or negative result of a side query."""
        if response.rcode is RCode.NXDOMAIN:
            ttl = self._negative_ttl(response)
            self._negcache.put_nxdomain(qname, ttl)
            return
        found = False
        # Side queries ask about one specific name; scrub anything the
        # server volunteered for other owners before caching.
        kept, scrubbed = self.hardening.scrub_rrsets(response.answer, qname)
        self.counters.records_scrubbed += scrubbed
        self._note_scrubbed(scrubbed, qname)
        for rrset in kept:
            if rrset.rtype is RRType.RRSIG:
                continue
            self._cache.put(rrset, rrsig=self._find_rrsig(response.answer, rrset))
            if rrset.name == qname and rrset.rtype is qtype:
                found = True
        if not found:
            self._negcache.put_nodata(qname, qtype, self._negative_ttl(response))

    @staticmethod
    def _negative_ttl(response: Message) -> float:
        for rrset in response.authority:
            if rrset.rtype is RRType.SOA:
                return min(rrset.ttl, rrset.first().minimum)  # type: ignore[attr-defined]
        return _FALLBACK_NEGATIVE_TTL
