"""Positive RRset cache with TTL expiry against the simulated clock.

Entries may carry the RRSIG that came with the RRset and the validation
status it earned, so revalidation (and hence repeat DLV traffic) is
avoided for cache hits — matching resolver behaviour the paper's
measurements depend on.

With ``serve_stale=True`` the cache keeps expired entries around for a
bounded window (RFC 8767) so the resolver can serve a stale answer when
every upstream is unreachable — availability during the registry and
authoritative outages the fault-injection benches script.  ``get``
still returns only fresh entries; the engine asks for
:meth:`RRsetCache.get_stale` explicitly after resolution has failed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..dnscore import Name, RRType, RRset
from ..netsim import SimClock


@dataclasses.dataclass
class CachedRRset:
    """A cached RRset plus its provenance."""

    rrset: RRset
    rrsig: Optional[RRset]
    expires_at: float
    #: Validation status string (ValidationStatus.value) if validated.
    status: Optional[str] = None

    def fresh(self, now: float) -> bool:
        return now < self.expires_at

    def stale_but_usable(self, now: float, stale_window: float) -> bool:
        """Expired, but still within the RFC 8767 serve-stale window."""
        return self.expires_at <= now < self.expires_at + stale_window


class RRsetCache:
    """Cache keyed by (owner name, rrtype)."""

    def __init__(
        self,
        clock: SimClock,
        max_ttl: float = 86400.0,
        serve_stale: bool = False,
        stale_window: float = 86400.0,
        metrics=None,
    ):
        self._clock = clock
        self._max_ttl = max_ttl
        #: RFC 8767: retain expired entries for ``stale_window`` seconds
        #: so they can be served during upstream outages.
        self.serve_stale = serve_stale
        self.stale_window = stale_window
        #: Optional :class:`~repro.core.metrics.MetricsRegistry`
        #: mirroring the hit/miss counters under ``cache.*`` (duck-
        #: typed; ``None`` keeps the cache dependency-free and fast).
        self.metrics = metrics
        self._entries: Dict[Tuple[Name, RRType], CachedRRset] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0

    def get(self, name: Name, rtype: RRType) -> Optional[CachedRRset]:
        key = (name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.inc("cache.misses")
            return None
        if not entry.fresh(self._clock.now):
            if not (
                self.serve_stale
                and entry.stale_but_usable(self._clock.now, self.stale_window)
            ):
                del self._entries[key]
            self.misses += 1
            if self.metrics is not None:
                self.metrics.inc("cache.misses")
            return None
        self.hits += 1
        if self.metrics is not None:
            self.metrics.inc("cache.hits")
        return entry

    def get_stale(self, name: Name, rtype: RRType) -> Optional[CachedRRset]:
        """An expired-but-retained entry, or None.  Only meaningful in
        serve-stale mode; fresh entries are not returned (use ``get``)."""
        if not self.serve_stale:
            return None
        entry = self._entries.get((name, rtype))
        if entry is None or entry.fresh(self._clock.now):
            return None
        if not entry.stale_but_usable(self._clock.now, self.stale_window):
            del self._entries[(name, rtype)]
            return None
        self.stale_hits += 1
        if self.metrics is not None:
            self.metrics.inc("cache.stale_hits")
        return entry

    def put(
        self,
        rrset: RRset,
        rrsig: Optional[RRset] = None,
        status: Optional[str] = None,
    ) -> CachedRRset:
        ttl = min(float(rrset.ttl), self._max_ttl)
        entry = CachedRRset(
            rrset=rrset,
            rrsig=rrsig,
            expires_at=self._clock.now + ttl,
            status=status,
        )
        self._entries[(rrset.name, rrset.rtype)] = entry
        return entry

    def set_status(self, name: Name, rtype: RRType, status: str) -> None:
        entry = self._entries.get((name, rtype))
        if entry is not None:
            entry.status = status

    def entries(self):
        """Iterate over all retained entries (fresh and stale alike).

        Observability hook: the adversary matrix walks the cache looking
        for poisoned RRsets without disturbing hit/miss counters.
        """
        return iter(self._entries.values())

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[Name, RRType]) -> bool:
        return self.get(*key) is not None
