"""Positive RRset cache with TTL expiry against the simulated clock.

Entries may carry the RRSIG that came with the RRset and the validation
status it earned, so revalidation (and hence repeat DLV traffic) is
avoided for cache hits — matching resolver behaviour the paper's
measurements depend on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..dnscore import Name, RRType, RRset
from ..netsim import SimClock


@dataclasses.dataclass
class CachedRRset:
    """A cached RRset plus its provenance."""

    rrset: RRset
    rrsig: Optional[RRset]
    expires_at: float
    #: Validation status string (ValidationStatus.value) if validated.
    status: Optional[str] = None

    def fresh(self, now: float) -> bool:
        return now < self.expires_at


class RRsetCache:
    """Cache keyed by (owner name, rrtype)."""

    def __init__(self, clock: SimClock, max_ttl: float = 86400.0):
        self._clock = clock
        self._max_ttl = max_ttl
        self._entries: Dict[Tuple[Name, RRType], CachedRRset] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: Name, rtype: RRType) -> Optional[CachedRRset]:
        key = (name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.fresh(self._clock.now):
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        rrset: RRset,
        rrsig: Optional[RRset] = None,
        status: Optional[str] = None,
    ) -> CachedRRset:
        ttl = min(float(rrset.ttl), self._max_ttl)
        entry = CachedRRset(
            rrset=rrset,
            rrsig=rrsig,
            expires_at=self._clock.now + ttl,
            status=status,
        )
        self._entries[(rrset.name, rrset.rtype)] = entry
        return entry

    def set_status(self, name: Name, rtype: RRType, status: str) -> None:
        entry = self._entries.get((name, rtype))
        if entry is not None:
            entry.status = status

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[Name, RRType]) -> bool:
        return self.get(*key) is not None
