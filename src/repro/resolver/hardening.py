"""Byzantine-robustness policy for the iterative engine.

The paper's measurement pipeline assumes the simulated resolver behaves
like a hardened BIND/Unbound; this module supplies the checks a real
resolver applies to wire data before believing it:

* **response matching** — a response must echo the outstanding query's
  message id and question section (the Kaminsky defence: an off-path
  spoofer has to guess the id);
* **bailiwick scrubbing** — records are cached only when their owner
  names fall inside the zone the queried server is authoritative for
  (classic cache-poisoning defence: a server must not be able to inject
  data for names outside its delegation);
* **referral direction** — a delegation must descend: the child zone
  strictly below the current cut and at-or-above the query name, which
  kills upward/sideways referral loops;
* **work budgets** — per-resolution caps on upstream sends, NS-address
  sub-resolutions (NXNSAttack), and signature verifications (KeyTrap),
  so a malicious response can make one resolution *fail* but never make
  it *expensive*.

:class:`HardeningPolicy` is a frozen bundle of knobs with pure check
methods; :class:`WorkBudget` is the mutable per-resolution spend
tracker; :class:`HardeningCounters` accumulates what the checks did, for
observability and the adversary matrix.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..dnscore import Message, Name, RRType, RRset

#: Record types a referral's additional section may legitimately glue.
_GLUE_TYPES = (RRType.A, RRType.AAAA)


@dataclasses.dataclass(frozen=True)
class HardeningPolicy:
    """Resolver-side defences against malicious responses.

    The default-constructed policy is *hardened*: every check on, with
    work budgets sized several times above the worst honest cold-cache
    resolution (measured in ``tests/resolver/test_hardening.py``), so
    benign traffic never trips them.  :meth:`off` builds the trusting
    pre-hardening resolver for adversary-matrix baselines.
    """

    #: Master switch; ``False`` reproduces the historical wire-trusting
    #: engine regardless of the other knobs.
    enabled: bool = True
    #: Require responses to echo the query's message id (Kaminsky).
    check_response_id: bool = True
    #: Require responses to echo the query's question section.
    check_question_echo: bool = True
    #: Drop cached records whose owners fall outside the server's zone.
    bailiwick_scrub: bool = True
    #: Reject upward/sideways referrals.
    check_referral_direction: bool = True
    #: Per-resolution cap on NS-host address sub-resolutions (NXNS).
    max_ns_address_resolutions: int = 12
    #: Per-resolution cap on cryptographic signature checks (KeyTrap).
    max_signature_validations: int = 160
    #: Per-resolution cap on upstream queries actually sent.
    max_upstream_sends: int = 400

    @classmethod
    def off(cls) -> "HardeningPolicy":
        """The unhardened baseline: trust the wire completely."""
        return cls(enabled=False)

    # ------------------------------------------------------------------
    # Response matching (spoof detection)
    # ------------------------------------------------------------------

    def response_matches(self, query: Message, response: Message) -> bool:
        """Does *response* plausibly answer *query*?

        A mismatched message id or question section marks a forgery (or
        a grossly broken server); either way the response must not drive
        resolution.
        """
        if not self.enabled:
            return True
        if self.check_response_id and response.message_id != query.message_id:
            return False
        if self.check_question_echo and response.question != query.question:
            return False
        return True

    # ------------------------------------------------------------------
    # Bailiwick scrubbing
    # ------------------------------------------------------------------

    def scrub_rrsets(
        self, rrsets: Tuple[RRset, ...], bailiwick: Name
    ) -> Tuple[List[RRset], int]:
        """Split *rrsets* into (kept, dropped-count) by bailiwick.

        A record survives only when its owner name sits at or below
        *bailiwick* — the zone the answering server was queried as
        authoritative for.
        """
        if not (self.enabled and self.bailiwick_scrub):
            return list(rrsets), 0
        kept = [r for r in rrsets if r.name.is_subdomain_of(bailiwick)]
        return kept, len(rrsets) - len(kept)

    def glue_in_bailiwick(self, glue: RRset, referred_zone: Name) -> bool:
        """May a referral's glue record enter the cache?

        Only address records whose owner names fall inside the referred
        (child) zone: glue for anything else is the poisoner's classic
        vehicle.
        """
        if not (self.enabled and self.bailiwick_scrub):
            return True
        return glue.rtype in _GLUE_TYPES and glue.name.is_subdomain_of(
            referred_zone
        )

    # ------------------------------------------------------------------
    # Referral direction
    # ------------------------------------------------------------------

    def referral_allowed(self, child: Name, cut: Name, qname: Name) -> bool:
        """Is a delegation from *cut* to *child* a legitimate descent?

        The child must lie strictly below the cut (downward) and at or
        above the query name (on the path toward it).  Upward referrals
        (child at/above the cut) and sideways ones (off the qname path)
        are the NXNS/loop amplification vectors.
        """
        if not (self.enabled and self.check_referral_direction):
            return True
        if child == cut or not child.is_subdomain_of(cut):
            return False
        return qname.is_subdomain_of(child)

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------

    def fresh_budget(self) -> "WorkBudget":
        return WorkBudget(
            sends_left=self.max_upstream_sends if self.enabled else None,
            ns_resolutions_left=(
                self.max_ns_address_resolutions if self.enabled else None
            ),
            signatures_left=(
                self.max_signature_validations if self.enabled else None
            ),
        )

    def describe(self) -> str:
        if not self.enabled:
            return "unhardened"
        checks = [
            name
            for name, on in (
                ("id", self.check_response_id),
                ("question", self.check_question_echo),
                ("bailiwick", self.bailiwick_scrub),
                ("direction", self.check_referral_direction),
            )
            if on
        ]
        return (
            f"hardened[{'+'.join(checks)};"
            f"sends<={self.max_upstream_sends},"
            f"ns<={self.max_ns_address_resolutions},"
            f"sigs<={self.max_signature_validations}]"
        )


@dataclasses.dataclass
class WorkBudget:
    """Remaining per-resolution spend.  ``None`` means unlimited."""

    sends_left: Optional[int] = None
    ns_resolutions_left: Optional[int] = None
    signatures_left: Optional[int] = None

    @staticmethod
    def _charge(remaining: Optional[int]) -> Tuple[Optional[int], bool]:
        if remaining is None:
            return None, True
        if remaining <= 0:
            return remaining, False
        return remaining - 1, True

    def charge_send(self) -> bool:
        self.sends_left, allowed = self._charge(self.sends_left)
        return allowed

    def charge_ns_resolution(self) -> bool:
        self.ns_resolutions_left, allowed = self._charge(
            self.ns_resolutions_left
        )
        return allowed

    def charge_signature(self) -> bool:
        self.signatures_left, allowed = self._charge(self.signatures_left)
        return allowed


@dataclasses.dataclass
class HardeningCounters:
    """What the hardening layer did, accumulated over a resolver's life."""

    #: Responses rejected for a wrong message id or question section.
    spoofs_rejected: int = 0
    #: RRsets dropped by bailiwick scrubbing before any cache write.
    records_scrubbed: int = 0
    #: Glue records refused for falling outside the referred zone.
    glue_rejected: int = 0
    #: Referrals refused for pointing upward or sideways.
    referrals_rejected: int = 0
    #: Resolutions cut short by the upstream-send budget.
    send_budget_exhausted: int = 0
    #: NS-address sub-resolutions refused by the fanout budget.
    ns_budget_exhausted: int = 0
    #: Signature checks refused by the validation budget.
    signature_budget_exhausted: int = 0

    def total_rejections(self) -> int:
        return (
            self.spoofs_rejected
            + self.records_scrubbed
            + self.glue_rejected
            + self.referrals_rejected
        )

    def budget_denials(self) -> int:
        return (
            self.send_budget_exhausted
            + self.ns_budget_exhausted
            + self.signature_budget_exhausted
        )
