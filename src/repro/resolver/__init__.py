"""Recursive resolver: caching, DNSSEC validation, DLV look-aside."""

from .anchors import TrustAnchor, TrustAnchorStore
from .cache import CachedRRset, RRsetCache
from .config import (
    DlvOutagePolicy,
    LookasideSetting,
    ResolverConfig,
    ResolverFlavor,
    ValidationSetting,
    broken_anchor_bind_config,
    correct_bind_config,
)
from .engine import (
    BudgetExceeded,
    IterativeEngine,
    ResolutionError,
    ResolutionOutcome,
)
from .hardening import HardeningCounters, HardeningPolicy, WorkBudget
from .health import ServerHealth, ServerStats
from .lookaside import DlvLookaside, LookasideResult
from .negcache import NegativeCache
from .recursive import (
    DEFAULT_REGISTRY_ORIGIN,
    RecursiveResolver,
    ResolutionResult,
    StubClient,
)
from .validator import ValidationStatus, Validator, ZoneSecurity

__all__ = [
    "CachedRRset",
    "DEFAULT_REGISTRY_ORIGIN",
    "DlvLookaside",
    "DlvOutagePolicy",
    "HardeningCounters",
    "HardeningPolicy",
    "WorkBudget",
    "ServerHealth",
    "ServerStats",
    "IterativeEngine",
    "LookasideResult",
    "LookasideSetting",
    "NegativeCache",
    "RecursiveResolver",
    "BudgetExceeded",
    "ResolutionError",
    "ResolutionOutcome",
    "ResolutionResult",
    "ResolverConfig",
    "ResolverFlavor",
    "RRsetCache",
    "StubClient",
    "TrustAnchor",
    "TrustAnchorStore",
    "ValidationSetting",
    "ValidationStatus",
    "Validator",
    "ZoneSecurity",
    "broken_anchor_bind_config",
    "correct_bind_config",
]
