"""Negative caching, including RFC 5074's aggressive NSEC cache.

Two stores:

* the classic negative cache (RFC 2308): NXDOMAIN per name, NODATA per
  (name, type), with TTLs;
* the **aggressive NSEC cache**: validated NSEC records, kept per zone
  as canonical-order ranges.  Before sending a DLV query the validator
  checks whether any cached NSEC already proves the name's non-existence
  — the mechanism behind the paper's observation that the *proportion*
  of leaked domains decays as more domains are queried (Fig. 9), and
  that query order changes which domains leak (Section 5.1, "Order
  Matters").
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Optional, Tuple

from ..dnscore import NSEC, Name, RRType, RRset
from ..netsim import SimClock


@dataclasses.dataclass
class _NsecRange:
    owner_key: Tuple[bytes, ...]
    next_key: Tuple[bytes, ...]
    wrapped: bool
    expires_at: float
    owner: Name
    next_name: Name

    def covers(self, key: Tuple[bytes, ...]) -> bool:
        if self.wrapped:
            # Range from the canonically last name back to the apex.
            return key > self.owner_key or key < self.next_key
        return self.owner_key < key < self.next_key


class NegativeCache:
    """RFC 2308 negative answers + RFC 5074 aggressive NSEC ranges."""

    def __init__(self, clock: SimClock, max_ttl: float = 3600.0):
        self._clock = clock
        self._max_ttl = max_ttl
        self._nxdomain: Dict[Name, float] = {}
        self._nodata: Dict[Tuple[Name, RRType], float] = {}
        # Per zone: a sorted list of owner keys plus the parallel list of
        # ranges, so coverage checks stay O(log n) at 100k+ ranges.
        self._nsec_keys: Dict[Name, List[Tuple[bytes, ...]]] = {}
        self._nsec_ranges: Dict[Name, List[_NsecRange]] = {}
        self.aggressive_hits = 0

    # ------------------------------------------------------------------
    # Classic negative cache
    # ------------------------------------------------------------------

    def put_nxdomain(self, name: Name, ttl: float) -> None:
        self._nxdomain[name] = self._clock.now + min(ttl, self._max_ttl)

    def put_nodata(self, name: Name, rtype: RRType, ttl: float) -> None:
        self._nodata[(name, rtype)] = self._clock.now + min(ttl, self._max_ttl)

    def is_nxdomain(self, name: Name) -> bool:
        expires = self._nxdomain.get(name)
        if expires is None:
            return False
        if self._clock.now >= expires:
            del self._nxdomain[name]
            return False
        return True

    def is_nodata(self, name: Name, rtype: RRType) -> bool:
        expires = self._nodata.get((name, rtype))
        if expires is None:
            return False
        if self._clock.now >= expires:
            del self._nodata[(name, rtype)]
            return False
        return True

    def known_negative(self, name: Name, rtype: RRType) -> bool:
        return self.is_nxdomain(name) or self.is_nodata(name, rtype)

    # ------------------------------------------------------------------
    # Aggressive NSEC cache
    # ------------------------------------------------------------------

    def add_nsec(self, zone: Name, nsec_rrset: RRset) -> None:
        """Remember a validated NSEC range from *zone*."""
        nsec = nsec_rrset.first()
        assert isinstance(nsec, NSEC)
        owner_key = nsec_rrset.name.canonical_key()
        next_key = nsec.next_name.canonical_key()
        entry = _NsecRange(
            owner_key=owner_key,
            next_key=next_key,
            wrapped=next_key <= owner_key,
            expires_at=self._clock.now + min(float(nsec_rrset.ttl), self._max_ttl),
            owner=nsec_rrset.name,
            next_name=nsec.next_name,
        )
        keys = self._nsec_keys.setdefault(zone, [])
        ranges = self._nsec_ranges.setdefault(zone, [])
        index = bisect.bisect_left(keys, owner_key)
        if index < len(keys) and keys[index] == owner_key:
            ranges[index] = entry  # refresh
        else:
            keys.insert(index, owner_key)
            ranges.insert(index, entry)

    def nsec_covers(self, zone: Name, qname: Name) -> bool:
        """Does a fresh cached NSEC from *zone* prove *qname* absent?"""
        ranges = self._nsec_ranges.get(zone)
        if not ranges:
            return False
        keys = self._nsec_keys[zone]
        now = self._clock.now
        key = qname.canonical_key()
        # Candidate: the range with the greatest owner_key <= key, plus a
        # possible wrapped range at the end of the chain.
        index = bisect.bisect_right(keys, key) - 1
        candidates = []
        if index >= 0:
            candidates.append(index)
        if ranges and ranges[-1].wrapped and index != len(ranges) - 1:
            candidates.append(len(ranges) - 1)
        for candidate_index in candidates:
            entry = ranges[candidate_index]
            if entry.expires_at <= now:
                continue
            if entry.covers(key):
                self.aggressive_hits += 1
                return True
        return False

    def nsec_range_count(self, zone: Optional[Name] = None) -> int:
        if zone is not None:
            return len(self._nsec_ranges.get(zone, []))
        return sum(len(ranges) for ranges in self._nsec_ranges.values())

    def flush(self) -> None:
        self._nxdomain.clear()
        self._nodata.clear()
        self._nsec_keys.clear()
        self._nsec_ranges.clear()
