"""Sharded parallel experiment runner with a deterministic merge.

The paper's headline numbers come from sweeping whole resolver
environments over large domain samples (Section 4, Tables 1-5).  Every
run in this repository is a deterministic simulation, which makes the
sweeps embarrassingly parallel — *if* the parallel result can be trusted
to equal the serial one bit for bit.  This module provides exactly that
contract:

* :func:`plan_shards` splits a name workload into contiguous,
  deterministically seeded shards (sub-seeds derive from the base seed
  via SHA-256, never from Python's hash or process state);
* each shard runs in a **fresh universe** built from its sub-seed, so
  shards share no caches, no clock, and no capture — a shard's result
  is a pure function of ``(factory, config, shard names, sub-seed)``;
* :class:`SerialExecutor` and :class:`MultiprocessingExecutor` run the
  same shard tasks in-process or on a ``fork`` worker pool; the
  executor choice is *provably invisible* in the output (enforced by
  ``tests/core/test_parallel_equivalence.py``);
* :func:`merge_shard_results` re-sorts shard results by their stable
  shard index and folds them with the monoid merges below, renumbering
  trace ids so the exported trace JSONL is byte-identical no matter
  which worker finished first.

Determinism / sub-seed contract
-------------------------------

``subseed(i) = SHA256(f"{seed}:{i}") mod 2**63`` — stable across
platforms and Python versions.  Shard *i* of *k* always receives the
same contiguous name slice and the same sub-seed, so the merged result
is a function of ``(names, seed, k)`` alone: worker count, executor
kind, and shard completion order cannot change a single byte of the
merged summary, histograms, capture rows, metric snapshot, or exported
trace JSONL.  The serial reference for a sharded run is the *same shard
plan* executed by :class:`SerialExecutor`; with ``shards=1`` that
reference is byte-identical to a plain
:meth:`~repro.core.experiment.LeakageExperiment.run` on the shard's
own universe (``factory(derive_subseed(seed, 0))``).

The merge operations (:func:`merge_leakage_reports`,
:func:`merge_overhead`, :func:`merge_metrics_snapshots`,
:func:`merge_results`) are associative and have the empty value as
identity; :func:`merge_shard_results` is additionally invariant to the
order its inputs arrive in (it sorts by shard index first).  Those
algebraic laws are what make the fan-out safe, and they are enforced by
Hypothesis in ``tests/core/test_parallel_merge_properties.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..dnscore import Name
from ..resolver import ResolverConfig
from ..workloads import Universe
from .experiment import ExperimentResult, LeakageExperiment, _CaptureSlice
from .leakage import LeakageReport
from .metrics import MetricsRegistry
from .overhead import OverheadMetrics
from .tracing import Span, Tracer, export_traces_jsonl

T = TypeVar("T")

#: A picklable callable building a fresh universe from a sub-seed.
UniverseFactory = Callable[[int], Universe]


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------

def derive_subseed(seed: int, shard_index: int) -> int:
    """The shard's derived sub-seed: ``SHA256(f"{seed}:{index}")``
    folded to 63 bits.  Pure arithmetic on stable inputs — no process
    state, no ``PYTHONHASHSEED`` sensitivity."""
    digest = hashlib.sha256(f"{seed}:{shard_index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded run: a stable index, its contiguous name
    slice, and its derived sub-seed."""

    index: int
    names: Tuple[Name, ...]
    seed: int


def plan_shards(
    names: Sequence[Name], shard_count: int, seed: int
) -> List[ShardSpec]:
    """Split *names* into *shard_count* contiguous shards.

    The first ``len(names) % shard_count`` shards carry one extra name,
    so the partition depends only on ``(len(names), shard_count)`` —
    never on timing or worker count.  Empty shards are legal (more
    shards than names) and merge as identities.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    total = len(names)
    base, extra = divmod(total, shard_count)
    shards: List[ShardSpec] = []
    cursor = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shard_names = tuple(names[cursor:cursor + size])
        cursor += size
        shards.append(
            ShardSpec(
                index=index,
                names=shard_names,
                seed=derive_subseed(seed, index),
            )
        )
    return shards


# ----------------------------------------------------------------------
# Monoid merges
# ----------------------------------------------------------------------

def empty_leakage_report() -> LeakageReport:
    """The identity of :func:`merge_leakage_reports`."""
    return LeakageReport(
        domains_queried=0,
        dlv_queries=0,
        case1_queries=0,
        case2_queries=0,
        leaked_domains=set(),
        served_domains=set(),
        tld_level_queries=0,
        noerror_responses=0,
        nxdomain_responses=0,
    )


def merge_leakage_reports(a: LeakageReport, b: LeakageReport) -> LeakageReport:
    """Combine two shard reports: counts add, domain sets union.

    Shards query disjoint name slices, so ``domains_queried`` adds and
    the unions stay disjoint; associative and commutative with
    :func:`empty_leakage_report` as identity.
    """
    return LeakageReport(
        domains_queried=a.domains_queried + b.domains_queried,
        dlv_queries=a.dlv_queries + b.dlv_queries,
        case1_queries=a.case1_queries + b.case1_queries,
        case2_queries=a.case2_queries + b.case2_queries,
        leaked_domains=set(a.leaked_domains) | set(b.leaked_domains),
        served_domains=set(a.served_domains) | set(b.served_domains),
        tld_level_queries=a.tld_level_queries + b.tld_level_queries,
        noerror_responses=a.noerror_responses + b.noerror_responses,
        nxdomain_responses=a.nxdomain_responses + b.nxdomain_responses,
    )


def empty_overhead() -> OverheadMetrics:
    """The identity of :func:`merge_overhead`."""
    return OverheadMetrics(
        response_time=0.0,
        traffic_bytes=0,
        queries_issued=0,
        query_type_counts={},
    )


def merge_overhead(a: OverheadMetrics, b: OverheadMetrics) -> OverheadMetrics:
    """Combine shard overheads.  Response times add because the serial
    reference runs the shards back to back on independent clocks."""
    counts: Dict = dict(a.query_type_counts)
    for rtype, count in b.query_type_counts.items():
        counts[rtype] = counts.get(rtype, 0) + count
    return OverheadMetrics(
        response_time=a.response_time + b.response_time,
        traffic_bytes=a.traffic_bytes + b.traffic_bytes,
        queries_issued=a.queries_issued + b.queries_issued,
        query_type_counts={key: counts[key] for key in sorted(counts, key=lambda r: r.value)},
    )


def _merge_count_dicts(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return {key: merged[key] for key in sorted(merged)}


def empty_metrics_snapshot() -> Dict[str, Dict]:
    """The identity of :func:`merge_metrics_snapshots`."""
    return {"counters": {}, "histograms": {}}


def merge_metrics_snapshots(
    a: Optional[Dict[str, Dict]], b: Optional[Dict[str, Dict]]
) -> Optional[Dict[str, Dict]]:
    """Combine two :meth:`~repro.core.metrics.MetricsRegistry.snapshot`
    dicts: counters add; histogram count/sum add, min/max extend, mean
    recomputes.  ``None`` (an untelemetered shard) acts as identity;
    two ``None`` inputs stay ``None``."""
    if a is None and b is None:
        return None
    left = a if a is not None else empty_metrics_snapshot()
    right = b if b is not None else empty_metrics_snapshot()
    histograms: Dict[str, Dict] = {}
    for name in sorted(set(left["histograms"]) | set(right["histograms"])):
        parts = [
            source["histograms"][name]
            for source in (left, right)
            if name in source["histograms"]
        ]
        count = sum(part["count"] for part in parts)
        total = sum(part["sum"] for part in parts)
        mins = [part["min"] for part in parts if part["min"] is not None]
        maxes = [part["max"] for part in parts if part["max"] is not None]
        histograms[name] = {
            "count": count,
            "sum": total,
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "mean": total / count if count else 0.0,
        }
    return {
        "counters": _merge_count_dicts(left["counters"], right["counters"]),
        "histograms": histograms,
    }


def _retag_trace(root: Span, trace_id: int) -> Span:
    """A copy of *root*'s subtree carrying *trace_id* (span ids and
    structure unchanged)."""
    return dataclasses.replace(
        root,
        trace_id=trace_id,
        attrs=dict(root.attrs),
        children=[_retag_trace(child, trace_id) for child in root.children],
    )


def renumber_traces(roots: Sequence[Span], start: int = 1) -> Tuple[Span, ...]:
    """Assign sequential trace ids from *start* in the given order.

    Shard tracers each number their traces from 1; after concatenating
    shards in index order, renumbering restores the global sequence a
    serial tracer would have produced, making the merged JSONL export
    deterministic."""
    return tuple(
        _retag_trace(root, start + offset) for offset, root in enumerate(roots)
    )


def empty_result() -> ExperimentResult:
    """The identity of :func:`merge_results`."""
    return ExperimentResult(
        names=[],
        leakage=empty_leakage_report(),
        overhead=empty_overhead(),
        status_counts={},
        rcode_counts={},
        authenticated_answers=0,
        capture=None,
        traces=(),
        metrics=None,
    )


def merge_results(a: ExperimentResult, b: ExperimentResult) -> ExperimentResult:
    """Merge two shard results in order (``a`` before ``b``).

    Associative with :func:`empty_result` as identity.  Ordered fields
    (names, capture, traces) concatenate; trace ids renumber so the
    merged export is stable; everything else folds through the monoid
    merges above.
    """
    if a.capture is None and b.capture is None:
        capture = None
    else:
        records: List = []
        if a.capture is not None:
            records.extend(a.capture)
        if b.capture is not None:
            records.extend(b.capture)
        capture = _CaptureSlice(records)
    return ExperimentResult(
        names=list(a.names) + list(b.names),
        leakage=merge_leakage_reports(a.leakage, b.leakage),
        overhead=merge_overhead(a.overhead, b.overhead),
        status_counts=_merge_count_dicts(a.status_counts, b.status_counts),
        rcode_counts=_merge_count_dicts(a.rcode_counts, b.rcode_counts),
        authenticated_answers=a.authenticated_answers + b.authenticated_answers,
        capture=capture,
        traces=renumber_traces(tuple(a.traces) + tuple(b.traces)),
        metrics=merge_metrics_snapshots(a.metrics, b.metrics),
    )


def merge_shard_results(
    pairs: Iterable[Tuple[int, ExperimentResult]]
) -> ExperimentResult:
    """Fold shard results into one, re-sorting by shard index first.

    The sort is what makes the merge invariant to completion order:
    whichever worker finishes first, the fold always runs in shard
    order, so float sums, name order, capture order, and trace
    numbering all match the serial reference exactly.
    """
    merged = empty_result()
    for _, result in sorted(pairs, key=lambda pair: pair[0]):
        merged = merge_results(merged, result)
    return merged


def result_fingerprint(result: ExperimentResult) -> Dict[str, Any]:
    """A canonical, comparison-friendly digest of a result.

    Everything the equivalence contract covers, reduced to plain
    comparable values: the summary line, the histograms, the capture
    rows, the metric snapshot, and the byte-exact trace JSONL.  Two
    results with equal fingerprints are indistinguishable to every
    analysis in this repository.
    """
    capture_rows = (
        [
            (
                record.time,
                record.src,
                record.dst,
                record.wire_size,
                record.dropped,
                record.qname.to_text() if record.qname is not None else None,
                record.qtype.name if record.qtype is not None else None,
            )
            for record in result.capture
        ]
        if result.capture is not None
        else []
    )
    return {
        "summary": result.summary(),
        "names": [name.to_text() for name in result.names],
        "status_counts": dict(sorted(result.status_counts.items())),
        "rcode_counts": dict(sorted(result.rcode_counts.items())),
        "authenticated": result.authenticated_answers,
        "leaked_domains": sorted(
            name.to_text() for name in result.leakage.leaked_domains
        ),
        "served_domains": sorted(
            name.to_text() for name in result.leakage.served_domains
        ),
        "capture": capture_rows,
        "metrics": result.metrics,
        "traces_jsonl": export_traces_jsonl(list(result.traces)),
    }


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

#: Parent-side handoff for the fork pool: workers inherit the task list
#: through fork instead of pickling it, so arbitrary closures (chaos
#: scenarios, universe factories) fan out without being picklable.
_ACTIVE_TASKS: Optional[Sequence[Callable[[], Any]]] = None


def _invoke_task(index: int) -> Any:
    assert _ACTIVE_TASKS is not None, "worker started outside run_tasks"
    return _ACTIVE_TASKS[index]()


class SerialExecutor:
    """The in-process fallback: runs every task in the calling process,
    in order.  Used for debugging, platforms without ``fork``, and as
    the reference arm of the equivalence tests."""

    workers = 1

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class MultiprocessingExecutor:
    """A ``fork``-based worker pool.

    Tasks are handed to workers by index: the child inherits the task
    list through fork, so only the index travels out and only the
    (picklable) result travels back.  On platforms without ``fork`` —
    or with ``workers <= 1`` — it degrades to :class:`SerialExecutor`
    semantics, which is safe because executors are output-invisible.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @staticmethod
    def fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        global _ACTIVE_TASKS
        if self.workers == 1 or len(tasks) <= 1 or not self.fork_available():
            return SerialExecutor().run(tasks)
        context = multiprocessing.get_context("fork")
        previous = _ACTIVE_TASKS
        _ACTIVE_TASKS = tasks
        try:
            with context.Pool(min(self.workers, len(tasks))) as pool:
                return pool.map(_invoke_task, range(len(tasks)), chunksize=1)
        finally:
            _ACTIVE_TASKS = previous


def resolve_executor(parallelism: int, executor=None):
    """The executor for a requested worker count: an explicit executor
    wins; otherwise ``parallelism > 1`` gets a fork pool and anything
    else the in-process fallback."""
    if executor is not None:
        return executor
    if parallelism > 1:
        return MultiprocessingExecutor(parallelism)
    return SerialExecutor()


def run_tasks(
    tasks: Sequence[Callable[[], T]],
    parallelism: int = 1,
    executor=None,
) -> List[T]:
    """Fan *tasks* out on the chosen executor, preserving input order
    in the returned list (the pool maps by index)."""
    return resolve_executor(parallelism, executor).run(tasks)


# ----------------------------------------------------------------------
# The sharded experiment runner
# ----------------------------------------------------------------------

def run_shard(
    factory: UniverseFactory,
    config: ResolverConfig,
    spec: ShardSpec,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
) -> ExperimentResult:
    """Run one shard in a fresh universe built from its sub-seed.

    A pure function of its arguments: the shard shares no state with
    its siblings, which is the whole determinism argument.
    """
    universe = factory(spec.seed)
    tracer = Tracer(universe.clock) if trace else None
    metrics = MetricsRegistry() if trace else None
    experiment = LeakageExperiment(
        universe,
        config,
        ptr_fraction=ptr_fraction,
        dnssec_ok_stub=dnssec_ok_stub,
        tracer=tracer,
        metrics=metrics,
    )
    return experiment.run(list(spec.names))


def run_sharded_experiment(
    factory: UniverseFactory,
    config: ResolverConfig,
    names: Sequence[Name],
    seed: int = 0,
    shards: Optional[int] = None,
    parallelism: int = 1,
    executor=None,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
) -> ExperimentResult:
    """Shard *names*, fan the shards out, merge deterministically.

    ``shards`` defaults to ``max(parallelism, 1)``; fixing it while
    varying ``parallelism``/``executor`` keeps the merged output
    byte-identical across worker counts (the shard plan, not the pool,
    defines the result).
    """
    shard_count = shards if shards is not None else max(parallelism, 1)
    plan = plan_shards(names, shard_count, seed)
    tasks = [
        _ShardTask(
            factory=factory,
            config=config,
            spec=spec,
            ptr_fraction=ptr_fraction,
            dnssec_ok_stub=dnssec_ok_stub,
            trace=trace,
        )
        for spec in plan
    ]
    results = run_tasks(tasks, parallelism=parallelism, executor=executor)
    return merge_shard_results(
        (spec.index, result) for spec, result in zip(plan, results)
    )


@dataclasses.dataclass(frozen=True)
class _ShardTask:
    """One shard as a picklable zero-argument callable (usable both by
    the fork pool's inheritance handoff and by spawn-style pickling
    when the factory and config pickle)."""

    factory: UniverseFactory
    config: ResolverConfig
    spec: ShardSpec
    ptr_fraction: float
    dnssec_ok_stub: bool
    trace: bool

    def __call__(self) -> ExperimentResult:
        return run_shard(
            self.factory,
            self.config,
            self.spec,
            ptr_fraction=self.ptr_fraction,
            dnssec_ok_stub=self.dnssec_ok_stub,
            trace=self.trace,
        )
