"""Sharded parallel experiment runner with a deterministic merge.

The paper's headline numbers come from sweeping whole resolver
environments over large domain samples (Section 4, Tables 1-5).  Every
run in this repository is a deterministic simulation, which makes the
sweeps embarrassingly parallel — *if* the parallel result can be trusted
to equal the serial one bit for bit.  This module provides exactly that
contract:

* :func:`plan_shards` splits a name workload into contiguous,
  deterministically seeded shards (sub-seeds derive from the base seed
  via SHA-256, never from Python's hash or process state);
* each shard runs in a **fresh universe** built from its sub-seed, so
  shards share no caches, no clock, and no capture — a shard's result
  is a pure function of ``(factory, config, shard names, sub-seed)``;
* :class:`SerialExecutor` and :class:`MultiprocessingExecutor` run the
  same shard tasks in-process or on a ``fork`` worker pool; the
  executor choice is *provably invisible* in the output (enforced by
  ``tests/core/test_parallel_equivalence.py``);
* :func:`merge_shard_results` re-sorts shard results by their stable
  shard index and folds them with the monoid merges below, renumbering
  trace ids so the exported trace JSONL is byte-identical no matter
  which worker finished first.

Determinism / sub-seed contract
-------------------------------

``subseed(i) = SHA256(f"{seed}:{i}") mod 2**63`` — stable across
platforms and Python versions.  Shard *i* of *k* always receives the
same contiguous name slice and the same sub-seed, so the merged result
is a function of ``(names, seed, k)`` alone: worker count, executor
kind, and shard completion order cannot change a single byte of the
merged summary, histograms, capture rows, metric snapshot, or exported
trace JSONL.  The serial reference for a sharded run is the *same shard
plan* executed by :class:`SerialExecutor`; with ``shards=1`` that
reference is byte-identical to a plain
:meth:`~repro.core.experiment.LeakageExperiment.run` on the shard's
own universe (``factory(derive_subseed(seed, 0))``).

The merge operations (:func:`merge_leakage_reports`,
:func:`merge_overhead`, :func:`merge_metrics_snapshots`,
:func:`merge_results`) are associative and have the empty value as
identity; :func:`merge_shard_results` is additionally invariant to the
order its inputs arrive in (it sorts by shard index first).  Those
algebraic laws are what make the fan-out safe, and they are enforced by
Hypothesis in ``tests/core/test_parallel_merge_properties.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..dnscore import Name
from ..resolver import ResolverConfig
from ..workloads import Universe
from .experiment import ExperimentResult, LeakageExperiment, _CaptureSlice
from .leakage import LeakageReport
from .metrics import MetricsRegistry
from .overhead import OverheadMetrics
from .tracing import Span, Tracer, export_traces_jsonl

T = TypeVar("T")

#: A picklable callable building a fresh universe from a sub-seed.
UniverseFactory = Callable[[int], Universe]


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------

def derive_subseed(seed: int, shard_index: int) -> int:
    """The shard's derived sub-seed: ``SHA256(f"{seed}:{index}")``
    folded to 63 bits.  Pure arithmetic on stable inputs — no process
    state, no ``PYTHONHASHSEED`` sensitivity."""
    digest = hashlib.sha256(f"{seed}:{shard_index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded run: a stable index, its contiguous name
    slice, and its derived sub-seed."""

    index: int
    names: Tuple[Name, ...]
    seed: int


def plan_shards(
    names: Sequence[Name], shard_count: int, seed: int
) -> List[ShardSpec]:
    """Split *names* into *shard_count* contiguous shards.

    The first ``len(names) % shard_count`` shards carry one extra name,
    so the partition depends only on ``(len(names), shard_count)`` —
    never on timing or worker count.  Empty shards are legal (more
    shards than names) and merge as identities.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    total = len(names)
    base, extra = divmod(total, shard_count)
    shards: List[ShardSpec] = []
    cursor = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shard_names = tuple(names[cursor:cursor + size])
        cursor += size
        shards.append(
            ShardSpec(
                index=index,
                names=shard_names,
                seed=derive_subseed(seed, index),
            )
        )
    return shards


# ----------------------------------------------------------------------
# Monoid merges
# ----------------------------------------------------------------------

def empty_leakage_report() -> LeakageReport:
    """The identity of :func:`merge_leakage_reports`."""
    return LeakageReport(
        domains_queried=0,
        dlv_queries=0,
        case1_queries=0,
        case2_queries=0,
        leaked_domains=set(),
        served_domains=set(),
        tld_level_queries=0,
        noerror_responses=0,
        nxdomain_responses=0,
    )


def merge_leakage_reports(a: LeakageReport, b: LeakageReport) -> LeakageReport:
    """Combine two shard reports: counts add, domain sets union.

    Shards query disjoint name slices, so ``domains_queried`` adds and
    the unions stay disjoint; associative and commutative with
    :func:`empty_leakage_report` as identity.
    """
    return LeakageReport(
        domains_queried=a.domains_queried + b.domains_queried,
        dlv_queries=a.dlv_queries + b.dlv_queries,
        case1_queries=a.case1_queries + b.case1_queries,
        case2_queries=a.case2_queries + b.case2_queries,
        leaked_domains=set(a.leaked_domains) | set(b.leaked_domains),
        served_domains=set(a.served_domains) | set(b.served_domains),
        tld_level_queries=a.tld_level_queries + b.tld_level_queries,
        noerror_responses=a.noerror_responses + b.noerror_responses,
        nxdomain_responses=a.nxdomain_responses + b.nxdomain_responses,
    )


def empty_overhead() -> OverheadMetrics:
    """The identity of :func:`merge_overhead`."""
    return OverheadMetrics(
        response_time=0.0,
        traffic_bytes=0,
        queries_issued=0,
        query_type_counts={},
    )


def merge_overhead(a: OverheadMetrics, b: OverheadMetrics) -> OverheadMetrics:
    """Combine shard overheads.  Response times add because the serial
    reference runs the shards back to back on independent clocks."""
    counts: Dict = dict(a.query_type_counts)
    for rtype, count in b.query_type_counts.items():
        counts[rtype] = counts.get(rtype, 0) + count
    return OverheadMetrics(
        response_time=a.response_time + b.response_time,
        traffic_bytes=a.traffic_bytes + b.traffic_bytes,
        queries_issued=a.queries_issued + b.queries_issued,
        query_type_counts={key: counts[key] for key in sorted(counts, key=lambda r: r.value)},
    )


def _merge_count_dicts(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return {key: merged[key] for key in sorted(merged)}


def empty_metrics_snapshot() -> Dict[str, Dict]:
    """The identity of :func:`merge_metrics_snapshots`."""
    return {"counters": {}, "histograms": {}}


def merge_metrics_snapshots(
    a: Optional[Dict[str, Dict]], b: Optional[Dict[str, Dict]]
) -> Optional[Dict[str, Dict]]:
    """Combine two :meth:`~repro.core.metrics.MetricsRegistry.snapshot`
    dicts: counters add; histogram count/sum add, min/max extend, mean
    recomputes.  ``None`` (an untelemetered shard) acts as identity;
    two ``None`` inputs stay ``None``."""
    if a is None and b is None:
        return None
    left = a if a is not None else empty_metrics_snapshot()
    right = b if b is not None else empty_metrics_snapshot()
    histograms: Dict[str, Dict] = {}
    for name in sorted(set(left["histograms"]) | set(right["histograms"])):
        parts = [
            source["histograms"][name]
            for source in (left, right)
            if name in source["histograms"]
        ]
        count = sum(part["count"] for part in parts)
        total = sum(part["sum"] for part in parts)
        mins = [part["min"] for part in parts if part["min"] is not None]
        maxes = [part["max"] for part in parts if part["max"] is not None]
        histograms[name] = {
            "count": count,
            "sum": total,
            "min": min(mins) if mins else None,
            "max": max(maxes) if maxes else None,
            "mean": total / count if count else 0.0,
        }
    return {
        "counters": _merge_count_dicts(left["counters"], right["counters"]),
        "histograms": histograms,
    }


#: Upper bounds (simulated seconds) of the session-latency histogram
#: buckets carried by :class:`ReplayWindow`.  Log-spaced so retry
#: storms (seconds of backoff) and cache hits (sub-millisecond) both
#: resolve; the last bucket is a catch-all and quantiles clamp to it.
#: Bucket *counts* are additive, which is what makes per-window p50/p99
#: an exact monoid fold rather than an approximation of an
#: unmergeable per-sample quantile.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0,
)


def empty_latency_buckets() -> Tuple[int, ...]:
    """An all-zero bucket vector (also an identity of
    :func:`merge_latency_buckets`, alongside the empty tuple)."""
    return (0,) * len(LATENCY_BUCKET_BOUNDS)


def latency_bucket_index(latency: float) -> int:
    """The histogram bucket a session latency falls into (clamped into
    the last, catch-all bucket)."""
    for index, bound in enumerate(LATENCY_BUCKET_BOUNDS):
        if latency <= bound:
            return index
    return len(LATENCY_BUCKET_BOUNDS) - 1


def merge_latency_buckets(
    a: Tuple[int, ...], b: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Elementwise-add two bucket vectors; the empty tuple (and any
    shorter vector, zero-padded) acts as identity."""
    if not a:
        return tuple(b)
    if not b:
        return tuple(a)
    if len(a) < len(b):
        a = a + (0,) * (len(b) - len(a))
    elif len(b) < len(a):
        b = b + (0,) * (len(a) - len(b))
    return tuple(x + y for x, y in zip(a, b))


def latency_quantile(buckets: Sequence[int], q: float) -> float:
    """The *q*-quantile latency implied by a bucket vector: the upper
    bound of the first bucket whose cumulative count reaches rank
    ``ceil(q * total)``.  Deterministic, merge-exact, and clamped to
    the last finite bound — 0.0 for an empty histogram."""
    total = sum(buckets)
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for count, bound in zip(buckets, LATENCY_BUCKET_BOUNDS):
        cumulative += count
        if cumulative >= rank:
            return bound
    return LATENCY_BUCKET_BOUNDS[-1]


@dataclasses.dataclass(frozen=True)
class ReplayWindow:
    """Streaming-aggregation unit of a population-scale replay.

    The event-driven replay (:mod:`repro.core.replay`) never holds
    per-query records: it folds every completed stub query and every
    registry-observed packet into the current window, closes the window
    at its time boundary, and merges closed windows with
    :func:`merge_replay_windows` — the same monoid discipline the shard
    merges use, so memory stays flat at millions of queries while the
    overall result is still an exact fold (associative, commutative,
    :func:`empty_replay_window` as identity; enforced by Hypothesis in
    ``tests/core/test_replay.py`` and
    ``tests/core/test_chaos_replay.py``).

    ``leaked_domains`` is the one set-valued field: it is bounded by the
    *domain population*, not the query volume, so carrying it in the
    monoid is O(domains) — the distinct-leak curve of paper Fig. 8
    without retaining a single packet.

    The availability extension (chaos-under-load, PR 9) splits
    ``failures`` into stub-visible SERVFAILs vs timeouts, carries the
    resolver's per-window retry / served-stale activity, the admission
    queue's deferrals and rejections, and a fixed-width latency
    histogram (:data:`LATENCY_BUCKET_BOUNDS`) whose bucket counts add
    under merge — so p50/p99 session latency is still an exact window
    fold.
    """

    #: Simulated-time bounds of the window (identity: +inf / -inf).
    start: float
    end: float
    #: Stub queries completed / failed (timeout budgets, SERVFAIL paths).
    queries: int = 0
    failures: int = 0
    #: Look-aside traffic the registry received (not dropped in flight).
    dlv_queries: int = 0
    case1_queries: int = 0
    case2_queries: int = 0
    #: Distinct Case-2 domains (relative to the registry origin).
    leaked_domains: FrozenSet[str] = frozenset()
    #: Resolver cache behaviour over the window (metrics deltas).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wire totals over the window.
    packets: int = 0
    wire_bytes: int = 0
    dropped: int = 0
    #: Per-query completion latency (simulated seconds): sum and max.
    latency_sum: float = 0.0
    latency_max: float = 0.0
    #: Sessions the scheduler admitted / finished inside the window.
    sessions_started: int = 0
    sessions_completed: int = 0
    #: Availability split of ``failures``: stub-visible SERVFAIL
    #: answers vs exhausted timeout budgets.
    servfails: int = 0
    timeouts: int = 0
    #: Resolver-side activity over the window (metrics deltas):
    #: upstream re-sends after a timeout and stale answers served
    #: under ``serve_stale`` during an outage.
    retries: int = 0
    stale_served: int = 0
    #: Admission-queue pressure: sessions deferred into the FIFO and
    #: sessions shed outright by a bounded queue (``max_queue``).
    admission_queued: int = 0
    admission_rejected: int = 0
    #: Session-latency histogram (counts per
    #: :data:`LATENCY_BUCKET_BOUNDS` bucket; ``()`` is the identity).
    latency_buckets: Tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def leak_rate(self) -> float:
        """Case-2 queries per completed stub query (the per-window
        privacy-leak intensity)."""
        return self.case2_queries / self.queries if self.queries else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.queries if self.queries else 0.0

    @property
    def servfail_rate(self) -> float:
        """Stub queries answered SERVFAIL per completed query."""
        return self.servfails / self.queries if self.queries else 0.0

    @property
    def timeout_rate(self) -> float:
        """Stub queries that exhausted their timeout budget per
        completed query."""
        return self.timeouts / self.queries if self.queries else 0.0

    @property
    def latency_p50(self) -> float:
        return latency_quantile(self.latency_buckets, 0.50)

    @property
    def latency_p99(self) -> float:
        return latency_quantile(self.latency_buckets, 0.99)

    def describe(self) -> str:
        return (
            f"[{self.start:,.0f}s..{self.end:,.0f}s] "
            f"{self.queries} queries ({self.failures} failed: "
            f"{self.servfails} servfail / {self.timeouts} timeout), "
            f"dlv={self.dlv_queries} case2={self.case2_queries} "
            f"({len(self.leaked_domains)} domains), "
            f"cache-hit {self.cache_hit_rate:.1%}, "
            f"p50 {self.latency_p50:.3f}s p99 {self.latency_p99:.3f}s, "
            f"retries={self.retries} stale={self.stale_served} "
            f"shed={self.admission_rejected}"
        )


def empty_replay_window() -> ReplayWindow:
    """The identity of :func:`merge_replay_windows`."""
    return ReplayWindow(start=float("inf"), end=float("-inf"))


def merge_replay_windows(a: ReplayWindow, b: ReplayWindow) -> ReplayWindow:
    """Fold two windows: bounds extend, counts add, leak sets union."""
    return ReplayWindow(
        start=min(a.start, b.start),
        end=max(a.end, b.end),
        queries=a.queries + b.queries,
        failures=a.failures + b.failures,
        dlv_queries=a.dlv_queries + b.dlv_queries,
        case1_queries=a.case1_queries + b.case1_queries,
        case2_queries=a.case2_queries + b.case2_queries,
        leaked_domains=a.leaked_domains | b.leaked_domains,
        cache_hits=a.cache_hits + b.cache_hits,
        cache_misses=a.cache_misses + b.cache_misses,
        packets=a.packets + b.packets,
        wire_bytes=a.wire_bytes + b.wire_bytes,
        dropped=a.dropped + b.dropped,
        latency_sum=a.latency_sum + b.latency_sum,
        latency_max=max(a.latency_max, b.latency_max),
        sessions_started=a.sessions_started + b.sessions_started,
        sessions_completed=a.sessions_completed + b.sessions_completed,
        servfails=a.servfails + b.servfails,
        timeouts=a.timeouts + b.timeouts,
        retries=a.retries + b.retries,
        stale_served=a.stale_served + b.stale_served,
        admission_queued=a.admission_queued + b.admission_queued,
        admission_rejected=a.admission_rejected + b.admission_rejected,
        latency_buckets=merge_latency_buckets(
            a.latency_buckets, b.latency_buckets
        ),
    )


def _retag_trace(root: Span, trace_id: int) -> Span:
    """A copy of *root*'s subtree carrying *trace_id* (span ids and
    structure unchanged)."""
    return dataclasses.replace(
        root,
        trace_id=trace_id,
        attrs=dict(root.attrs),
        children=[_retag_trace(child, trace_id) for child in root.children],
    )


def renumber_traces(roots: Sequence[Span], start: int = 1) -> Tuple[Span, ...]:
    """Assign sequential trace ids from *start* in the given order.

    Shard tracers each number their traces from 1; after concatenating
    shards in index order, renumbering restores the global sequence a
    serial tracer would have produced, making the merged JSONL export
    deterministic."""
    return tuple(
        _retag_trace(root, start + offset) for offset, root in enumerate(roots)
    )


def empty_result() -> ExperimentResult:
    """The identity of :func:`merge_results`."""
    return ExperimentResult(
        names=[],
        leakage=empty_leakage_report(),
        overhead=empty_overhead(),
        status_counts={},
        rcode_counts={},
        authenticated_answers=0,
        capture=None,
        traces=(),
        metrics=None,
    )


def merge_results(a: ExperimentResult, b: ExperimentResult) -> ExperimentResult:
    """Merge two shard results in order (``a`` before ``b``).

    Associative with :func:`empty_result` as identity.  Ordered fields
    (names, capture, traces) concatenate; trace ids renumber so the
    merged export is stable; everything else folds through the monoid
    merges above.
    """
    if a.capture is None and b.capture is None:
        capture = None
    else:
        records: List = []
        if a.capture is not None:
            records.extend(a.capture)
        if b.capture is not None:
            records.extend(b.capture)
        capture = _CaptureSlice(records)
    return ExperimentResult(
        names=list(a.names) + list(b.names),
        leakage=merge_leakage_reports(a.leakage, b.leakage),
        overhead=merge_overhead(a.overhead, b.overhead),
        status_counts=_merge_count_dicts(a.status_counts, b.status_counts),
        rcode_counts=_merge_count_dicts(a.rcode_counts, b.rcode_counts),
        authenticated_answers=a.authenticated_answers + b.authenticated_answers,
        capture=capture,
        traces=renumber_traces(tuple(a.traces) + tuple(b.traces)),
        metrics=merge_metrics_snapshots(a.metrics, b.metrics),
    )


def merge_shard_results(
    pairs: Iterable[Tuple[int, ExperimentResult]]
) -> ExperimentResult:
    """Fold shard results into one, re-sorting by shard index first.

    The sort is what makes the merge invariant to completion order:
    whichever worker finishes first, the fold always runs in shard
    order, so float sums, name order, capture order, and trace
    numbering all match the serial reference exactly.
    """
    merged = empty_result()
    for _, result in sorted(pairs, key=lambda pair: pair[0]):
        merged = merge_results(merged, result)
    return merged


def result_fingerprint(result: ExperimentResult) -> Dict[str, Any]:
    """A canonical, comparison-friendly digest of a result.

    Everything the equivalence contract covers, reduced to plain
    comparable values: the summary line, the histograms, the capture
    rows, the metric snapshot, and the byte-exact trace JSONL.  Two
    results with equal fingerprints are indistinguishable to every
    analysis in this repository.
    """
    capture_rows = (
        [
            (
                record.time,
                record.src,
                record.dst,
                record.wire_size,
                record.dropped,
                record.qname.to_text() if record.qname is not None else None,
                record.qtype.name if record.qtype is not None else None,
            )
            for record in result.capture
        ]
        if result.capture is not None
        else []
    )
    return {
        "summary": result.summary(),
        "names": [name.to_text() for name in result.names],
        "status_counts": dict(sorted(result.status_counts.items())),
        "rcode_counts": dict(sorted(result.rcode_counts.items())),
        "authenticated": result.authenticated_answers,
        "leaked_domains": sorted(
            name.to_text() for name in result.leakage.leaked_domains
        ),
        "served_domains": sorted(
            name.to_text() for name in result.leakage.served_domains
        ),
        "capture": capture_rows,
        "metrics": result.metrics,
        "traces_jsonl": export_traces_jsonl(list(result.traces)),
    }


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

#: Parent-side handoff for the fork pool: workers inherit the task list
#: through fork instead of pickling it, so arbitrary closures (chaos
#: scenarios, universe factories) fan out without being picklable.
_ACTIVE_TASKS: Optional[Sequence[Callable[[], Any]]] = None


def _invoke_task(index: int) -> Any:
    assert _ACTIVE_TASKS is not None, "worker started outside run_tasks"
    return _ACTIVE_TASKS[index]()


def task_context(task: Any, index: int = -1) -> str:
    """A human-readable description of *task* for failure reports.

    Recognises the shapes this repository fans out: an explicit
    ``cell_context`` attribute wins (the matrix drivers set one); a
    :class:`_ShardTask` describes its shard and config; anything else
    falls back to its name.  The index is always included so a failure
    can be mapped back to its position in the task list.
    """
    prefix = f"cell {index}" if index >= 0 else "cell"
    explicit = getattr(task, "cell_context", None)
    if explicit:
        return f"{prefix} [{explicit}]"
    spec = getattr(task, "spec", None)
    config = getattr(task, "config", None)
    if spec is not None:
        parts = [f"shard={spec.index}", f"seed={spec.seed}"]
        if config is not None and hasattr(config, "describe"):
            parts.append(f"config='{config.describe()}'")
        return f"{prefix} [{' '.join(parts)}]"
    name = getattr(task, "__name__", None) or type(task).__name__
    return f"{prefix} [{name}]"


class TaskFailure(RuntimeError):
    """A fanned-out task failed, with the failing cell's context.

    ``context`` identifies the cell (shard index/seed/config for shard
    tasks, scenario × policy for matrix cells); ``detail`` carries the
    worker-side traceback text, so the parent's exception explains the
    child's failure instead of a bare pool traceback.
    """

    kind = "exception"

    def __init__(self, context: str, detail: str = ""):
        self.context = context
        self.detail = detail
        message = f"{context} failed"
        if detail:
            message += f":\n{detail.rstrip()}"
        super().__init__(message)

    def __reduce__(self):
        # RuntimeError's default reduce replays ``args`` (the rendered
        # message) into ``__init__``, which takes (context, detail) —
        # so a pickled failure either crashed on unpickle or lost its
        # cell context.  Failures cross process boundaries (pool pipes,
        # distributed workers), so reconstruct from the real fields.
        return (type(self), (self.context, self.detail))


class WorkerLost(TaskFailure):
    """A worker process died without reporting a result — killed,
    segfaulted, or ``os._exit`` — instead of hanging the pool."""

    kind = "worker-lost"

    def __init__(self, context: str, exitcode: Optional[int]):
        self.exitcode = exitcode
        if exitcode is not None and exitcode < 0:
            how = f"killed by signal {-exitcode}"
        else:
            how = f"exited with code {exitcode}"
        super().__init__(context, f"worker died without a result ({how})")

    def __reduce__(self):
        return (type(self), (self.context, self.exitcode))


class CellTimeout(TaskFailure):
    """A cell exceeded its wall-clock budget and its worker was
    terminated."""

    kind = "timeout"

    def __init__(self, context: str, timeout: float):
        self.timeout = timeout
        super().__init__(context, f"no result within {timeout:g}s; worker terminated")

    def __reduce__(self):
        return (type(self), (self.context, self.timeout))


class QuarantineError(RuntimeError):
    """Raised by keep-going executors used through the plain
    ``Executor.run`` protocol when cells were quarantined (protocol
    callers cannot consume partial result lists)."""

    def __init__(self, quarantined: Sequence["QuarantinedCell"]):
        self.quarantined = list(quarantined)
        lines = "\n".join(f"  - {cell.describe()}" for cell in quarantined)
        super().__init__(
            f"{len(self.quarantined)} cell(s) quarantined:\n{lines}"
        )


@dataclasses.dataclass
class QuarantinedCell:
    """A poison cell that failed every attempt and was set aside so the
    rest of the sweep could complete."""

    index: int
    context: str
    attempts: int
    error: str  # TaskFailure.kind: exception / worker-lost / timeout
    detail: str = ""

    def describe(self) -> str:
        return (
            f"{self.context}: {self.error} after {self.attempts} attempt(s)"
            + (f" — {self.detail.strip().splitlines()[-1]}" if self.detail else "")
        )


@dataclasses.dataclass
class ExecutorHealth:
    """Aggregate robustness counters for one fan-out.

    These are *operational* facts (how the run went), deliberately kept
    out of merged experiment results so a retried or resumed sweep stays
    byte-identical to an undisturbed one — the same physical/logical
    split the hot-path caches use for their hit counters.
    """

    cells_ok: int = 0
    retries: int = 0
    worker_lost: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    quarantined: int = 0

    def emit(self, metrics, prefix: str = "executor") -> None:
        """Feed the counters into a metrics registry (None is a no-op)."""
        if metrics is None:
            return
        metrics.inc(f"{prefix}.cells_ok", self.cells_ok)
        metrics.inc(f"{prefix}.retries", self.retries)
        metrics.inc(f"{prefix}.worker_lost", self.worker_lost)
        metrics.inc(f"{prefix}.worker_restarts", self.worker_restarts)
        metrics.inc(f"{prefix}.timeouts", self.timeouts)
        metrics.inc(f"{prefix}.quarantined", self.quarantined)

    def merge(self, other: "ExecutorHealth") -> "ExecutorHealth":
        return ExecutorHealth(
            cells_ok=self.cells_ok + other.cells_ok,
            retries=self.retries + other.retries,
            worker_lost=self.worker_lost + other.worker_lost,
            worker_restarts=self.worker_restarts + other.worker_restarts,
            timeouts=self.timeouts + other.timeouts,
            quarantined=self.quarantined + other.quarantined,
        )

    def describe(self) -> str:
        return (
            f"ok={self.cells_ok} retries={self.retries} "
            f"lost={self.worker_lost} restarts={self.worker_restarts} "
            f"timeouts={self.timeouts} quarantined={self.quarantined}"
        )


def backoff_schedule(
    retries: int, base: float = 0.05, factor: float = 2.0, cap: float = 2.0
) -> Tuple[float, ...]:
    """The deterministic retry-delay schedule: ``min(cap, base *
    factor**k)`` for the k-th retry.  A pure function of its arguments —
    no jitter — so a re-run retries on exactly the same schedule."""
    return tuple(min(cap, base * factor ** k) for k in range(max(0, retries)))


@dataclasses.dataclass(frozen=True)
class FaultInjection:
    """Failure-injection knobs for tests, docs, and the CI smoke job.

    ``crash_once_cells`` names task indices whose *first* attempt dies
    via ``os._exit`` (a hard worker loss — no exception, no result); a
    marker file under ``marker_dir`` records the attempt so the retry
    succeeds.  Requires process isolation (the executor's fork path):
    injected crashes inside an in-process run would kill the caller.
    """

    marker_dir: str
    crash_once_cells: FrozenSet[int] = frozenset()
    #: Exit code the crashed worker dies with (93 reads as "injected").
    exit_code: int = 93

    def wrap(
        self, index: int, task: Callable[[], T]
    ) -> Callable[[], T]:
        if index not in self.crash_once_cells:
            return task
        marker = os.path.join(self.marker_dir, f"crash-once-{index}")

        def injected() -> T:
            try:
                # O_EXCL: exactly one attempt crashes, every later one runs.
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return task()
            os.close(fd)
            os._exit(self.exit_code)

        injected.cell_context = task_context(task, index)  # type: ignore[attr-defined]
        return injected


def _child_main(index: int, conn) -> None:
    """Worker body: run one inherited task, ship the outcome, exit.

    ``os._exit`` skips the parent's atexit/finalizer state the fork
    inherited; the parent learns everything it needs from the pipe (or
    from its silence, which becomes :class:`WorkerLost`).
    """
    status = 0
    try:
        try:
            result = _ACTIVE_TASKS[index]()  # type: ignore[index]
            payload = ("ok", result)
        except BaseException:
            payload = ("error", traceback.format_exc())
            status = 1
        try:
            conn.send(payload)
        except Exception:
            status = 1
        conn.close()
    finally:
        os._exit(status)


class SerialExecutor:
    """The in-process fallback: runs every task in the calling process,
    in order.  Used for debugging, platforms without ``fork``, and as
    the reference arm of the equivalence tests."""

    workers = 1

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class FaultTolerantExecutor:
    """A crash-surviving executor: per-cell timeouts, bounded retries on
    a deterministic backoff schedule, dead-worker detection, and poison
    -cell quarantine.

    Process isolation (one forked worker per attempt, handed its task
    by index like the classic pool) is used whenever it is needed to
    contain a failure — more than one worker, a timeout to enforce, or
    ``isolate=True`` — and available on the platform.  Otherwise tasks
    run in-process with the same retry/quarantine semantics (minus
    crash containment, which only a separate process can provide).

    Failure handling:

    * a task exception is wrapped in :class:`TaskFailure` carrying the
      cell's context and the worker traceback;
    * a worker that dies without reporting (killed, ``os._exit``,
      segfault) becomes :class:`WorkerLost` — detected promptly from
      the closed result pipe, never a silent hang;
    * a cell that exceeds ``timeout`` has its worker terminated and
      becomes :class:`CellTimeout`;
    * each failed cell is retried up to ``retries`` times, delayed by
      :func:`backoff_schedule`; a cell that fails every attempt is
      **quarantined** (``keep_going=True``, the default) so healthy
      cells still complete, or raised immediately (``keep_going=False``,
      i.e. fail-fast).

    ``run_with_quarantine`` streams results to an ``on_result`` callback
    in the parent as cells complete — the hook the crash-safe store uses
    to commit cells incrementally, so a killed sweep keeps its finished
    work.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 2,
        keep_going: bool = True,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_cap: float = 2.0,
        isolate: Optional[bool] = None,
        poll_interval: float = 0.02,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.keep_going = keep_going
        self.backoff = backoff_schedule(
            retries, base=backoff_base, factor=backoff_factor, cap=backoff_cap
        )
        self.isolate = isolate
        self.poll_interval = poll_interval
        self._sleep = sleep
        self.health = ExecutorHealth()

    @staticmethod
    def fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _isolating(self, task_count: int) -> bool:
        if not self.fork_available():
            return False
        if self.isolate is not None:
            return self.isolate
        return self.workers > 1 and task_count > 1 or self.timeout is not None

    # -- Executor protocol -------------------------------------------------

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Protocol-compatible entry: the full result list or an
        exception.  Keep-going runs that quarantined cells raise
        :class:`QuarantineError` (a partial list would silently
        misalign with the task list)."""
        results, quarantined, _ = self.run_with_quarantine(tasks)
        if quarantined:
            raise QuarantineError(quarantined)
        return [result for result in results]  # type: ignore[misc]

    # -- full-fat API ------------------------------------------------------

    def run_with_quarantine(
        self,
        tasks: Sequence[Callable[[], T]],
        on_result: Optional[Callable[[int, T], None]] = None,
    ) -> Tuple[List[Optional[T]], List[QuarantinedCell], ExecutorHealth]:
        """Run *tasks*, surviving failures.

        Returns ``(results, quarantined, health)``: ``results`` is
        index-aligned with *tasks* (``None`` for quarantined cells),
        ``quarantined`` lists the poison cells, and ``health`` the
        run's robustness counters.  ``on_result`` fires in the parent
        as each cell's result arrives (before slower cells finish).
        With ``keep_going=False`` the first exhausted cell raises its
        typed failure instead of being quarantined.
        """
        health = ExecutorHealth()
        self.health = health
        results: List[Optional[T]] = [None] * len(tasks)
        quarantined: List[QuarantinedCell] = []
        if not tasks:
            return results, quarantined, health
        if self._isolating(len(tasks)):
            self._run_processes(tasks, results, quarantined, health, on_result)
        else:
            self._run_inline(tasks, results, quarantined, health, on_result)
        return results, quarantined, health

    # -- in-process path ---------------------------------------------------

    def _run_inline(self, tasks, results, quarantined, health, on_result):
        for index, task in enumerate(tasks):
            context = task_context(task, index)
            for attempt in range(self.retries + 1):
                try:
                    value = task()
                except Exception:
                    detail = traceback.format_exc()
                    if attempt < self.retries:
                        health.retries += 1
                        delay = self.backoff[attempt]
                        if delay > 0:
                            self._sleep(delay)
                        continue
                    failure = TaskFailure(context, detail)
                    self._fail(
                        index, context, attempt + 1, failure,
                        quarantined, health,
                    )
                    break
                else:
                    results[index] = value
                    health.cells_ok += 1
                    if on_result is not None:
                        on_result(index, value)
                    break

    # -- forked-worker path ------------------------------------------------

    def _run_processes(self, tasks, results, quarantined, health, on_result):
        global _ACTIVE_TASKS
        context_mp = multiprocessing.get_context("fork")
        previous = _ACTIVE_TASKS
        _ACTIVE_TASKS = tasks
        #: index -> (process, reader, deadline)
        running: Dict[int, Tuple[Any, Any, Optional[float]]] = {}
        #: (not_before, index) — retry delays without blocking the loop.
        pending: List[Tuple[float, int]] = [
            (0.0, index) for index in range(len(tasks))
        ]
        attempts = [0] * len(tasks)
        try:
            while pending or running:
                now = time.monotonic()
                # Fill free slots with due work.
                due = [item for item in pending if item[0] <= now]
                for item in sorted(due):
                    if len(running) >= self.workers:
                        break
                    pending.remove(item)
                    index = item[1]
                    attempts[index] += 1
                    reader, writer = context_mp.Pipe(duplex=False)
                    process = context_mp.Process(
                        target=_child_main, args=(index, writer)
                    )
                    process.start()
                    writer.close()
                    deadline = (
                        now + self.timeout if self.timeout is not None else None
                    )
                    running[index] = (process, reader, deadline)
                if not running:
                    # Everything pending is backing off; wait out the
                    # nearest retry without spinning.
                    wake = min(item[0] for item in pending)
                    self._sleep(max(0.0, min(wake - now, self.poll_interval)))
                    continue
                multiprocessing.connection.wait(
                    [reader for (_, reader, _) in running.values()],
                    timeout=self.poll_interval,
                )
                now = time.monotonic()
                for index in list(running):
                    process, reader, deadline = running[index]
                    failure: Optional[TaskFailure] = None
                    context = task_context(tasks[index], index)
                    if reader.poll():
                        try:
                            tag, payload = reader.recv()
                        except (EOFError, OSError):
                            process.join(timeout=1.0)
                            failure = WorkerLost(context, process.exitcode)
                        else:
                            if tag == "ok":
                                del running[index]
                                self._reap(process, reader)
                                results[index] = payload
                                health.cells_ok += 1
                                if on_result is not None:
                                    on_result(index, payload)
                                continue
                            failure = TaskFailure(context, payload)
                    elif not process.is_alive():
                        # Dead without a result: flush any race between
                        # is_alive and a final send before declaring loss.
                        if reader.poll(0):
                            continue  # handle on the next sweep
                        process.join(timeout=1.0)
                        failure = WorkerLost(context, process.exitcode)
                    elif deadline is not None and now >= deadline:
                        failure = CellTimeout(context, self.timeout)
                    else:
                        continue
                    del running[index]
                    self._reap(process, reader, force=True)
                    if isinstance(failure, WorkerLost):
                        health.worker_lost += 1
                    elif isinstance(failure, CellTimeout):
                        health.timeouts += 1
                    if attempts[index] <= self.retries:
                        health.retries += 1
                        if isinstance(failure, (WorkerLost, CellTimeout)):
                            health.worker_restarts += 1
                        delay = self.backoff[attempts[index] - 1]
                        pending.append((time.monotonic() + delay, index))
                    else:
                        self._fail(
                            index, context, attempts[index], failure,
                            quarantined, health,
                        )
        finally:
            _ACTIVE_TASKS = previous
            for process, reader, _ in running.values():
                self._reap(process, reader, force=True)

    def _fail(self, index, context, attempts, failure, quarantined, health):
        if not self.keep_going:
            raise failure
        health.quarantined += 1
        quarantined.append(
            QuarantinedCell(
                index=index,
                context=context,
                attempts=attempts,
                error=failure.kind,
                detail=failure.detail,
            )
        )

    @staticmethod
    def _reap(process, reader, force: bool = False) -> None:
        """Join a worker, escalating terminate → kill so no child is
        ever left running or zombied (the no-hung-processes contract)."""
        try:
            reader.close()
        except Exception:
            pass
        if force and process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - terminate() sufficed so far
            process.kill()
            process.join(timeout=5.0)


class MultiprocessingExecutor:
    """A ``fork``-based worker pool.

    Tasks are handed to workers by index: the child inherits the task
    list through fork, so only the index travels out and only the
    (picklable) result travels back.  On platforms without ``fork`` —
    or with ``workers <= 1`` — it degrades to in-process execution,
    which is safe because executors are output-invisible.

    Failure semantics (fail-fast, no retries): a task exception raises
    :class:`TaskFailure` naming the failing cell's (config, seed,
    shard) context with the worker traceback attached, and a worker
    killed mid-task raises a typed :class:`WorkerLost` instead of
    hanging the pool.  For retries, timeouts, and quarantine, use
    :class:`FaultTolerantExecutor` directly.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @staticmethod
    def fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if self.workers == 1 or len(tasks) <= 1 or not self.fork_available():
            return self._run_serial(tasks)
        engine = FaultTolerantExecutor(
            workers=min(self.workers, len(tasks)),
            timeout=None,
            retries=0,
            keep_going=False,
            isolate=True,
        )
        results, _, _ = engine.run_with_quarantine(tasks)
        return [result for result in results]  # type: ignore[misc]

    @staticmethod
    def _run_serial(tasks: Sequence[Callable[[], T]]) -> List[T]:
        results: List[T] = []
        for index, task in enumerate(tasks):
            try:
                results.append(task())
            except Exception as exc:
                raise TaskFailure(
                    task_context(task, index), traceback.format_exc()
                ) from exc
        return results


def resolve_executor(parallelism: int, executor=None):
    """The executor for a requested worker count: an explicit executor
    wins; otherwise ``parallelism > 1`` gets a fork pool and anything
    else the in-process fallback."""
    if executor is not None:
        return executor
    if parallelism > 1:
        return MultiprocessingExecutor(parallelism)
    return SerialExecutor()


def run_tasks(
    tasks: Sequence[Callable[[], T]],
    parallelism: int = 1,
    executor=None,
) -> List[T]:
    """Fan *tasks* out on the chosen executor, preserving input order
    in the returned list (the pool maps by index)."""
    return resolve_executor(parallelism, executor).run(tasks)


def run_tasks_fault_tolerant(
    tasks: Sequence[Callable[[], T]],
    parallelism: int = 1,
    executor=None,
    timeout: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    backoff_base: float = 0.05,
    on_result: Optional[Callable[[int, T], None]] = None,
) -> Tuple[List[Optional[T]], List[QuarantinedCell], ExecutorHealth]:
    """Fan *tasks* out with failure containment.

    The fault-tolerant analogue of :func:`run_tasks`: returns an
    index-aligned result list (``None`` where a cell was quarantined),
    the quarantine record, and the run's health counters.  An explicit
    :class:`FaultTolerantExecutor` is used as given; a legacy executor
    (:class:`SerialExecutor`, :class:`MultiprocessingExecutor`) runs the
    tasks with its own fail-fast semantics and reports empty quarantine.
    """
    if executor is None:
        executor = FaultTolerantExecutor(
            workers=max(parallelism, 1),
            timeout=timeout,
            retries=retries,
            keep_going=not fail_fast,
            backoff_base=backoff_base,
        )
    # Duck-typed, not isinstance: any executor offering the quarantine
    # protocol (FaultTolerantExecutor, distrib.DistributedExecutor)
    # gets streamed results and quarantine reporting.
    if hasattr(executor, "run_with_quarantine"):
        return executor.run_with_quarantine(tasks, on_result=on_result)
    results = executor.run(tasks)
    if on_result is not None:
        for index, result in enumerate(results):
            on_result(index, result)
    return (
        list(results),
        [],
        ExecutorHealth(cells_ok=len(results)),
    )


# ----------------------------------------------------------------------
# The sharded experiment runner
# ----------------------------------------------------------------------

def run_shard(
    factory: UniverseFactory,
    config: ResolverConfig,
    spec: ShardSpec,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
) -> ExperimentResult:
    """Run one shard in a fresh universe built from its sub-seed.

    A pure function of its arguments: the shard shares no state with
    its siblings, which is the whole determinism argument.
    """
    universe = factory(spec.seed)
    tracer = Tracer(universe.clock) if trace else None
    metrics = MetricsRegistry() if trace else None
    experiment = LeakageExperiment(
        universe,
        config,
        ptr_fraction=ptr_fraction,
        dnssec_ok_stub=dnssec_ok_stub,
        tracer=tracer,
        metrics=metrics,
    )
    return experiment.run(list(spec.names))


def run_sharded_experiment(
    factory: UniverseFactory,
    config: ResolverConfig,
    names: Sequence[Name],
    seed: int = 0,
    shards: Optional[int] = None,
    parallelism: int = 1,
    executor=None,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
) -> ExperimentResult:
    """Shard *names*, fan the shards out, merge deterministically.

    ``shards`` defaults to ``max(parallelism, 1)``; fixing it while
    varying ``parallelism``/``executor`` keeps the merged output
    byte-identical across worker counts (the shard plan, not the pool,
    defines the result).
    """
    shard_count = shards if shards is not None else max(parallelism, 1)
    plan = plan_shards(names, shard_count, seed)
    tasks = [
        _ShardTask(
            factory=factory,
            config=config,
            spec=spec,
            ptr_fraction=ptr_fraction,
            dnssec_ok_stub=dnssec_ok_stub,
            trace=trace,
        )
        for spec in plan
    ]
    results = run_tasks(tasks, parallelism=parallelism, executor=executor)
    return merge_shard_results(
        (spec.index, result) for spec, result in zip(plan, results)
    )


@dataclasses.dataclass(frozen=True)
class _ShardTask:
    """One shard as a picklable zero-argument callable (usable both by
    the fork pool's inheritance handoff and by spawn-style pickling
    when the factory and config pickle)."""

    factory: UniverseFactory
    config: ResolverConfig
    spec: ShardSpec
    ptr_fraction: float
    dnssec_ok_stub: bool
    trace: bool

    def __call__(self) -> ExperimentResult:
        return run_shard(
            self.factory,
            self.config,
            self.spec,
            ptr_fraction=self.ptr_fraction,
            dnssec_ok_stub=self.dnssec_ok_stub,
            trace=self.trace,
        )
