"""Active attacks against the DLV-aware signalling remedies, and
registry failure modes.

Paper Section 6.2.3 ("Attacks"): the TXT and Z-bit remedies are carried
in ordinary DNS responses, so a man-in-the-middle (or a zone poisoner)
can flip the signal:

* forcing the signal **on** (``dlv=0 → dlv=1`` or setting the Z bit)
  re-enables the leak the remedy was supposed to close;
* forcing it **off** suppresses legitimate look-aside queries, breaking
  validation for island-of-security zones (a downgrade/DoS).

The paper's suggested hardening is to *sign* the signalling response so
the resolver can verify it before acting; the resolver config exposes
``validate_txt_signal`` in :class:`HardenedTxtConfig` below.

Section 8.4 also documents DLV registry *outages* breaking validation;
:class:`OutageServer` simulates one.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from ..dnscore import Message, Name, RCode, RRType, RRset, TXT
from ..netsim import (
    DnsServer,
    FaultPlan,
    Network,
    Poisoner,
    ReferralBomber,
    SigBomber,
    Spoofer,
)


class TamperingProxy:
    """A man-in-the-middle in front of an authoritative server.

    Intercepts responses and rewrites the remedy signals.  Leaves all
    DNSSEC material untouched — which is exactly why signature checking
    defeats the TXT rewrite (the RRSIG no longer matches) but nothing
    protects the unsigned Z header bit.
    """

    def __init__(
        self,
        upstream: DnsServer,
        force_z_bit: Optional[bool] = None,
        rewrite_txt_signal: Optional[int] = None,
    ):
        self.upstream = upstream
        self.force_z_bit = force_z_bit
        self.rewrite_txt_signal = rewrite_txt_signal
        self.tampered_responses = 0

    def handle(self, query: Message) -> Message:
        response = self.upstream.handle(query)
        tampered = False
        flags = response.flags
        if self.force_z_bit is not None and flags.z != self.force_z_bit:
            flags = flags.replace(z=self.force_z_bit)
            tampered = True
        answer = response.answer
        if self.rewrite_txt_signal is not None:
            rewritten = []
            changed = False
            for rrset in answer:
                if rrset.rtype is RRType.TXT:
                    new_rdatas = []
                    for txt in rrset.rdatas:
                        signal = txt.dlv_signal()  # type: ignore[attr-defined]
                        if signal is not None and signal != self.rewrite_txt_signal:
                            new_rdatas.append(
                                TXT((f"dlv={self.rewrite_txt_signal}",))
                            )
                            changed = True
                        else:
                            new_rdatas.append(txt)
                    rrset = RRset(
                        rrset.name, rrset.rtype, rrset.ttl, tuple(new_rdatas)
                    )
                rewritten.append(rrset)
            if changed:
                answer = tuple(rewritten)
                tampered = True
        if not tampered:
            return response
        self.tampered_responses += 1
        return dataclasses.replace(response, flags=flags, answer=answer)


class OutageServer:
    """A dead (or overloaded) server: every query fails.

    Models the DLV registry outages the paper cites (Section 8.4,
    Osterweil's 2009 report): resolvers depending on look-aside trust
    anchors lose validation while the registry is down.
    """

    def __init__(self, rcode: RCode = RCode.SERVFAIL):
        self.rcode = rcode
        self.queries_seen = 0

    def handle(self, query: Message) -> Message:
        self.queries_seen += 1
        return query.make_response(rcode=self.rcode)


def interpose_tampering(
    network: Network,
    address: str,
    force_z_bit: Optional[bool] = None,
    rewrite_txt_signal: Optional[int] = None,
) -> TamperingProxy:
    """Put a :class:`TamperingProxy` in front of the server at *address*."""
    proxy = TamperingProxy(
        upstream=network.server_at(address),
        force_z_bit=force_z_bit,
        rewrite_txt_signal=rewrite_txt_signal,
    )
    network.replace(address, proxy)
    return proxy


def take_down(network: Network, address: str, rcode: RCode = RCode.SERVFAIL) -> OutageServer:
    """Replace the server at *address* with an outage.

    Thin legacy wrapper kept for backward compatibility; new code (and
    anything that needs outage *windows*, black holes, or brownouts)
    should script the fault on the network's plan via
    :func:`schedule_outage` instead of swapping servers by hand.
    """
    outage = OutageServer(rcode=rcode)
    network.replace(address, outage)
    return outage


def restore(network: Network, address: str, server: DnsServer) -> None:
    """Bring the original server back after an attack/outage."""
    network.replace(address, server)


# ----------------------------------------------------------------------
# Fault-plan front-ends (the first-class way to script failures)
# ----------------------------------------------------------------------


def schedule_outage(
    network: Network,
    address: str,
    start: float = 0.0,
    end: float = float("inf"),
    rcode: Optional[RCode] = RCode.SERVFAIL,
) -> FaultPlan:
    """Script an outage of *address* on the network's fault plan.

    ``rcode=None`` black-holes the address (queries time out);
    the default ``SERVFAIL`` reproduces the reported DLV registry
    outages (Section 8.4): the host answers, the service is broken.
    Returns the plan for further chaining.
    """
    return network.faults.add_outage(address, start=start, end=end, rcode=rcode)


def schedule_brownout(
    network: Network,
    address: str,
    start: float,
    end: float,
    extra_latency: float,
) -> FaultPlan:
    """Script added latency toward *address* during ``[start, end)``."""
    return network.faults.add_brownout(address, start, end, extra_latency)


def lift_faults(network: Network, address: str) -> FaultPlan:
    """Clear every scripted fault for *address*."""
    return network.faults.clear(address)


# ----------------------------------------------------------------------
# Adversary-persona deployment (byzantine fault injection)
# ----------------------------------------------------------------------
#
# Each helper places a seeded persona from :mod:`repro.netsim.adversary`
# at the topologically sensible spot in a Universe and returns it, so
# callers can read its counters and ask it to recognise its own poison.


def deploy_spoofer(universe, seed: int = 0, **kwargs) -> Spoofer:
    """Race forged answers against the hosting providers' responses —
    the terminal A/AAAA answers a Kaminsky attacker targets."""
    spoofer = Spoofer(seed=seed, **kwargs)
    return spoofer.deploy(universe.network.faults, *universe.hosting_addresses())


def deploy_poisoner(
    universe,
    victims: Sequence[Name],
    seed: int = 0,
    **kwargs,
) -> Poisoner:
    """Turn every TLD server into an on-path poisoner piggybacking
    out-of-bailiwick glue and DS records for *victims* onto its
    (otherwise genuine) referrals."""
    poisoner = Poisoner(victims=victims, seed=seed, **kwargs)
    return poisoner.deploy(
        universe.network.faults, *universe.tld_addresses().values()
    )


def deploy_referral_bomber(
    universe, mode: str = "fanout", seed: int = 0, **kwargs
) -> ReferralBomber:
    """NXNS-style amplification from the TLD servers.  ``loop`` mode
    gets real root glue so the upward referral actually loops."""
    if mode == "loop":
        kwargs.setdefault("loop_ns_address", universe.root_address)
    bomber = ReferralBomber(mode=mode, seed=seed, **kwargs)
    return bomber.deploy(
        universe.network.faults, *universe.tld_addresses().values()
    )


def deploy_sig_bomber(universe, seed: int = 0, **kwargs) -> SigBomber:
    """KeyTrap-style key/signature inflation on the hosting providers,
    where the signed leaf zones' DNSKEY and RRSIG material originates."""
    bomber = SigBomber(seed=seed, **kwargs)
    return bomber.deploy(universe.network.faults, *universe.hosting_addresses())
