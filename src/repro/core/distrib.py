"""Distributed sweep workers: lease/claim discipline over the store.

PR 6 made the sweep store crash-safe for *one* host: verified reads,
idempotent atomic commits, resume.  This module adds the other half
the ROADMAP names — a claim/lease discipline so **multiple worker
processes (or hosts sharing the store directory) drain one sweep's
cell set** without ever running the same cell twice on purpose, and
without losing a cell to a dead worker:

* a **lease file** (``<digest>.lease`` beside the cell) is created
  with ``O_EXCL`` — the filesystem arbitrates exactly one claimant —
  and carries the owner id, a **fencing token** (serial + unique
  nonce), and a **heartbeat** the owner refreshes from a background
  thread while the cell runs;
* workers **skip committed cells**, claim uncommitted ones, and **take
  over** cells whose lease heartbeat has expired: ``kill -9`` a worker
  mid-cell and a peer finishes its cell after the TTL.  Takeover is
  arbitrated by ``os.rename`` of the expired lease (exactly one
  renamer wins) followed by a fresh ``O_EXCL`` claim carrying a bumped
  token;
* a **zombie** (a worker that stalled past its TTL and lost its lease)
  detects the foreign fencing token before and after committing: its
  late commit is a *detected no-op* — the store's idempotent commits
  plus fingerprint comparison turn a racing duplicate into an asserted
  byte-identical re-commit, never a conflict;
* a **corrupt lease file** (torn write, bit-flip) reads as expired and
  is taken over immediately — a broken claim can delay a cell, never
  wedge the sweep;
* a cell that fails every local retry — or whose claim has been taken
  over more than ``max_takeovers`` times (it keeps killing its owners)
  — is **quarantined** via a marker file all workers see, so poison
  cells are skipped fleet-wide instead of ping-ponging between hosts.

Three entry points sit on top of the one drain loop:

* :class:`DistributedExecutor` — the ``Executor``-protocol face
  (``run`` / ``run_with_quarantine``), so :func:`~.store.run_stored_sweep`,
  the chaos/adversary matrices, and ``sharded_leakage_sweep`` gain
  lease-coordinated local workers for free;
* :func:`run_worker` — one independent worker process joining a sweep
  described by the store's **manifest** (``python -m repro work
  --store DIR --worker-id ID``), the multi-host path;
* :func:`run_distributed_sweep` — the coordinator: writes the
  manifest, spawns N local workers, monitors them, and merges — with
  a local fallback that finishes any cell the whole fleet failed to
  drain, so a dead fleet degrades to a slow sweep, never a lost one.

Everything operational (claims, takeovers, renewals, fenced commits,
duplicates) is counted in :class:`DistribStats` and emitted as
``distrib.*`` / ``executor.lease_*`` metrics and journal events; none
of it touches the merged :class:`~.experiment.ExperimentResult`, which
stays byte-identical to the serial reference — the same contract every
executor in :mod:`repro.core.parallel` honours.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..resolver import (
    ResolverConfig,
    broken_anchor_bind_config,
    correct_bind_config,
)
from .experiment import ExperimentResult
from .parallel import (
    ExecutorHealth,
    QuarantineError,
    QuarantinedCell,
    TaskFailure,
    WorkerLost,
    _ShardTask,
    backoff_schedule,
    merge_shard_results,
    plan_shards,
    task_context,
)
from .store import (
    LEASE_SUFFIX,
    QUARANTINE_SUFFIX,
    ResultStore,
    StoreError,
    SweepJournal,
    current_code_version,
    fingerprint_digest,
    shard_cell_key,
)

#: Lease/quarantine envelope schema version.
LEASE_FORMAT = 1
#: Default production lease TTL; tests and the smoke job shrink it.
DEFAULT_LEASE_TTL = 30.0
#: A cell whose lease has been taken over this many times is poison:
#: it keeps killing (or outliving) its owners.
DEFAULT_MAX_TAKEOVERS = 3

#: Named resolver-config builders a sweep manifest may reference.  A
#: manifest travels between hosts as JSON, so it names a constructor
#: from this allowlist instead of pickling arbitrary config objects.
CONFIG_BUILDERS: Dict[str, Callable[..., ResolverConfig]] = {
    "correct_bind_config": correct_bind_config,
    "broken_anchor_bind_config": broken_anchor_bind_config,
}

_NONCE_COUNTER = itertools.count(1)


class LeaseError(Exception):
    """A lease operation failed structurally (not a lost race)."""


class Fenced(Exception):
    """The lease now carries a foreign fencing token: this worker was
    presumed dead and its cell taken over.  Its pending commit must be
    treated as a detected no-op."""


# ----------------------------------------------------------------------
# Lease files
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Lease:
    """One claim on one cell, as serialised into its ``.lease`` file.

    ``token`` is the fencing serial (1 on a fresh claim, bumped on
    every takeover); ``nonce`` makes the fence unambiguous even when a
    corrupt lease forced the serial to restart — fencing compares
    ``(token, nonce)``, so two claims can never be confused.
    """

    cell: str
    owner: str
    nonce: str
    token: int
    ttl: float
    acquired: float
    heartbeat: float
    takeovers: int = 0

    def expired(self, now: float) -> bool:
        return now - self.heartbeat > self.ttl

    def same_claim(self, other: "Lease") -> bool:
        return self.token == other.token and self.nonce == other.nonce

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["format"] = LEASE_FORMAT
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        payload = json.loads(text)
        if payload.pop("format", None) != LEASE_FORMAT:
            raise LeaseError("unknown lease format")
        return cls(**payload)


def _new_nonce(owner: str) -> str:
    return f"{owner}:{os.getpid()}:{next(_NONCE_COUNTER)}"


def read_lease(path: Path) -> Optional[Lease]:
    """The lease at *path*, or ``None`` when the file exists but is
    corrupt (torn write, bit-flip, wrong format).  Raises
    ``FileNotFoundError`` when there is no lease at all — the two
    conditions are handled differently by claimants."""
    raw = Path(path).read_bytes()
    try:
        return Lease.from_json(raw.decode("utf-8"))
    except Exception:
        return None


def _write_lease_excl(path: Path, lease: Lease) -> bool:
    """Create *path* exclusively — the claim arbitration.  Returns
    False when somebody else's lease already exists.

    The content is written to a private temp file first and linked
    into place (``os.link`` fails with ``EEXIST`` exactly like
    ``O_EXCL``), so a concurrent reader can never observe a claim
    file mid-write — an empty just-created lease would read as
    "corrupt" and invite an immediate bogus takeover.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(lease.to_json())
        handle.flush()
        os.fsync(handle.fileno())
    try:
        os.link(temp, path)
        return True
    except FileExistsError:
        return False
    finally:
        os.unlink(temp)


def _rewrite_lease(path: Path, lease: Lease) -> None:
    """Atomically replace *path* (heartbeat refresh): same-directory
    temp file, fsync, ``os.replace``."""
    temp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(lease.to_json())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


@dataclasses.dataclass
class ClaimResult:
    """What :func:`claim_cell` got: the lease held by this worker plus
    how it was obtained (``fresh`` / ``takeover`` / ``corrupt``)."""

    lease: Lease
    how: str


def claim_cell(
    path: Path,
    cell: str,
    owner: str,
    ttl: float,
    clock: Callable[[], float] = time.time,
) -> Optional[ClaimResult]:
    """Try to claim *cell* by creating (or taking over) its lease.

    * no lease → ``O_EXCL`` create, token 1 (``fresh``);
    * live lease → ``None`` (someone else owns the cell);
    * expired lease → ``os.rename`` it aside (exactly one renamer
      wins), then ``O_EXCL`` create with ``token+1`` (``takeover``);
    * corrupt lease → same rename arbitration, token restarts at 1 but
      the nonce keeps the fence unambiguous (``corrupt``).
    """
    path = Path(path)
    now = clock()
    fresh = Lease(
        cell=cell,
        owner=owner,
        nonce=_new_nonce(owner),
        token=1,
        ttl=ttl,
        acquired=now,
        heartbeat=now,
    )
    if _write_lease_excl(path, fresh):
        return ClaimResult(fresh, "fresh")
    try:
        current = read_lease(path)
    except FileNotFoundError:
        # Raced with a release; the rescan loop will retry.
        return None
    if current is not None and not current.expired(now):
        return None
    # Dead or corrupt lease: arbitrate the takeover by renaming it
    # aside — os.rename succeeds for exactly one contender.
    stale = path.with_suffix(path.suffix + f".stale.{os.getpid()}")
    try:
        os.rename(path, stale)
    except FileNotFoundError:
        return None  # another taker won
    try:
        os.unlink(stale)
    except OSError:
        pass
    taken = dataclasses.replace(
        fresh,
        nonce=_new_nonce(owner),
        token=(current.token + 1) if current is not None else 1,
        takeovers=(current.takeovers + 1) if current is not None else 1,
        acquired=clock(),
        heartbeat=clock(),
    )
    if not _write_lease_excl(path, taken):
        # A fresh claimant slipped in between our rename and create.
        return None
    return ClaimResult(taken, "takeover" if current is not None else "corrupt")


def renew_lease(
    path: Path, lease: Lease, clock: Callable[[], float] = time.time
) -> Lease:
    """Refresh the heartbeat of a lease this worker holds.

    Verifies the fence first: if the file is gone or carries a foreign
    ``(token, nonce)``, the cell was taken over and :class:`Fenced`
    is raised — the worker must treat its in-flight result as a
    detected duplicate, and must not touch the new owner's lease.
    """
    try:
        current = read_lease(path)
    except FileNotFoundError:
        raise Fenced(f"lease for {lease.cell} disappeared")
    if current is None or not lease.same_claim(current):
        raise Fenced(f"lease for {lease.cell} was taken over")
    renewed = dataclasses.replace(lease, heartbeat=clock())
    _rewrite_lease(path, renewed)
    return renewed


def release_lease(path: Path, lease: Lease) -> bool:
    """Remove the lease if this worker still holds it.  Returns False
    (and leaves the file alone) when the claim was fenced away."""
    try:
        current = read_lease(path)
    except FileNotFoundError:
        return False
    if current is None or not lease.same_claim(current):
        return False
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


class _Heartbeat:
    """Background lease renewal while a cell runs.

    Renews every ``ttl / 4``; the first :class:`Fenced` stops the
    thread and latches :attr:`fenced` so the worker can detect, before
    committing, that it became a zombie.  A SIGKILLed worker's
    heartbeat dies with it — which is exactly how peers learn the cell
    is orphaned.
    """

    def __init__(
        self,
        path: Path,
        lease: Lease,
        clock: Callable[[], float] = time.time,
    ):
        self.path = Path(path)
        self.lease = lease
        self.clock = clock
        self.renewals = 0
        self.fenced = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-{lease.cell[:8]}", daemon=True
        )

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = max(self.lease.ttl / 4.0, 0.01)
        while not self._stop.wait(interval):
            try:
                self.lease = renew_lease(self.path, self.lease, self.clock)
                self.renewals += 1
            except Fenced:
                self.fenced = True
                return
            except OSError:  # pragma: no cover - transient fs trouble
                continue

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Stats and faults
# ----------------------------------------------------------------------

@dataclasses.dataclass
class DistribStats:
    """Operational counters for lease-coordinated work.  Emitted as
    ``distrib.*`` (and the lease subset as ``executor.lease_*``); never
    part of merged results."""

    claims: int = 0
    takeovers: int = 0
    corrupt_leases: int = 0
    renewals: int = 0
    fenced: int = 0
    released: int = 0
    committed: int = 0
    duplicates: int = 0
    conflicts: int = 0
    skipped_done: int = 0
    quarantined: int = 0

    def merge(self, other: "DistribStats") -> "DistribStats":
        return DistribStats(
            **{
                field.name: getattr(self, field.name)
                + getattr(other, field.name)
                for field in dataclasses.fields(self)
            }
        )

    def emit(self, metrics, prefix: str = "distrib") -> None:
        if metrics is None:
            return
        for field in dataclasses.fields(self):
            metrics.inc(f"{prefix}.{field.name}", getattr(self, field.name))
        # The lease vocabulary, under the executor namespace the health
        # counters already use.
        metrics.inc("executor.lease_claims", self.claims)
        metrics.inc("executor.lease_takeovers", self.takeovers)
        metrics.inc("executor.lease_renewals", self.renewals)
        metrics.inc("executor.lease_fenced", self.fenced)
        metrics.inc("executor.lease_released", self.released)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class WorkerFault:
    """Failure-injection knobs for one worker (tests / CI smoke).

    ``die_after_claims=N`` SIGKILLs the worker right after its Nth
    successful claim — mid-cell, lease held, heartbeat silenced: the
    canonical dead-worker-takeover scenario.  ``stall_after_claims=N``
    instead pauses for ``stall_seconds`` *without heartbeating* before
    running the cell — the canonical zombie: its lease expires, a peer
    takes over, and its late commit must be fenced.
    """

    die_after_claims: Optional[int] = None
    stall_after_claims: Optional[int] = None
    stall_seconds: float = 0.0


@dataclasses.dataclass
class WorkerReport:
    """What one worker did to the board."""

    worker_id: str
    cells_seen: int = 0
    stats: DistribStats = dataclasses.field(default_factory=DistribStats)
    quarantined: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "cells_seen": self.cells_seen,
            "stats": self.stats.as_dict(),
            "quarantined": self.quarantined,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }


def _write_marker(path: Path, payload: Dict[str, Any]) -> bool:
    """Atomically create a quarantine marker; first writer wins.
    Returns False when a marker already exists."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    try:
        os.link(temp, path)
        created = True
    except FileExistsError:
        created = False
    finally:
        os.unlink(temp)
    return created


def read_marker(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except Exception:
        return None


# ----------------------------------------------------------------------
# The drain loop
# ----------------------------------------------------------------------

def drain_board(
    board,
    worker_id: str,
    ttl: float = DEFAULT_LEASE_TTL,
    retries: int = 2,
    backoff_base: float = 0.05,
    poll_interval: float = 0.05,
    max_takeovers: int = DEFAULT_MAX_TAKEOVERS,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    fault: Optional[WorkerFault] = None,
    journal: Optional[SweepJournal] = None,
    metrics=None,
    on_commit: Optional[Callable[[str, Any], None]] = None,
) -> WorkerReport:
    """Drain every open cell on *board* under the lease discipline.

    *board* is duck-typed (``cells() / is_done(cid) / lease_path(cid) /
    quarantine_path(cid) / execute(cid) / commit(cid, result, fenced) /
    describe(cid)``); :class:`SweepBoard` drives the shared
    :class:`~.store.ResultStore`, :class:`ExecutorBoard` a private
    coordination directory.

    The loop rescans until every cell is committed or quarantined:
    committed cells are skipped, unclaimed cells claimed, live foreign
    leases respected, expired/corrupt ones taken over.  When a pass
    makes no progress (everything open is leased to live peers) the
    worker idles ``poll_interval`` and rescans — that idle-rescan is
    how a peer's death eventually hands its cell over.
    """
    report = WorkerReport(worker_id=worker_id)
    stats = report.stats
    backoff = backoff_schedule(retries, base=backoff_base)
    began = time.perf_counter()
    report.cells_seen = len(board.cells())

    def note(event: str, **fields: Any) -> None:
        if journal is not None:
            journal.record(event, worker=worker_id, **fields)

    while True:
        open_cells = [
            cid
            for cid in board.cells()
            if not board.is_done(cid)
            and not Path(board.quarantine_path(cid)).exists()
        ]
        if not open_cells:
            break
        progress = False
        for cid in open_cells:
            if board.is_done(cid):
                stats.skipped_done += 1
                progress = True
                continue
            if Path(board.quarantine_path(cid)).exists():
                continue
            lease_path = Path(board.lease_path(cid))
            claimed = claim_cell(lease_path, cid, worker_id, ttl, clock)
            if claimed is None:
                continue
            progress = True
            lease = claimed.lease
            stats.claims += 1
            if claimed.how == "takeover":
                stats.takeovers += 1
            elif claimed.how == "corrupt":
                stats.corrupt_leases += 1
                stats.takeovers += 1
            note(
                "claim",
                cell=cid,
                how=claimed.how,
                token=lease.token,
                takeovers=lease.takeovers,
            )
            if lease.takeovers > max_takeovers:
                # The cell has outlived too many owners: poison.
                payload = {
                    "format": LEASE_FORMAT,
                    "cell": cid,
                    "context": board.describe(cid),
                    "error": "takeover-limit",
                    "attempts": lease.takeovers,
                    "detail": (
                        f"lease taken over {lease.takeovers} times "
                        f"(limit {max_takeovers})"
                    ),
                    "owner": worker_id,
                }
                if _write_marker(board.quarantine_path(cid), payload):
                    stats.quarantined += 1
                    report.quarantined.append(payload)
                    note("quarantine", cell=cid, error="takeover-limit")
                release_lease(lease_path, lease)
                stats.released += 1
                continue
            if (
                fault is not None
                and fault.die_after_claims is not None
                and stats.claims >= fault.die_after_claims
            ):
                # Injected mid-cell death: lease held, heartbeat never
                # starts, the cell is orphaned until a peer's takeover.
                os.kill(os.getpid(), signal.SIGKILL)
            stalled = (
                fault is not None
                and fault.stall_after_claims is not None
                and stats.claims >= fault.stall_after_claims
            )
            heartbeat = _Heartbeat(lease_path, lease, clock)
            if stalled:
                # Zombie mode: hold the lease without heartbeating for
                # longer than the TTL, then proceed as if nothing
                # happened — the fence must catch us.
                sleep(fault.stall_seconds)
            else:
                heartbeat.start()
            failure_detail = None
            result = None
            try:
                for attempt in range(retries + 1):
                    try:
                        result = board.execute(cid)
                        failure_detail = None
                        break
                    except Exception:
                        failure_detail = traceback.format_exc()
                        if attempt < retries:
                            sleep(backoff[attempt])
            finally:
                heartbeat.stop()
            stats.renewals += heartbeat.renewals
            if failure_detail is not None:
                payload = {
                    "format": LEASE_FORMAT,
                    "cell": cid,
                    "context": board.describe(cid),
                    "error": "exception",
                    "attempts": retries + 1,
                    "detail": failure_detail,
                    "owner": worker_id,
                }
                if _write_marker(board.quarantine_path(cid), payload):
                    stats.quarantined += 1
                    report.quarantined.append(payload)
                    note("quarantine", cell=cid, error="exception")
                if release_lease(lease_path, lease):
                    stats.released += 1
                continue
            # The fence check: did we keep the claim the whole time?
            fenced = heartbeat.fenced
            if not fenced:
                try:
                    current = read_lease(lease_path)
                except FileNotFoundError:
                    current = None
                fenced = current is None or not lease.same_claim(current)
            outcome = board.commit(cid, result, fenced=fenced)
            if fenced:
                stats.fenced += 1
                note("fenced", cell=cid, outcome=outcome)
            if outcome == "skipped":
                # Fenced no-op: the cell was taken over mid-run and is
                # not committed yet — the write belongs to the new
                # owner, not this zombie.
                pass
            elif outcome == "committed":
                stats.committed += 1
                note("commit", cell=cid, token=lease.token)
                if on_commit is not None:
                    on_commit(cid, result)
            elif outcome == "duplicate":
                stats.duplicates += 1
                note("duplicate", cell=cid)
            else:  # conflict: same key, different bytes — impossible
                # for pure cells, so it is loudly quarantined.
                stats.conflicts += 1
                payload = {
                    "format": LEASE_FORMAT,
                    "cell": cid,
                    "context": board.describe(cid),
                    "error": "conflict",
                    "attempts": 1,
                    "detail": "racing commit produced different bytes",
                    "owner": worker_id,
                }
                if _write_marker(board.quarantine_path(cid), payload):
                    stats.quarantined += 1
                    report.quarantined.append(payload)
                note("conflict", cell=cid)
            if not fenced and release_lease(lease_path, lease):
                stats.released += 1
        if not progress:
            sleep(poll_interval)
    report.elapsed_seconds = time.perf_counter() - began
    stats.emit(metrics)
    return report


# ----------------------------------------------------------------------
# Boards
# ----------------------------------------------------------------------

class SweepBoard:
    """The cell set of one stored sweep, as a drainable board.

    Cells are :class:`~.store.CellKey` digests; completion is a
    committed (verifiable) cell in the shared :class:`ResultStore`;
    commit performs duplicate detection via the stored fingerprint
    digest — a racing byte-identical commit is a ``duplicate`` (benign,
    counted), a mismatch is a ``conflict`` (quarantined).
    """

    def __init__(self, store: ResultStore, cells: "List[SweepCell]"):
        self.store = store
        self._order = [cell.key.digest() for cell in cells]
        self._cells = {cell.key.digest(): cell for cell in cells}

    def cells(self) -> Sequence[str]:
        return self._order

    def is_done(self, cid: str) -> bool:
        return self.store.path_for(cid).exists()

    def lease_path(self, cid: str) -> Path:
        return self.store.lease_path_for(cid)

    def quarantine_path(self, cid: str) -> Path:
        return self.store.quarantine_path_for(cid)

    def describe(self, cid: str) -> str:
        cell = self._cells[cid]
        return (
            f"stage={cell.stage} shard={cell.key.shard_index}/"
            f"{cell.key.shard_count} seed={cell.key.seed} key={cid[:12]}"
        )

    def execute(self, cid: str) -> ExperimentResult:
        return self._cells[cid].task()

    def commit(self, cid: str, result: ExperimentResult, fenced: bool) -> str:
        cell = self._cells[cid]
        if self.is_done(cid):
            existing = self.store.load(cell.key)
            if existing is None:
                if fenced:
                    return "skipped"
                # The committed copy was corrupt; our fresh result
                # recommits over the quarantined corpse.
                self.store.commit(cell.key, result)
                return "committed"
            if fingerprint_digest(existing) == fingerprint_digest(result):
                return "duplicate"
            return "conflict"
        if fenced:
            # The fence says this claim was taken over: the commit
            # belongs to the new owner.  Detected no-op.
            return "skipped"
        self.store.commit(cell.key, result)
        return "committed"


@dataclasses.dataclass
class SweepCell:
    """One runnable cell of a manifest sweep: its key, its task, and
    which size-stage it belongs to."""

    key: Any  # CellKey
    task: Callable[[], ExperimentResult]
    stage: int


class ExecutorBoard:
    """A board over a private coordination directory, for
    :class:`DistributedExecutor`: results are pickled envelopes
    committed with link-if-absent, so the first finisher wins and a
    racing duplicate is detected by payload digest."""

    def __init__(self, root, tasks: Sequence[Callable[[], Any]]):
        self.root = Path(root)
        self.tasks = tasks
        for sub in ("leases", "results", "quarantine"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        self._ids = [f"task-{index:05d}" for index in range(len(tasks))]

    @staticmethod
    def index_of(cid: str) -> int:
        return int(cid.split("-")[-1])

    def cells(self) -> Sequence[str]:
        return self._ids

    def result_path(self, cid: str) -> Path:
        return self.root / "results" / f"{cid}.pkl"

    def lease_path(self, cid: str) -> Path:
        return self.root / "leases" / f"{cid}{LEASE_SUFFIX}"

    def quarantine_path(self, cid: str) -> Path:
        return self.root / "quarantine" / f"{cid}{QUARANTINE_SUFFIX}"

    def is_done(self, cid: str) -> bool:
        return self.result_path(cid).exists()

    def describe(self, cid: str) -> str:
        index = self.index_of(cid)
        return task_context(self.tasks[index], index)

    def execute(self, cid: str) -> Any:
        return self.tasks[self.index_of(cid)]()

    def commit(self, cid: str, result: Any, fenced: bool) -> str:
        if fenced and not self.is_done(cid):
            return "skipped"
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = json.dumps(
            {
                "format": LEASE_FORMAT,
                "cell": cid,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "payload_b64": base64.b64encode(payload).decode("ascii"),
            },
            sort_keys=True,
        ).encode("utf-8")
        destination = self.result_path(cid)
        temp = destination.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "wb") as handle:
            handle.write(envelope)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(temp, destination)
            return "committed"
        except FileExistsError:
            mine = hashlib.sha256(payload).hexdigest()
            existing = self.load_envelope(cid)
            theirs = existing.get("payload_sha256") if existing else None
            return "duplicate" if theirs == mine else "conflict"
        finally:
            os.unlink(temp)

    def load_envelope(self, cid: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(
                self.result_path(cid).read_text(encoding="utf-8")
            )
        except Exception:
            return None

    def load_result(self, cid: str) -> Tuple[bool, Any]:
        """Verified load: ``(ok, value)``; ``ok=False`` means missing
        or corrupt (the corrupt file is removed so workers re-run)."""
        envelope = self.load_envelope(cid)
        if envelope is None:
            return False, None
        try:
            payload = base64.b64decode(
                envelope["payload_b64"].encode("ascii"), validate=True
            )
            if (
                hashlib.sha256(payload).hexdigest()
                != envelope["payload_sha256"]
            ):
                raise ValueError("payload digest mismatch")
            return True, pickle.loads(payload)
        except Exception:
            try:
                os.unlink(self.result_path(cid))
            except OSError:
                pass
            return False, None


# ----------------------------------------------------------------------
# DistributedExecutor: the Executor-protocol face
# ----------------------------------------------------------------------

def _executor_worker_main(
    board: ExecutorBoard,
    worker_id: str,
    params: Dict[str, Any],
    fault: Optional[WorkerFault],
) -> None:
    """Forked worker body: drain the board, write a report, exit hard
    (``os._exit`` skips inherited finalizers, like the classic pool)."""
    status = 0
    try:
        report = drain_board(
            board,
            worker_id,
            ttl=params["ttl"],
            retries=params["retries"],
            backoff_base=params["backoff_base"],
            poll_interval=params["poll_interval"],
            max_takeovers=params["max_takeovers"],
            fault=fault,
        )
        report_path = board.root / "workers" / f"{worker_id}.json"
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(report.as_dict(), sort_keys=True), encoding="utf-8"
        )
    except BaseException:  # pragma: no cover - defensive
        status = 1
    finally:
        os._exit(status)


class DistributedExecutor:
    """Lease-coordinated local worker fleet behind the ``Executor``
    protocol.

    ``run_with_quarantine(tasks, on_result)`` forks ``workers``
    processes that drain an :class:`ExecutorBoard` under the lease
    discipline: a SIGKILLed worker's cell is taken over by a peer
    after ``ttl``, retries/quarantine work per cell exactly as on
    :class:`~.parallel.FaultTolerantExecutor`, and the parent streams
    verified results to ``on_result`` as they land — so
    ``run_stored_sweep`` commits cells incrementally no matter which
    worker produced them.  If the *entire* fleet dies with cells still
    open, the parent respawns replacements (up to ``max_restarts``)
    rather than hanging or losing the sweep.

    Without ``fork`` the same board is drained in-process — the lease
    files still arbitrate, so several independent *processes* pointed
    at one ``root`` cooperate even on spawn-only platforms.
    """

    def __init__(
        self,
        workers: int = 2,
        root: Optional[str] = None,
        ttl: float = 5.0,
        retries: int = 2,
        keep_going: bool = True,
        backoff_base: float = 0.05,
        poll_interval: float = 0.05,
        max_takeovers: int = DEFAULT_MAX_TAKEOVERS,
        max_restarts: Optional[int] = None,
        worker_faults: Optional[Dict[int, WorkerFault]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.root = root
        self.ttl = ttl
        self.retries = retries
        self.keep_going = keep_going
        self.backoff_base = backoff_base
        self.poll_interval = poll_interval
        self.max_takeovers = max_takeovers
        self.max_restarts = max_restarts if max_restarts is not None else workers
        self.worker_faults = dict(worker_faults or {})
        self.health = ExecutorHealth()
        self.stats = DistribStats()
        self.leaked_leases = 0

    @staticmethod
    def fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    # -- Executor protocol -------------------------------------------------

    def run(self, tasks: Sequence[Callable[[], Any]]) -> List[Any]:
        results, quarantined, _ = self.run_with_quarantine(tasks)
        if quarantined:
            raise QuarantineError(quarantined)
        return [result for result in results]

    # -- full-fat API ------------------------------------------------------

    def run_with_quarantine(
        self,
        tasks: Sequence[Callable[[], Any]],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> Tuple[List[Optional[Any]], List[QuarantinedCell], ExecutorHealth]:
        health = ExecutorHealth()
        self.health = health
        self.stats = DistribStats()
        results: List[Optional[Any]] = [None] * len(tasks)
        quarantined: List[QuarantinedCell] = []
        if not tasks:
            return results, quarantined, health
        own_root = self.root is None
        root = Path(self.root or tempfile.mkdtemp(prefix="repro-distrib-"))
        board = ExecutorBoard(root, tasks)
        params = {
            "ttl": self.ttl,
            "retries": self.retries,
            "backoff_base": self.backoff_base,
            "poll_interval": self.poll_interval,
            "max_takeovers": self.max_takeovers,
        }
        if not self.fork_available():
            report = drain_board(
                board,
                "w0",
                fault=self.worker_faults.get(0),
                **params,
            )
            self.stats = self.stats.merge(report.stats)
            self._collect(
                board, results, quarantined, health, on_result, set(), set()
            )
            self._finish(board, own_root, quarantined)
            return results, quarantined, health

        context_mp = multiprocessing.get_context("fork")
        processes: Dict[str, Any] = {}
        spawned = 0

        def spawn(index: int) -> None:
            nonlocal spawned
            worker_id = f"w{index}"
            process = context_mp.Process(
                target=_executor_worker_main,
                args=(board, worker_id, params, self.worker_faults.get(index)),
                name=f"distrib-{worker_id}",
            )
            process.start()
            processes[worker_id] = process
            spawned += 1

        for index in range(min(self.workers, len(tasks))):
            spawn(index)

        delivered: set = set()
        reported: set = set()
        restarts = 0
        try:
            while True:
                self._collect(
                    board, results, quarantined, health, on_result,
                    delivered, reported,
                )
                if not self.keep_going and quarantined:
                    raise self._failure_for(quarantined[0])
                open_cells = [
                    cid
                    for cid in board.cells()
                    if not board.is_done(cid)
                    and not board.quarantine_path(cid).exists()
                ]
                if not open_cells:
                    break
                live = 0
                for worker_id, process in list(processes.items()):
                    if process.is_alive():
                        live += 1
                        continue
                    process.join(timeout=0.1)
                    exitcode = process.exitcode
                    del processes[worker_id]
                    if exitcode not in (0, None):
                        health.worker_lost += 1
                if live == 0:
                    # The whole fleet is dead with work remaining:
                    # respawn rather than losing the sweep.
                    if restarts >= self.max_restarts:
                        for cid in open_cells:
                            index = board.index_of(cid)
                            cell = QuarantinedCell(
                                index=index,
                                context=board.describe(cid),
                                attempts=1,
                                error="worker-lost",
                                detail="every worker died; restart budget spent",
                            )
                            quarantined.append(cell)
                            health.quarantined += 1
                        break
                    restarts += 1
                    health.worker_restarts += 1
                    spawn(spawned)
                time.sleep(self.poll_interval)
            self._collect(
                board, results, quarantined, health, on_result,
                delivered, reported,
            )
            if not self.keep_going and quarantined:
                raise self._failure_for(quarantined[0])
        finally:
            for process in processes.values():
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5.0)
        self._aggregate_reports(board)
        self._finish(board, own_root, quarantined)
        return results, quarantined, health

    # -- internals ---------------------------------------------------------

    def _collect(
        self, board, results, quarantined, health, on_result,
        delivered: set, reported: set,
    ) -> None:
        for cid in board.cells():
            index = board.index_of(cid)
            if cid not in delivered and board.is_done(cid):
                ok, value = board.load_result(cid)
                if not ok:
                    continue  # corrupt envelope removed; workers re-run
                delivered.add(cid)
                results[index] = value
                health.cells_ok += 1
                if on_result is not None:
                    on_result(index, value)
            if cid not in reported and board.quarantine_path(cid).exists():
                marker = read_marker(board.quarantine_path(cid)) or {}
                reported.add(cid)
                cell = QuarantinedCell(
                    index=index,
                    context=marker.get("context", board.describe(cid)),
                    attempts=marker.get("attempts", 1),
                    error=marker.get("error", "exception"),
                    detail=marker.get("detail", ""),
                )
                quarantined.append(cell)
                health.quarantined += 1

    @staticmethod
    def _failure_for(cell: QuarantinedCell) -> TaskFailure:
        if cell.error == "worker-lost":
            return WorkerLost(cell.context, None)
        return TaskFailure(cell.context, cell.detail)

    def _aggregate_reports(self, board: ExecutorBoard) -> None:
        for path in sorted((board.root / "workers").glob("*.json")):
            payload = read_marker(path)
            if payload is None:
                continue
            stats = DistribStats(**payload.get("stats", {}))
            self.stats = self.stats.merge(stats)
        self.health.retries += self.stats.takeovers

    def _finish(self, board: ExecutorBoard, own_root: bool, quarantined) -> None:
        self.leaked_leases = len(list((board.root / "leases").glob("*")))
        if own_root and not quarantined and self.leaked_leases == 0:
            import shutil

            shutil.rmtree(board.root, ignore_errors=True)

    def emit(self, metrics) -> None:
        """Feed both counter families into a metrics registry."""
        self.health.emit(metrics, prefix="executor")
        self.stats.emit(metrics, prefix="distrib")


# ----------------------------------------------------------------------
# The sweep manifest: how independent hosts learn the cell set
# ----------------------------------------------------------------------

MANIFEST_NAME = "manifest.json"


@dataclasses.dataclass(frozen=True)
class SweepManifest:
    """Everything a worker needs to reconstruct a sweep's cell set.

    Travels as JSON inside the store, so independent processes (and
    hosts mounting the same directory) derive the *same* cell keys
    from the same inputs.  Configs are named from
    :data:`CONFIG_BUILDERS` plus JSON-safe field overrides — a
    manifest never pickles code.
    """

    sizes: Tuple[int, ...]
    filler_count: int
    seed: int = 2016
    shards: int = 2
    config_name: str = "correct_bind_config"
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    ptr_fraction: float = 0.01
    dnssec_ok_stub: bool = True
    trace: bool = False
    kind: str = "leakage-shard"
    code_version: str = dataclasses.field(default_factory=current_code_version)

    def config(self) -> ResolverConfig:
        try:
            builder = CONFIG_BUILDERS[self.config_name]
        except KeyError:
            raise StoreError(
                f"manifest names unknown config {self.config_name!r} "
                f"(known: {sorted(CONFIG_BUILDERS)})"
            )
        return builder(**dict(self.config_overrides))

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["format"] = LEASE_FORMAT
        payload["sizes"] = list(self.sizes)
        payload["config_overrides"] = [
            list(pair) for pair in self.config_overrides
        ]
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SweepManifest":
        payload = json.loads(text)
        if payload.pop("format", None) != LEASE_FORMAT:
            raise StoreError("unknown manifest format")
        payload["sizes"] = tuple(payload["sizes"])
        payload["config_overrides"] = tuple(
            (key, value) for key, value in payload.get("config_overrides", [])
        )
        return cls(**payload)

    def cells(self) -> List[SweepCell]:
        """The sweep's full cell list, stage by stage, in shard order —
        identical on every host because it derives from the manifest
        alone."""
        from .setup import standard_universe_factory, standard_workload

        config = self.config()
        cells: List[SweepCell] = []
        for stage, size in enumerate(sorted(self.sizes)):
            factory = standard_universe_factory(
                size, filler_count=self.filler_count, workload_seed=self.seed
            )
            names = standard_workload(size, seed=self.seed).names(size)
            for spec in plan_shards(names, self.shards, self.seed):
                key = shard_cell_key(
                    factory,
                    config,
                    spec,
                    shard_count=self.shards,
                    seed=self.seed,
                    ptr_fraction=self.ptr_fraction,
                    dnssec_ok_stub=self.dnssec_ok_stub,
                    trace=self.trace,
                    kind=self.kind,
                    code_version=self.code_version,
                )
                task = _ShardTask(
                    factory=factory,
                    config=config,
                    spec=spec,
                    ptr_fraction=self.ptr_fraction,
                    dnssec_ok_stub=self.dnssec_ok_stub,
                    trace=self.trace,
                )
                cells.append(SweepCell(key=key, task=task, stage=stage))
        return cells


def write_sweep_manifest(store: ResultStore, manifest: SweepManifest) -> Path:
    """Publish *manifest* into the store, atomically.

    Idempotent for an identical manifest; a *different* manifest for a
    store that already has one is refused — one store, one sweep
    definition (make a new store for a new sweep)."""
    path = store.root / MANIFEST_NAME
    text = manifest.to_json()
    if path.exists():
        existing = path.read_text(encoding="utf-8")
        if existing == text:
            return path
        raise StoreError(
            f"store {store.root} already holds a different sweep manifest"
        )
    temp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


def load_sweep_manifest(store: ResultStore) -> SweepManifest:
    path = store.root / MANIFEST_NAME
    if not path.exists():
        raise StoreError(
            f"store {store.root} has no {MANIFEST_NAME}; run the "
            "coordinator (repro sweep --distributed) or "
            "write_sweep_manifest() first"
        )
    try:
        return SweepManifest.from_json(path.read_text(encoding="utf-8"))
    except StoreError:
        raise
    except Exception as exc:
        raise StoreError(f"unreadable sweep manifest at {path}: {exc}")


# ----------------------------------------------------------------------
# Workers and the coordinator
# ----------------------------------------------------------------------

def run_worker(
    store_root,
    worker_id: str,
    ttl: float = DEFAULT_LEASE_TTL,
    retries: int = 2,
    backoff_base: float = 0.05,
    poll_interval: float = 0.05,
    max_takeovers: int = DEFAULT_MAX_TAKEOVERS,
    fault: Optional[WorkerFault] = None,
    metrics=None,
) -> WorkerReport:
    """Join the sweep described by the store's manifest as one worker.

    This is the body of ``python -m repro work --store DIR
    --worker-id ID``: load the manifest, derive the cell set, and
    drain it under the lease discipline until every cell is committed
    (by anyone) or quarantined.  Safe to run any number of times, from
    any number of processes or hosts sharing the directory.
    """
    store = ResultStore(store_root)
    manifest = load_sweep_manifest(store)
    board = SweepBoard(store, manifest.cells())
    report = drain_board(
        board,
        worker_id,
        ttl=ttl,
        retries=retries,
        backoff_base=backoff_base,
        poll_interval=poll_interval,
        max_takeovers=max_takeovers,
        fault=fault,
        journal=store.journal(),
        metrics=metrics,
    )
    if metrics is not None:
        store.stats.emit(metrics, prefix="store")
    return report


@dataclasses.dataclass
class DistribOutcome:
    """What a distributed sweep produced: per-stage merged results
    plus the operational story (reuse/run arithmetic, quarantine,
    worker exit codes)."""

    stage_results: List[ExperimentResult]
    cells_total: int
    cells_reused: int
    cells_rerun: int
    quarantined: List[QuarantinedCell]
    worker_exits: Dict[str, Optional[int]] = dataclasses.field(
        default_factory=dict
    )
    stats: DistribStats = dataclasses.field(default_factory=DistribStats)

    @property
    def complete(self) -> bool:
        return not self.quarantined

    @property
    def result(self) -> ExperimentResult:
        """All stages merged (byte-identical to a serial run of the
        concatenated stage plans)."""
        merged = self.stage_results[0]
        from .parallel import merge_results

        for part in self.stage_results[1:]:
            merged = merge_results(merged, part)
        return merged

    def describe(self) -> str:
        return (
            f"distributed sweep cells={self.cells_total} "
            f"reused={self.cells_reused} rerun={self.cells_rerun} "
            f"quarantined={len(self.quarantined)}"
        )


def collect_sweep(
    store: ResultStore,
    manifest: Optional[SweepManifest] = None,
    run_missing: bool = True,
    journal: Optional[SweepJournal] = None,
) -> DistribOutcome:
    """Merge a (possibly partially) drained sweep from the store.

    Committed cells are loaded with full verification; quarantine
    markers become :class:`QuarantinedCell` entries; anything missing
    and unmarked is run *locally* when ``run_missing`` (the
    coordinator's fallback: a fleet that died mid-sweep degrades to a
    slower sweep, never a lost one) and committed back.
    """
    manifest = manifest or load_sweep_manifest(store)
    cells = manifest.cells()
    stage_count = max(cell.stage for cell in cells) + 1 if cells else 0
    stage_pairs: List[List[Tuple[int, ExperimentResult]]] = [
        [] for _ in range(stage_count)
    ]
    quarantined: List[QuarantinedCell] = []
    reused = rerun = 0
    for cell in cells:
        digest = cell.key.digest()
        result = store.load(cell.key)
        if result is None:
            marker_path = store.quarantine_path_for(digest)
            marker = read_marker(marker_path)
            if marker is not None:
                quarantined.append(
                    QuarantinedCell(
                        index=cell.key.shard_index,
                        context=marker.get("context", digest[:12]),
                        attempts=marker.get("attempts", 1),
                        error=marker.get("error", "exception"),
                        detail=marker.get("detail", ""),
                    )
                )
                continue
            if not run_missing:
                continue
            result = cell.task()
            store.commit(cell.key, result)
            if journal is not None:
                journal.record(
                    "commit", worker="coordinator", cell=digest
                )
            rerun += 1
        else:
            reused += 1
        stage_pairs[cell.stage].append((cell.key.shard_index, result))
    stage_results = [merge_shard_results(pairs) for pairs in stage_pairs]
    return DistribOutcome(
        stage_results=stage_results,
        cells_total=len(cells),
        cells_reused=reused,
        cells_rerun=rerun,
        quarantined=quarantined,
    )


def _worker_command(
    store_root, worker_id: str, ttl: float, retries: int,
    poll_interval: float,
) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "work",
        "--store",
        str(store_root),
        "--worker-id",
        worker_id,
        "--ttl",
        str(ttl),
        "--retries",
        str(retries),
        "--poll-interval",
        str(poll_interval),
        "--json",
    ]


def spawn_worker_process(
    store_root, worker_id: str, ttl: float = DEFAULT_LEASE_TTL,
    retries: int = 2, poll_interval: float = 0.05,
    extra_args: Sequence[str] = (),
) -> subprocess.Popen:
    """Start one ``repro work`` worker as a real child process (its own
    interpreter — the honest multi-process path the coordinator and
    the chaos tests use)."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    command = _worker_command(
        store_root, worker_id, ttl, retries, poll_interval
    ) + list(extra_args)
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def run_distributed_sweep(
    store_root,
    workers: int = 2,
    sizes: Sequence[int] = (100,),
    filler_count: int = 20000,
    seed: int = 2016,
    shards: Optional[int] = None,
    ttl: float = DEFAULT_LEASE_TTL,
    retries: int = 2,
    poll_interval: float = 0.05,
    config_name: str = "correct_bind_config",
    metrics=None,
    worker_timeout: float = 3600.0,
) -> DistribOutcome:
    """The coordinator: manifest → N worker processes → merge.

    Spawns ``workers`` local ``repro work`` processes against
    *store_root* and waits for the cell set to drain.  Workers that
    die are *not* respawned — their cells are taken over by surviving
    peers; if every worker dies, :func:`collect_sweep`'s local
    fallback finishes the remainder in this process.  The merged
    result is byte-identical to the serial reference either way.
    """
    store = ResultStore(store_root)
    manifest = SweepManifest(
        sizes=tuple(sizes),
        filler_count=filler_count,
        seed=seed,
        shards=shards if shards is not None else max(workers, 1),
        config_name=config_name,
    )
    write_sweep_manifest(store, manifest)
    journal = store.journal()
    journal.record(
        "distrib-start",
        workers=workers,
        sizes=list(manifest.sizes),
        shards=manifest.shards,
        seed=seed,
    )
    processes = {
        f"w{index}": spawn_worker_process(
            store_root, f"w{index}", ttl=ttl, retries=retries,
            poll_interval=poll_interval,
        )
        for index in range(workers)
    }
    exits: Dict[str, Optional[int]] = {}
    deadline = time.monotonic() + worker_timeout
    for worker_id, process in processes.items():
        remaining = max(1.0, deadline - time.monotonic())
        try:
            process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)
        exits[worker_id] = process.returncode
        # Drain pipes so children are fully reaped.
        if process.stdout is not None:
            process.stdout.close()
        if process.stderr is not None:
            process.stderr.close()
    outcome = collect_sweep(store, manifest, journal=journal)
    outcome.worker_exits = exits
    journal.record(
        "distrib-end",
        reused=outcome.cells_reused,
        rerun=outcome.cells_rerun,
        quarantined=len(outcome.quarantined),
        exits={k: v for k, v in exits.items()},
    )
    if metrics is not None:
        metrics.inc("distrib.workers_spawned", workers)
        metrics.inc(
            "distrib.workers_lost",
            sum(1 for code in exits.values() if code not in (0, 3)),
        )
        store.stats.emit(metrics, prefix="store")
    return outcome
