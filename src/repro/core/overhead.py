"""Overhead metrics and baseline-vs-remedy comparison (Table 5/Fig 10).

The paper evaluates its remedies with three metrics (Section 6.2.3):

* **response time** (seconds) — in the simulation, the elapsed simulated
  time of the run (one RTT per query, sequential, as in the paper's
  scripted `dig` loop);
* **traffic volume** (MB) — total bytes of all queries and responses;
* **number of issued queries**.

:class:`OverheadComparison` reproduces the Table 5 layout: baseline,
overhead (delta), and ratio for each metric.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..dnscore import RRType


@dataclasses.dataclass(frozen=True)
class OverheadMetrics:
    """The three Table 5 metrics plus the query-type mix (Table 4)."""

    response_time: float
    traffic_bytes: int
    queries_issued: int
    query_type_counts: Dict[RRType, int]

    @property
    def traffic_mb(self) -> float:
        return self.traffic_bytes / 1_000_000.0

    @classmethod
    def from_capture(cls, capture, response_time: float) -> "OverheadMetrics":
        return cls(
            response_time=response_time,
            traffic_bytes=capture.total_bytes(),
            queries_issued=capture.query_count(),
            query_type_counts=dict(capture.query_type_histogram()),
        )

    def type_count(self, rtype: RRType) -> int:
        return self.query_type_counts.get(rtype, 0)


@dataclasses.dataclass(frozen=True)
class SignalingCost:
    """The packet cost of a signalling mechanism within one run.

    The paper's Table 5 accounting: the *overhead* of the TXT remedy is
    the TXT queries and responses themselves — their round-trip times,
    their bytes, and their count — added on top of the original traffic.
    """

    seconds: float
    bytes: int
    exchanges: int

    @classmethod
    def of_query_type(
        cls, capture, rtype: RRType, src: "str | None" = None
    ) -> "SignalingCost":
        """Measure the cost of all (query, response) exchanges of one
        query type in a capture, optionally restricted to queries issued
        by *src*."""
        seconds = 0.0
        total_bytes = 0
        exchanges = 0
        pending: Dict[int, object] = {}
        for record in capture:
            if record.qtype is not rtype:
                continue
            if record.is_query:
                if src is not None and record.src != src:
                    continue
                pending[(record.message.message_id, record.dst)] = record
                total_bytes += record.wire_size
            else:
                query = pending.pop((record.message.message_id, record.src), None)
                if query is not None:
                    seconds += record.time - query.time  # type: ignore[attr-defined]
                    total_bytes += record.wire_size
                    exchanges += 1
        return cls(seconds=seconds, bytes=total_bytes, exchanges=exchanges)


@dataclasses.dataclass(frozen=True)
class MetricComparison:
    """Baseline / overhead / ratio for one metric (one Table 5 cell
    group)."""

    baseline: float
    total: float

    @property
    def overhead(self) -> float:
        return self.total - self.baseline

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return 0.0
        return self.overhead / self.baseline


@dataclasses.dataclass(frozen=True)
class OverheadComparison:
    """One Table 5 row: a remedy run against its baseline run."""

    label: str
    response_time: MetricComparison
    traffic: MetricComparison
    queries: MetricComparison

    @classmethod
    def between(
        cls, label: str, baseline: OverheadMetrics, remedy: OverheadMetrics
    ) -> "OverheadComparison":
        return cls(
            label=label,
            response_time=MetricComparison(
                baseline.response_time, remedy.response_time
            ),
            traffic=MetricComparison(
                float(baseline.traffic_bytes), float(remedy.traffic_bytes)
            ),
            queries=MetricComparison(
                float(baseline.queries_issued), float(remedy.queries_issued)
            ),
        )

    def row(self) -> Dict[str, float]:
        """The Table 5 row values (times in s, traffic in MB)."""
        return {
            "time_baseline_s": self.response_time.baseline,
            "time_overhead_s": self.response_time.overhead,
            "time_ratio": self.response_time.ratio,
            "traffic_baseline_mb": self.traffic.baseline / 1e6,
            "traffic_overhead_mb": self.traffic.overhead / 1e6,
            "traffic_ratio": self.traffic.ratio,
            "queries_baseline": self.queries.baseline,
            "queries_overhead": self.queries.overhead,
            "queries_ratio": self.queries.ratio,
        }
