"""Crash-safe, content-addressed sweep result store with resume.

The paper's headline numbers come from sweeping scenario matrices
(configs × faults × adversaries × remedies × seeds).  Per-cell cost is
now small, but aggregate cost is not — and a sweep that dies at cell
980 of 1000 should not owe the first 979 again.  This module makes
"handle every scenario you can imagine" an *accumulation* problem:

* :class:`CellKey` captures the **input side** of a cell — code
  version, config digest, workload digest, base seed, and the shard
  plan entry (index, count, derived sub-seed) — canonicalised and
  SHA-256'd into a content address;
* :class:`ResultStore` commits each cell's :class:`ExperimentResult`
  under that address with a **write-to-temp + atomic rename** (a crash
  mid-commit leaves either the complete previous state or a stray
  ``*.tmp`` that ``gc`` removes — never a torn cell);
* reads are **fingerprint-verified**: the committed envelope stores the
  SHA-256 of the payload *and* of the result's canonical
  :func:`~repro.core.parallel.result_fingerprint`; both are recomputed
  at load, so a truncated or bit-flipped cell is detected, quarantined
  to ``*.corrupt``, and transparently re-run — never silently reused;
* :class:`SweepJournal` appends one JSON line per store event (reuse,
  commit, corruption, quarantine) with flush+fsync, tolerating a torn
  final line after a crash;
* :func:`run_stored_sweep` stitches it together with the
  fault-tolerant executor from :mod:`repro.core.parallel`: completed
  cells commit **as they finish** (so SIGTERM mid-sweep keeps them),
  a resumed sweep loads every committed cell and re-runs only missing,
  corrupt, or previously quarantined ones, and the merged result is
  **byte-identical** to an uninterrupted run — enforced by the same
  fingerprint machinery that validates the parallel merge.

Store layout::

    <root>/
      journal.jsonl            # append-only sweep event journal
      ab/abcdef…123.cell       # JSON envelope, addressed by key digest
      ab/abcdef…123.cell.corrupt   # quarantined by a failed verify

Operational counters (cells reused / re-run, corruption detected,
executor retries/restarts/quarantine) are deliberately kept *out* of
the merged experiment result — they describe how the run went, not
what it computed — so a resumed sweep fingerprints identically to a
fresh one.  They surface through :class:`SweepOutcome`, the journal,
an optional metrics registry, and ``python -m repro store``.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import functools
import hashlib
import json
import os
import pickle
import signal
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import __version__
from ..dnscore import Name
from ..resolver import ResolverConfig
from .experiment import ExperimentResult
from .parallel import (
    ExecutorHealth,
    FaultInjection,
    FaultTolerantExecutor,
    QuarantinedCell,
    ShardSpec,
    UniverseFactory,
    _ShardTask,
    plan_shards,
    merge_shard_results,
    result_fingerprint,
)

#: Envelope schema version; bump on incompatible layout changes.
STORE_FORMAT = 1

#: Suffixes the distributed layer (:mod:`repro.core.distrib`) parks
#: beside cells: a worker's claim, and a cross-worker poison marker.
LEASE_SUFFIX = ".lease"
QUARANTINE_SUFFIX = ".quarantine"

#: A lease file untouched for this long is unquestionably dead no
#: matter what TTL its sweep ran with; :meth:`ResultStore.gc` reclaims
#: it even when it can't parse the recorded TTL.
GC_LEASE_GRACE_SECONDS = 3600.0


class StoreError(Exception):
    """A store operation failed (not a corruption — those are handled)."""


# ----------------------------------------------------------------------
# Canonical digests
# ----------------------------------------------------------------------

def _canonicalize(value: Any) -> Any:
    """Reduce *value* to JSON-safe plain data, deterministically.

    Dataclasses carry their qualified name so two different config
    classes with equal fields cannot collide; enums reduce to their
    value; sets sort; callables reduce to their qualified name (with
    ``functools.partial`` flattened, which covers the repository's
    picklable universe factories).
    """
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                field.name: _canonicalize(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, Name):
        return {"__name__": value.to_text()}
    if isinstance(value, functools.partial):
        return {
            "__partial__": _canonicalize(value.func),
            "args": [_canonicalize(item) for item in value.args],
            "kwargs": {
                key: _canonicalize(value.keywords[key])
                for key in sorted(value.keywords)
            },
        }
    if callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__name__)
        return {"__callable__": f"{module}.{qualname}"}
    if isinstance(value, dict):
        return {
            str(key): _canonicalize(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, (set, frozenset)):
        return sorted(_canonicalize(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON for hashing: canonicalised, sorted keys,
    compact separators."""
    return json.dumps(
        _canonicalize(value), sort_keys=True, separators=(",", ":")
    )


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def config_digest(config: ResolverConfig) -> str:
    """Content digest of a resolver configuration (every field, via the
    dataclass canonicalisation — two configs digest equal iff their
    fields are equal)."""
    return stable_digest(config)


def names_digest(names: Sequence[Name]) -> str:
    """Content digest of an ordered name list."""
    text = "\n".join(name.to_text() for name in names)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def factory_digest(factory: UniverseFactory) -> str:
    """Content digest of a universe factory's *identity*.

    ``functools.partial`` factories (the shape
    :func:`~repro.core.setup.standard_universe_factory` returns) digest
    their target and every bound argument, so changing the filler count
    or an override dirties the key.  Opaque closures reduce to their
    qualified name — callers with closure-captured parameters should
    pass an explicit ``factory_key`` to :func:`run_stored_sweep`.
    """
    return stable_digest(factory)


def fingerprint_digest(result: ExperimentResult) -> str:
    """SHA-256 of the result's canonical fingerprint — the value the
    byte-identity machinery compares, reduced to one line."""
    return stable_digest(result_fingerprint(result))


# ----------------------------------------------------------------------
# Cell keys
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CellKey:
    """The input side of one sweep cell, i.e. everything its result is
    a pure function of."""

    #: What kind of cell ("leakage-shard", "chaos-cell", ...).
    kind: str
    #: Code version the cell was produced by (``repro.__version__``
    #: unless overridden via ``REPRO_CODE_VERSION`` — bumping either
    #: dirties every cell, and ``gc`` reclaims the stale ones).
    code_version: str
    #: Digest of the universe factory identity.
    factory: str
    #: Digest of the resolver configuration.
    config: str
    #: Digest of the shard's own (ordered) name slice.
    workload: str
    #: The sweep's base seed.
    seed: int
    #: This cell's position in the shard plan.
    shard_index: int
    shard_count: int
    #: The derived sub-seed actually driving the shard's universe.
    shard_seed: int
    #: Sorted residual parameters (ptr_fraction, trace, ...).
    extra: Tuple[Tuple[str, str], ...] = ()

    def digest(self) -> str:
        return stable_digest(self)

    def summary(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "code_version": self.code_version,
            "seed": self.seed,
            "shard": f"{self.shard_index}/{self.shard_count}",
            "shard_seed": self.shard_seed,
            "config": self.config[:12],
            "workload": self.workload[:12],
        }


def current_code_version() -> str:
    """The code version cells are keyed under.  ``REPRO_CODE_VERSION``
    overrides the package version — the knob tests and operators use to
    mark every existing cell dirty without editing source."""
    return os.environ.get("REPRO_CODE_VERSION", __version__)


def shard_cell_key(
    factory: UniverseFactory,
    config: ResolverConfig,
    spec: ShardSpec,
    shard_count: int,
    seed: int,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
    kind: str = "leakage-shard",
    factory_key: Optional[str] = None,
    code_version: Optional[str] = None,
) -> CellKey:
    """The :class:`CellKey` for one shard of a sharded leakage sweep."""
    return CellKey(
        kind=kind,
        code_version=code_version or current_code_version(),
        factory=factory_key or factory_digest(factory),
        config=config_digest(config),
        workload=names_digest(spec.names),
        seed=seed,
        shard_index=spec.index,
        shard_count=shard_count,
        shard_seed=spec.seed,
        extra=(
            ("dnssec_ok_stub", str(dnssec_ok_stub)),
            ("ptr_fraction", repr(float(ptr_fraction))),
            ("trace", str(trace)),
        ),
    )


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------

class SweepJournal:
    """Append-only JSONL record of sweep/store events.

    Each :meth:`record` appends one line and fsyncs, so the journal
    survives the same crashes the store does.  A torn final line (the
    crash landed mid-append) is tolerated on read.
    """

    def __init__(self, path: Path):
        self.path = Path(path)

    def record(self, event: str, **fields: Any) -> None:
        entry = {"event": event}
        entry.update(fields)
        line = json.dumps(_canonicalize(entry), sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Binary mode throughout: a torn tail may hold arbitrary bytes,
        # which a utf-8 text handle would refuse to even look at.
        with open(self.path, "ab+") as handle:
            # Heal a torn tail from a crash mid-append: if the file
            # doesn't end in a newline, terminate the dead line first
            # so this record stays parseable.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(handle.tell() - 1)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def events(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        with open(self.path, "rb") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entries.append(json.loads(raw.decode("utf-8")))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    # A torn or bit-rotted line from a crash mid-append.
                    continue
        return entries


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

@dataclasses.dataclass
class StoreStats:
    """Counters for one :class:`ResultStore` instance's lifetime."""

    commits: int = 0
    reuses: int = 0
    misses: int = 0
    corrupt_detected: int = 0

    def emit(self, metrics, prefix: str = "store") -> None:
        if metrics is None:
            return
        metrics.inc(f"{prefix}.commits", self.commits)
        metrics.inc(f"{prefix}.cells_reused", self.reuses)
        metrics.inc(f"{prefix}.misses", self.misses)
        metrics.inc(f"{prefix}.corrupt_detected", self.corrupt_detected)


@dataclasses.dataclass
class StoreEntry:
    """One committed cell, as listed by :meth:`ResultStore.entries`."""

    digest: str
    path: Path
    header: Dict[str, Any]

    @property
    def code_version(self) -> str:
        return self.header.get("key", {}).get("fields", {}).get(
            "code_version", "?"
        )


@dataclasses.dataclass
class VerifyReport:
    """Outcome of :meth:`ResultStore.verify`."""

    checked: int = 0
    ok: int = 0
    corrupt: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt


class ResultStore:
    """Content-addressed, crash-safe on-disk cell store.

    Commits are idempotent (re-committing an equal result under the
    same key rewrites the same content) and atomic (temp file in the
    destination directory, fsync, ``os.replace``).  Loads verify both
    the payload bytes and the recomputed result fingerprint against the
    digests in the envelope; any mismatch quarantines the file to
    ``*.corrupt`` and reports a miss, which makes the cell re-run.
    """

    CELL_SUFFIX = ".cell"
    LEASE_SUFFIX = LEASE_SUFFIX  # module constant, re-exported per-store
    QUARANTINE_SUFFIX = QUARANTINE_SUFFIX

    def __init__(
        self,
        root,
        code_version: Optional[str] = None,
        abort_after_commits: Optional[int] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or current_code_version()
        self.stats = StoreStats()
        #: Failure-injection knob (tests / CI smoke): after the Nth
        #: successful commit, SIGTERM the current process — a
        #: deterministic stand-in for "the operator killed the sweep
        #: halfway".
        self.abort_after_commits = abort_after_commits

    # -- paths ------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}{self.CELL_SUFFIX}"

    def lease_path_for(self, digest: str) -> Path:
        """Where a distributed worker's claim on this cell lives (see
        :mod:`repro.core.distrib`): beside the cell, so the claim and
        the commit share a directory — and a filesystem."""
        path = self.path_for(digest)
        return path.parent / f"{digest}{self.LEASE_SUFFIX}"

    def quarantine_path_for(self, digest: str) -> Path:
        """Where a cell's cross-worker quarantine marker lives."""
        path = self.path_for(digest)
        return path.parent / f"{digest}{self.QUARANTINE_SUFFIX}"

    def journal(self) -> SweepJournal:
        return SweepJournal(self.root / "journal.jsonl")

    # -- write ------------------------------------------------------------

    def commit(self, key: CellKey, result: ExperimentResult) -> Path:
        """Atomically commit *result* under *key*; returns the path.

        Idempotent: committing the same (key, equal-fingerprint) pair
        again rewrites identical content; committing a *different*
        result under the same key replaces it atomically (last write
        wins — keys are meant to make that impossible for pure cells).
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format": STORE_FORMAT,
            "key": _canonicalize(key),
            "key_digest": key.digest(),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "fingerprint_sha256": fingerprint_digest(result),
            "payload_b64": base64.b64encode(payload).decode("ascii"),
        }
        destination = self.path_for(key.digest())
        destination.parent.mkdir(parents=True, exist_ok=True)
        temp = destination.with_suffix(
            destination.suffix + f".tmp.{os.getpid()}"
        )
        data = json.dumps(envelope, sort_keys=True).encode("utf-8")
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, destination)
        self.stats.commits += 1
        if (
            self.abort_after_commits is not None
            and self.stats.commits >= self.abort_after_commits
        ):
            os.kill(os.getpid(), signal.SIGTERM)
        return destination

    # -- read -------------------------------------------------------------

    def load(self, key: CellKey) -> Optional[ExperimentResult]:
        """The committed result for *key*, or ``None``.

        ``None`` means either "never committed" or "committed but
        corrupt" — a corrupt cell is moved aside to ``*.corrupt`` and
        counted in :attr:`stats`, and the caller re-runs it.
        """
        digest = key.digest()
        path = self.path_for(digest)
        if not path.exists():
            self.stats.misses += 1
            return None
        result = self._load_verified(path, digest)
        if result is None:
            self.stats.corrupt_detected += 1
            self.stats.misses += 1
            self._quarantine_file(path)
            return None
        self.stats.reuses += 1
        return result

    def _load_verified(
        self, path: Path, expected_digest: Optional[str] = None
    ) -> Optional[ExperimentResult]:
        """Parse + verify one cell file; ``None`` on any corruption."""
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope["format"] != STORE_FORMAT:
                return None
            if (
                expected_digest is not None
                and envelope["key_digest"] != expected_digest
            ):
                return None
            payload = base64.b64decode(
                envelope["payload_b64"].encode("ascii"), validate=True
            )
            if hashlib.sha256(payload).hexdigest() != envelope["payload_sha256"]:
                return None
            result = pickle.loads(payload)
            if fingerprint_digest(result) != envelope["fingerprint_sha256"]:
                return None
            return result
        except Exception:
            return None

    @staticmethod
    def _quarantine_file(path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass

    # -- inspection -------------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Every committed cell (headers only, payloads not decoded)."""
        for path in sorted(self.root.glob(f"*/*{self.CELL_SUFFIX}")):
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except Exception:
                envelope = {}
            header = {
                key: value
                for key, value in envelope.items()
                if key != "payload_b64"
            }
            yield StoreEntry(
                digest=path.stem, path=path, header=header
            )

    def verify(self) -> VerifyReport:
        """Fully verify every cell (payload hash + recomputed result
        fingerprint), quarantining failures."""
        report = VerifyReport()
        for path in sorted(self.root.glob(f"*/*{self.CELL_SUFFIX}")):
            report.checked += 1
            digest = path.stem
            if self._load_verified(path, digest) is None:
                report.corrupt.append(str(path))
                self.stats.corrupt_detected += 1
                self._quarantine_file(path)
            else:
                report.ok += 1
        return report

    def gc(
        self, all_versions: bool = False, now: Optional[float] = None
    ) -> Dict[str, int]:
        """Reclaim junk, one class at a time, each reported in the
        returned stats dict:

        * ``tmp`` — stray ``*.tmp.*`` files from interrupted commits
          (and interrupted lease refreshes);
        * ``corrupt`` — ``*.corrupt`` corpses whose cell has since been
          **recommitted** healthy: the evidence served its purpose.  A
          corpse with *no* healthy sibling is kept — it is the only
          forensic record of what the corruption looked like;
        * ``lease_orphaned`` — lease files whose cell is already
          committed (the owner died between commit and release, or was
          fenced);
        * ``lease_expired`` — lease files whose own heartbeat+TTL says
          the owner is long dead (2× the recorded TTL, so a gc run
          never races a live sweep's renewal cadence);
        * ``lease_corrupt`` — unparseable lease files older than
          :data:`GC_LEASE_GRACE_SECONDS` (a *fresh* torn lease is left
          for the workers' own takeover arbitration to consume);
        * ``lease_stale`` — ``*.lease.stale.*`` remnants of takeover
          renames that crashed between rename and unlink;
        * ``stale`` — unless ``all_versions``, cells keyed under other
          code versions.
        """
        now = time.time() if now is None else now
        removed = {
            "tmp": 0,
            "corrupt": 0,
            "stale": 0,
            "lease_orphaned": 0,
            "lease_expired": 0,
            "lease_corrupt": 0,
            "lease_stale": 0,
            "bytes": 0,
        }

        def reclaim(path: Path, kind: str) -> None:
            try:
                removed["bytes"] += path.stat().st_size
                path.unlink()
            except OSError:
                return
            removed[kind] += 1

        for path in list(self.root.glob("*/*.tmp.*")):
            reclaim(path, "tmp")
        for path in list(self.root.glob(f"*/*{LEASE_SUFFIX}.stale.*")):
            reclaim(path, "lease_stale")
        for path in list(self.root.glob(f"*/*{LEASE_SUFFIX}")):
            digest = path.name[: -len(LEASE_SUFFIX)]
            if self.path_for(digest).exists():
                reclaim(path, "lease_orphaned")
                continue
            try:
                lease = json.loads(path.read_text(encoding="utf-8"))
                heartbeat = float(lease["heartbeat"])
                ttl = float(lease["ttl"])
            except Exception:
                try:
                    aged = now - path.stat().st_mtime
                except OSError:
                    continue
                if aged > GC_LEASE_GRACE_SECONDS:
                    reclaim(path, "lease_corrupt")
                continue
            if now - heartbeat > max(2.0 * ttl, ttl + 1.0):
                reclaim(path, "lease_expired")
        for path in list(self.root.glob("*/*.corrupt")):
            # `<digest>.cell.corrupt` → reclaim only once a healthy
            # `<digest>.cell` exists again.
            stem = path.name[: -len(".corrupt")]
            if stem.endswith(self.CELL_SUFFIX):
                digest = stem[: -len(self.CELL_SUFFIX)]
                if self.path_for(digest).exists():
                    reclaim(path, "corrupt")
        if not all_versions:
            for entry in list(self.entries()):
                if entry.code_version != self.code_version:
                    removed["stale"] += 1
                    removed["bytes"] += entry.path.stat().st_size
                    entry.path.unlink()
        # Prune emptied shard directories.
        for directory in list(self.root.glob("*")):
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()
        return removed


# ----------------------------------------------------------------------
# The stored sweep: resume, quarantine, byte-identity
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SweepOutcome:
    """Everything one stored sweep produced.

    ``result`` merges every *healthy* cell (reused + freshly run) in
    shard order; quarantined cells are excluded from the merge and
    listed in ``quarantined``.  A complete outcome's ``result`` is
    byte-identical (per :func:`~repro.core.parallel.result_fingerprint`)
    to an uninterrupted serial run of the same plan.
    """

    result: ExperimentResult
    cells_total: int
    cells_reused: int
    cells_rerun: int
    quarantined: List[QuarantinedCell]
    health: ExecutorHealth
    store_stats: Optional[StoreStats] = None

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def raise_if_incomplete(self) -> None:
        if self.quarantined:
            from .parallel import QuarantineError

            raise QuarantineError(self.quarantined)

    def describe(self) -> str:
        parts = [
            f"cells={self.cells_total}",
            f"reused={self.cells_reused}",
            f"rerun={self.cells_rerun}",
            f"quarantined={len(self.quarantined)}",
        ]
        if self.store_stats is not None and self.store_stats.corrupt_detected:
            parts.append(f"corrupt={self.store_stats.corrupt_detected}")
        return "sweep " + " ".join(parts) + f" [{self.health.describe()}]"


def run_stored_sweep(
    factory: UniverseFactory,
    config: ResolverConfig,
    names: Sequence[Name],
    seed: int = 0,
    shards: Optional[int] = None,
    parallelism: int = 1,
    executor: Optional[FaultTolerantExecutor] = None,
    store: Optional[ResultStore] = None,
    ptr_fraction: float = 0.01,
    dnssec_ok_stub: bool = True,
    trace: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    fail_fast: bool = False,
    backoff_base: float = 0.05,
    factory_key: Optional[str] = None,
    kind: str = "leakage-shard",
    journal: Optional[SweepJournal] = None,
    metrics=None,
    injection: Optional[FaultInjection] = None,
) -> SweepOutcome:
    """A sharded leakage sweep over a crash-safe store.

    The shard plan is identical to
    :func:`~repro.core.parallel.run_sharded_experiment`'s; each shard's
    :class:`CellKey` is checked against *store* first and only missing
    (or corrupt) cells run — on the fault-tolerant executor, with
    per-cell ``timeout``, ``retries`` on a deterministic backoff, and
    worker-loss detection.  Fresh results commit **as they complete**,
    so an interrupted sweep resumes from its last committed cell simply
    by calling this again; ``fail_fast=False`` (the default) quarantines
    poison cells and completes the rest.

    Operational counters go to ``metrics`` (optional registry) and the
    store's journal; they never enter ``result``, which therefore stays
    byte-identical across resume/retry histories.
    """
    shard_count = shards if shards is not None else max(parallelism, 1)
    plan = plan_shards(names, shard_count, seed)
    if journal is None and store is not None:
        journal = store.journal()

    def note(event: str, **fields: Any) -> None:
        if journal is not None:
            journal.record(event, **fields)

    note(
        "sweep-start",
        kind=kind,
        seed=seed,
        shards=shard_count,
        cells=len(plan),
    )
    keys: List[Optional[CellKey]] = []
    reused: Dict[int, ExperimentResult] = {}
    for spec in plan:
        if store is None:
            keys.append(None)
            continue
        key = shard_cell_key(
            factory,
            config,
            spec,
            shard_count=shard_count,
            seed=seed,
            ptr_fraction=ptr_fraction,
            dnssec_ok_stub=dnssec_ok_stub,
            trace=trace,
            kind=kind,
            factory_key=factory_key,
        )
        keys.append(key)
        corrupt_before = store.stats.corrupt_detected
        cached = store.load(key)
        if cached is not None:
            reused[spec.index] = cached
            note("reuse", shard=spec.index, key=key.digest())
        elif store.stats.corrupt_detected > corrupt_before:
            note("corrupt", shard=spec.index, key=key.digest())

    missing = [spec for spec in plan if spec.index not in reused]
    tasks: List[Callable[[], ExperimentResult]] = []
    task_specs: List[ShardSpec] = []
    for spec in missing:
        task: Callable[[], ExperimentResult] = _ShardTask(
            factory=factory,
            config=config,
            spec=spec,
            ptr_fraction=ptr_fraction,
            dnssec_ok_stub=dnssec_ok_stub,
            trace=trace,
        )
        if injection is not None:
            task = injection.wrap(spec.index, task)
        tasks.append(task)
        task_specs.append(spec)

    if executor is None:
        executor = FaultTolerantExecutor(
            workers=max(parallelism, 1),
            timeout=timeout,
            retries=retries,
            keep_going=not fail_fast,
            backoff_base=backoff_base,
            # Injected crashes need a worker process to die in.
            isolate=True if injection is not None else None,
        )

    fresh: Dict[int, ExperimentResult] = {}

    def commit_cell(task_index: int, result: ExperimentResult) -> None:
        spec = task_specs[task_index]
        fresh[spec.index] = result
        if store is not None and keys[spec.index] is not None:
            store.commit(keys[spec.index], result)
            note("commit", shard=spec.index, key=keys[spec.index].digest())

    _, quarantined, health = executor.run_with_quarantine(
        tasks, on_result=commit_cell
    )
    for cell in quarantined:
        spec = task_specs[cell.index]
        # Report shard indices, not positions in the missing-task list.
        cell.index = spec.index
        note(
            "quarantine",
            shard=spec.index,
            error=cell.error,
            attempts=cell.attempts,
            context=cell.context,
        )

    pairs = [
        (spec.index, reused.get(spec.index, fresh.get(spec.index)))
        for spec in plan
    ]
    merged = merge_shard_results(
        (index, result) for index, result in pairs if result is not None
    )
    outcome = SweepOutcome(
        result=merged,
        cells_total=len(plan),
        cells_reused=len(reused),
        cells_rerun=len(fresh),
        quarantined=quarantined,
        health=health,
        store_stats=store.stats if store is not None else None,
    )
    note(
        "sweep-end",
        reused=outcome.cells_reused,
        rerun=outcome.cells_rerun,
        quarantined=len(quarantined),
    )
    health.emit(metrics, prefix="executor")
    if metrics is not None:
        metrics.inc("sweep.cells_total", outcome.cells_total)
        metrics.inc("sweep.cells_reused", outcome.cells_reused)
        metrics.inc("sweep.cells_rerun", outcome.cells_rerun)
        metrics.inc("sweep.cells_quarantined", len(quarantined))
    if store is not None:
        store.stats.emit(metrics, prefix="store")
    return outcome
