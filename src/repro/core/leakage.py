"""Leakage classification under the paper's threat model (Section 3).

A DLV query observed at the registry is:

* **Case-1** — the queried owner name has a DLV record deposited: the
  registry is an involved party; the exposure is no worse than today's
  primary resolution; not counted as a privacy leak.
* **Case-2** — no DLV record exists for the name: the registry learns a
  domain the user resolved while providing zero validation utility.
  **This is the leak** the paper quantifies.

A *domain* counts as leaked when at least one Case-2 DLV query naming it
reached the registry.  TLD-level queries produced by label stripping
(e.g. ``com.dlv.isc.org``) are tracked separately: they reveal far less
than an SLD.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dnscore import Name, RCode, RRType
from ..netsim import Capture, PacketRecord
from ..servers.dlv_registry import DlvRegistryZone


class LeakageCase(enum.Enum):
    CASE1 = "case-1"   # deposited: involved party
    CASE2 = "case-2"   # not deposited: privacy leak


@dataclasses.dataclass(frozen=True)
class ClassifiedDlvQuery:
    """One DLV query to the registry, classified."""

    record: PacketRecord
    case: LeakageCase
    #: The domain the query exposes (suffix-stripped), when mappable.
    domain: Optional[Name]
    #: True for label-stripped enclosing queries above the SLD.
    tld_level: bool


@dataclasses.dataclass
class LeakageReport:
    """Aggregated leakage statistics for one experiment run."""

    domains_queried: int
    dlv_queries: int
    case1_queries: int
    case2_queries: int
    leaked_domains: Set[Name]
    served_domains: Set[Name]
    tld_level_queries: int
    noerror_responses: int
    nxdomain_responses: int

    @property
    def leaked_count(self) -> int:
        return len(self.leaked_domains)

    @property
    def leaked_proportion(self) -> float:
        if self.domains_queried == 0:
            return 0.0
        return self.leaked_count / self.domains_queried

    @property
    def utility_fraction(self) -> float:
        """Share of DLV queries that received "No error" — the paper's
        Section 5.3 validation-utility measure."""
        if self.dlv_queries == 0:
            return 0.0
        return self.noerror_responses / self.dlv_queries

    @property
    def case2_fraction(self) -> float:
        if self.dlv_queries == 0:
            return 0.0
        return self.case2_queries / self.dlv_queries


class LeakageClassifier:
    """Turns a capture plus registry state into a leakage report."""

    def __init__(
        self,
        registry: DlvRegistryZone,
        registry_address: str,
    ):
        self._registry = registry
        self._registry_address = registry_address

    def classify_queries(self, capture: Capture) -> List[ClassifiedDlvQuery]:
        classified: List[ClassifiedDlvQuery] = []
        origin = self._registry.origin
        for record in capture.queries_of_type(RRType.DLV):
            if record.dst != self._registry_address:
                continue  # discovery hops through root/org/isc.org
            if record.dropped:
                continue  # lost in flight: the registry never saw it
            qname = record.qname
            assert qname is not None
            if not qname.is_subdomain_of(origin) or qname == origin:
                continue
            case = (
                LeakageCase.CASE1
                if self._registry.has_owner(qname)
                else LeakageCase.CASE2
            )
            domain, tld_level = self._map_domain(qname)
            classified.append(
                ClassifiedDlvQuery(
                    record=record, case=case, domain=domain, tld_level=tld_level
                )
            )
        return classified

    def _map_domain(self, qname: Name) -> Tuple[Optional[Name], bool]:
        origin = self._registry.origin
        if self._registry.hashed:
            # A hashed query exposes only a digest; there is no name to
            # map back (that is the remedy's point).
            return None, False
        relative = qname.relativize(origin)
        domain = Name(relative)
        return domain, len(relative) == 1

    def report(
        self,
        capture: Capture,
        queried_domains: Sequence[Name],
    ) -> LeakageReport:
        classified = self.classify_queries(capture)
        queried = set(queried_domains)
        leaked: Set[Name] = set()
        served: Set[Name] = set()
        case1 = case2 = tld_level = 0
        for item in classified:
            if item.case is LeakageCase.CASE1:
                case1 += 1
                if item.domain is not None and item.domain in queried:
                    served.add(item.domain)
            else:
                case2 += 1
                if item.tld_level:
                    tld_level += 1
                elif item.domain is not None and item.domain in queried:
                    leaked.add(item.domain)
        noerror, nxdomain = self._response_counts(capture)
        return LeakageReport(
            domains_queried=len(queried),
            dlv_queries=len(classified),
            case1_queries=case1,
            case2_queries=case2,
            leaked_domains=leaked,
            served_domains=served,
            tld_level_queries=tld_level,
            noerror_responses=noerror,
            nxdomain_responses=nxdomain,
        )

    def _response_counts(self, capture: Capture) -> Tuple[int, int]:
        """"No error" vs "No such name" responses from the registry —
        the only two message kinds the paper observed (Section 5.3)."""
        noerror = nxdomain = 0
        for record in capture:
            if record.is_query or record.src != self._registry_address:
                continue
            if record.qtype is not RRType.DLV:
                continue
            if record.message.rcode is RCode.NOERROR and record.message.answer:
                noerror += 1
            elif record.message.rcode is RCode.NXDOMAIN:
                nxdomain += 1
        return noerror, nxdomain
