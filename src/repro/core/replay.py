"""Population-scale replay: many concurrent stubs, streaming results.

This is the driver the event scheduler exists for.  One shared universe
(one resolver, one cache, one registry) serves a *population* of stub
clients whose queries arrive on a DITL-shaped Poisson process
(:func:`repro.workloads.iter_replay_arrivals`); each arrival becomes a
resumable session on the :class:`~repro.netsim.sched.EventScheduler`, so
resolutions overlap in simulated time — shared-cache contention, retry
backoff under load, and admission queueing all behave the way the
paper's busy recursive resolver would.

Memory stays flat at any query volume, by construction:

* the universe's capture is swapped for a
  :class:`~repro.netsim.StreamingCapture` — no packet is ever retained;
  the replay's observer classifies DLV traffic Case-1/Case-2 *online*
  at the wire, exactly where the paper's registry tap sits;
* arrivals are generated lazily, one pending arrival event at a time;
* results accumulate into fixed-width
  :class:`~repro.core.parallel.ReplayWindow` values, closed on window
  boundaries by scheduler timers and folded with the monoid merge —
  the streaming analogue of the sharded runner's
  :func:`~repro.core.parallel.merge_shard_results`.

The session loop itself lives in :func:`drive_replay_sessions`, a
name-source-agnostic driver shared with the chaos layer
(:mod:`repro.core.chaos_replay`): the population replay feeds it
popularity-weighted browsing profiles, the chaos replay feeds it the
matrix cell's domain sample while a :class:`~repro.netsim.FaultPlan`
outage or a byzantine persona is live on the same universe.  Each
closed window carries the availability extension of the monoid —
SERVFAIL/timeout split, resolver retry and served-stale deltas,
admission queue/shed counts, and the mergeable latency histogram.

The other entry point, :func:`run_experiment_in_session`, routes an
unmodified :class:`~repro.core.experiment.LeakageExperiment` through the
scheduler as a single session.  With one session there is nothing to
interleave, every suspension resumes at exactly the float the serial
path would have computed, and the result — fingerprint, capture rows,
trace JSONL — is byte-identical to a plain serial run.  That equivalence
(enforced by ``tests/core/test_replay.py``) is what certifies the
scheduler as a refactor rather than a fork of the simulation's
semantics.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..dnscore import Name, RCode, RRType
from ..netsim import EventScheduler, Priority, SchedulerStats, StreamingCapture
from ..netsim.network import NetworkError, QueryTimeout
from ..resolver import ResolverConfig, StubClient, correct_bind_config
from ..workloads import DitlParams, Universe, generate_trace, iter_replay_arrivals
from .experiment import ExperimentResult, LeakageExperiment
from .metrics import MetricsRegistry
from .parallel import (
    LATENCY_BUCKET_BOUNDS,
    ReplayWindow,
    empty_replay_window,
    latency_bucket_index,
    merge_replay_windows,
)
from .population import make_profiles
from .setup import standard_universe, standard_workload


@dataclasses.dataclass(frozen=True)
class ReplayParams:
    """Knobs of one population replay."""

    #: Concurrent stub clients sharing the resolver.
    users: int = 8
    #: Total stub queries to replay.
    queries: int = 2_000
    #: Domain population size (the workload's Alexa-like sample).
    domains: int = 60
    #: Background DLV registry entries beyond the workload's deposits.
    registry_filler: int = 300
    #: Browsing-profile size per user (popularity-weighted sample).
    domains_per_user: int = 20
    #: Mean per-user query rate (queries / simulated second) before the
    #: DITL diurnal modulation.
    per_user_qps: float = 0.05
    #: Aggregation-window width in simulated seconds.
    window_seconds: float = 300.0
    #: Admission cap: in-flight sessions beyond this queue FIFO.
    max_concurrent: int = 64
    #: Bound on the admission FIFO itself: arrivals beyond it are shed
    #: (counted as failed queries and ``admission_rejected``).  ``None``
    #: keeps the queue unbounded — the pre-chaos behaviour.
    max_queue: Optional[int] = None
    seed: int = 2017


@dataclasses.dataclass
class ReplayResult:
    """What one population replay produced — windows, never packets."""

    params: ReplayParams
    #: Closed aggregation windows, in simulated-time order.
    windows: List[ReplayWindow]
    #: The monoid fold of every window.
    overall: ReplayWindow
    scheduler: SchedulerStats
    #: Real seconds the replay took to execute.
    wall_seconds: float

    @property
    def simulated_seconds(self) -> float:
        return self.overall.duration

    @property
    def simulated_qps(self) -> float:
        """Completed stub queries per simulated second."""
        duration = self.overall.duration
        return self.overall.queries / duration if duration else 0.0

    @property
    def replay_rate(self) -> float:
        """Completed stub queries per *wall* second — the throughput
        number the benchmarks track."""
        return self.overall.queries / self.wall_seconds if self.wall_seconds else 0.0

    def describe(self) -> str:
        overall = self.overall
        return (
            f"{self.params.users} users, {overall.queries} queries over "
            f"{overall.duration:,.0f} simulated s "
            f"({self.simulated_qps:.2f} sim-qps, "
            f"{self.replay_rate:,.0f} q/wall-s); "
            f"leak-rate {overall.leak_rate:.3f} "
            f"({overall.case2_queries} case-2, "
            f"{len(overall.leaked_domains)} domains), "
            f"cache-hit {overall.cache_hit_rate:.1%}, "
            f"peak in-flight {self.scheduler.peak_active}"
        )


class _WindowAccum:
    """Mutable scratch for the window being filled (O(1) + leak set)."""

    __slots__ = (
        "start", "queries", "failures", "servfails", "timeouts",
        "dlv", "case1", "case2", "leaked",
        "packets", "wire_bytes", "dropped", "latency_sum", "latency_max",
        "buckets", "started", "completed",
    )

    def __init__(self, start: float):
        self.start = start
        self.queries = 0
        self.failures = 0
        self.servfails = 0
        self.timeouts = 0
        self.dlv = 0
        self.case1 = 0
        self.case2 = 0
        self.leaked: set = set()
        self.packets = 0
        self.wire_bytes = 0
        self.dropped = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self.buckets = [0] * len(LATENCY_BUCKET_BOUNDS)
        self.started = 0
        self.completed = 0

    def freeze(
        self,
        end: float,
        cache_hits: int,
        cache_misses: int,
        retries: int = 0,
        stale_served: int = 0,
        queued: int = 0,
        rejected: int = 0,
    ) -> ReplayWindow:
        return ReplayWindow(
            start=self.start,
            end=end,
            queries=self.queries,
            failures=self.failures,
            dlv_queries=self.dlv,
            case1_queries=self.case1,
            case2_queries=self.case2,
            leaked_domains=frozenset(self.leaked),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            packets=self.packets,
            wire_bytes=self.wire_bytes,
            dropped=self.dropped,
            latency_sum=self.latency_sum,
            latency_max=self.latency_max,
            sessions_started=self.started,
            sessions_completed=self.completed,
            servfails=self.servfails,
            timeouts=self.timeouts,
            retries=retries,
            stale_served=stale_served,
            admission_queued=queued,
            admission_rejected=rejected,
            latency_buckets=tuple(self.buckets),
        )


@dataclasses.dataclass
class DriveOutcome:
    """What one session-drive produced, before entry-point packaging."""

    windows: List[ReplayWindow]
    scheduler: SchedulerStats
    #: The shared resolver the sessions exercised — still attached to
    #: the universe, so callers can read engine/lookaside counters.
    resolver: object
    metrics: MetricsRegistry


def drive_replay_sessions(
    universe: Universe,
    config: ResolverConfig,
    next_name: Callable[[int], Name],
    *,
    users: int,
    per_user_qps: float,
    queries: int,
    window_seconds: float,
    max_concurrent: int,
    max_queue: Optional[int] = None,
    seed: int,
    progress: Optional[Callable[[ReplayWindow], None]] = None,
) -> DriveOutcome:
    """Drive a DITL-shaped arrival stream of concurrent stub sessions
    against *universe*'s resolver, folding availability-extended
    :class:`ReplayWindow` values on window boundaries.

    ``next_name(user)`` supplies the name each scheduled arrival will
    query — the one policy point where the population replay (browsing
    profiles) and the chaos replay (matrix cell sample) differ.  The
    caller may have scripted faults or deployed personas on *universe*
    beforehand; this driver attaches telemetry, swaps in the streaming
    capture, and runs the event loop, so per-window counters include
    the resolver's retry/served-stale deltas and the admission queue's
    deferrals and sheds.
    """
    metrics = MetricsRegistry()
    universe.attach_telemetry(metrics=metrics)

    registry_address = universe.registry_address
    registry_zone = universe.registry_zone
    origin = universe.registry_origin
    accum = _WindowAccum(0.0)

    def observe(record) -> None:
        accum.packets += 1
        accum.wire_bytes += record.wire_size
        if record.dropped:
            accum.dropped += 1
        if (
            not record.is_query
            or record.dst != registry_address
            or record.dropped
            or record.qtype is not RRType.DLV
        ):
            return
        accum.dlv += 1
        qname = record.qname
        if qname is None or not qname.is_subdomain_of(origin) or qname == origin:
            return
        relative = qname.relativize(origin)
        if len(relative) < 2:
            return  # TLD-level enclosing query, neither case
        domain = Name(relative)
        if registry_zone.has_deposit(domain):
            accum.case1 += 1
        else:
            accum.case2 += 1
            accum.leaked.add(domain.to_text())

    # Swap the list capture for the streaming one *before* any traffic.
    universe.network.capture = StreamingCapture(observer=observe)

    resolver = universe.make_resolver(config)
    stubs: Dict[int, StubClient] = {}

    clock = universe.clock
    windows: List[ReplayWindow] = []
    hits_counter = metrics.counter("cache.hits")
    misses_counter = metrics.counter("cache.misses")
    retries_counter = metrics.counter("engine.retries")
    stale_counter = metrics.counter("engine.stale_served")
    seen_hits = 0
    seen_misses = 0
    seen_retries = 0
    seen_stale = 0
    seen_queued = 0
    seen_rejected = 0
    arrivals = iter_replay_arrivals(
        generate_trace(DitlParams(seed=seed, scale=0.001)),
        users=users,
        per_user_qps=per_user_qps,
        limit=queries,
        seed=seed + 2,
    )
    state = {"dispatched": 0, "completed": 0, "arrivals_done": False}

    def on_reject(session) -> None:
        # A shed arrival is a query the population issued and the
        # service refused: it fails without a latency sample, and the
        # dispatch ledger must still advance or the loop never drains.
        accum.queries += 1
        accum.failures += 1
        state["completed"] += 1

    with EventScheduler(
        clock,
        max_concurrent=max_concurrent,
        max_queue=max_queue,
        on_reject=on_reject,
    ) as scheduler:

        def close_window(end: float) -> None:
            nonlocal accum, seen_hits, seen_misses
            nonlocal seen_retries, seen_stale, seen_queued, seen_rejected
            hits, misses = hits_counter.value, misses_counter.value
            retries, stale = retries_counter.value, stale_counter.value
            queued = scheduler.stats.queued
            rejected = scheduler.stats.rejected
            window = accum.freeze(
                end,
                hits - seen_hits,
                misses - seen_misses,
                retries=retries - seen_retries,
                stale_served=stale - seen_stale,
                queued=queued - seen_queued,
                rejected=rejected - seen_rejected,
            )
            seen_hits, seen_misses = hits, misses
            seen_retries, seen_stale = retries, stale
            seen_queued, seen_rejected = queued, rejected
            windows.append(window)
            accum = _WindowAccum(end)
            if progress is not None:
                progress(window)

        def finished() -> bool:
            return (
                state["arrivals_done"]
                and state["completed"] == state["dispatched"]
            )

        def make_session(user: int, name: Name) -> Callable[[], None]:
            def session() -> None:
                stub = stubs[user]
                begun = clock.now
                failed = False
                servfailed = False
                timed_out = False
                try:
                    response = stub.query(name, RRType.A, dnssec_ok=True)
                    if response.rcode is RCode.SERVFAIL:
                        failed = servfailed = True
                except QueryTimeout:
                    failed = timed_out = True
                except NetworkError:
                    failed = True
                accum.queries += 1
                if failed:
                    accum.failures += 1
                if servfailed:
                    accum.servfails += 1
                if timed_out:
                    accum.timeouts += 1
                latency = clock.now - begun
                accum.latency_sum += latency
                accum.latency_max = max(accum.latency_max, latency)
                accum.buckets[latency_bucket_index(latency)] += 1
                accum.completed += 1
                state["completed"] += 1
            return session

        def schedule_next_arrival() -> None:
            try:
                when, user = next(arrivals)
            except StopIteration:
                state["arrivals_done"] = True
                return
            name = next_name(user)
            index = state["dispatched"]
            state["dispatched"] += 1

            def arrive() -> None:
                if user not in stubs:
                    stubs[user] = universe.make_stub(resolver)
                accum.started += 1
                scheduler.spawn(
                    make_session(user, name),
                    label=f"u{user}.q{index}",
                    tiebreak=(user, index),
                )
                schedule_next_arrival()

            scheduler.call_at(
                max(when, clock.now), arrive,
                priority=Priority.DISPATCH, tiebreak=(user, index),
                label=f"arrival:u{user}",
            )

        def boundary() -> None:
            close_window(clock.now)
            if not finished():
                scheduler.call_at(
                    clock.now + window_seconds, boundary,
                    label="window",
                )

        schedule_next_arrival()
        scheduler.call_at(window_seconds, boundary, label="window")
        stats = scheduler.run()

    if accum.queries or accum.packets or not windows:
        close_window(clock.now)

    return DriveOutcome(
        windows=windows, scheduler=stats, resolver=resolver, metrics=metrics
    )


def fold_windows(windows: Sequence[ReplayWindow]) -> ReplayWindow:
    """The monoid fold of *windows* (identity for an empty sequence)."""
    overall = empty_replay_window()
    for window in windows:
        overall = merge_replay_windows(overall, window)
    return overall


def run_population_replay(
    params: Optional[ReplayParams] = None,
    config: Optional[ResolverConfig] = None,
    progress: Optional[Callable[[ReplayWindow], None]] = None,
) -> ReplayResult:
    """Replay a DITL-shaped query stream from ``params.users`` concurrent
    stubs against one shared look-aside resolver.

    ``progress`` (if given) receives each :class:`ReplayWindow` the
    moment it closes — the streaming hook the CLI uses to print the
    leak-rate curve while the replay runs.
    """
    params = params or ReplayParams()
    config = config or correct_bind_config()
    started_wall = time.perf_counter()

    workload = standard_workload(params.domains, seed=params.seed)
    universe = standard_universe(
        workload, filler_count=params.registry_filler, seed=params.seed
    )
    profiles = make_profiles(
        workload, params.users, params.domains_per_user, seed=params.seed + 1
    )
    cursors = [0] * params.users

    def next_name(user: int) -> Name:
        profile = profiles[user]
        name = profile.names[cursors[user] % len(profile.names)]
        cursors[user] += 1
        return name

    outcome = drive_replay_sessions(
        universe,
        config,
        next_name,
        users=params.users,
        per_user_qps=params.per_user_qps,
        queries=params.queries,
        window_seconds=params.window_seconds,
        max_concurrent=params.max_concurrent,
        max_queue=params.max_queue,
        seed=params.seed,
        progress=progress,
    )
    return ReplayResult(
        params=params,
        windows=outcome.windows,
        overall=fold_windows(outcome.windows),
        scheduler=outcome.scheduler,
        wall_seconds=time.perf_counter() - started_wall,
    )


def run_experiment_in_session(
    experiment: LeakageExperiment, names: Sequence[Name]
) -> ExperimentResult:
    """Run a :class:`LeakageExperiment` through the event scheduler as a
    single session.

    The serial equivalence contract: with exactly one session, every
    ``clock.advance`` suspension resumes at the same float the serial
    path computes in place, so the returned result is **byte-identical**
    (fingerprint, capture rows, trace JSONL) to ``experiment.run(names)``
    without a scheduler.  This is the bridge that lets any existing
    serial harness run under the event loop unchanged.
    """
    clock = experiment.universe.clock
    slot: Dict[str, ExperimentResult] = {}
    with EventScheduler(clock, max_concurrent=1) as scheduler:
        def session() -> None:
            slot["result"] = experiment.run(names)

        scheduler.spawn(session, label="experiment")
        scheduler.run()
    return slot["result"]
