"""Chaos and adversaries under load: concurrent replay for the matrices.

The chaos (:func:`~repro.core.experiment.run_chaos_matrix`) and
adversary (:func:`~repro.core.experiment.run_adversary_matrix`)
harnesses measure fault windows and byzantine personas one stub query
at a time — the resolver is never *busy* when the DLV registry goes
dark.  The paper's remedies only matter under load: retry storms pile
onto the shared backoff state, serve-stale competes with admission
queueing, and the registry's Case-2 exposure during an outage scales
with concurrency.  This module replays the same matrix cells through
the event scheduler so many in-flight sessions cross the fault window
simultaneously on one shared resolver/cache universe:

* :func:`run_chaos_replay` scripts a
  :class:`~repro.core.experiment.ChaosScenario` (``FaultPlan`` outage /
  brownout windows) onto a fresh calibrated universe, then drives a
  DITL-shaped arrival stream over the cell's domain sample with
  :func:`~repro.core.replay.drive_replay_sessions`;
* :func:`run_adversary_replay` does the same with a byzantine persona
  (PR 2's spoofer / poisoner / referral bomber / sig bomber) live on
  the wire, reading the persona's forge counters and the cache's
  ground-truth poison afterwards;
* every closed :class:`~repro.core.parallel.ReplayWindow` carries the
  availability extension — SERVFAIL/timeout split, resolver retry and
  served-stale deltas, admission deferrals and sheds, and the
  mergeable latency histogram — so the during-/after-outage phases are
  exact monoid folds of the windows they span
  (:meth:`ChaosReplayResult.fold_between`);
* :func:`chaos_replay_fingerprint` hashes the full window sequence into
  the golden-file regression flow, the same way
  :func:`~repro.core.parallel.result_fingerprint` pins the serial
  harness.

The ``load=`` axis on the matrices routes here: ``load=None`` keeps the
serial cell, ``load=1`` routes the *unchanged* serial experiment
through :func:`~repro.core.replay.run_experiment_in_session` (whose
result is byte-identical to the serial cell — the equivalence the
acceptance tests pin), and ``load=N`` / ``load=ReplayLoad(...)`` runs
the concurrent replay via :func:`run_chaos_cell_under_load` /
:func:`run_adversary_cell_under_load`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..dnscore import Name
from ..netsim import SchedulerStats
from ..resolver import ResolverConfig, correct_bind_config
from ..workloads import Universe
from .experiment import (
    AdversaryReport,
    AdversaryScenario,
    ChaosReport,
    ChaosScenario,
)
from .observability import (
    HardeningSnapshot,
    hardening_snapshot,
    poisoned_cache_entries,
)
from .parallel import ReplayWindow, empty_replay_window
from .replay import DriveOutcome, drive_replay_sessions, fold_windows


@dataclasses.dataclass(frozen=True)
class ReplayLoad:
    """The load axis of an under-load matrix cell: a population of
    concurrent stubs and their arrival rate.

    ``queries=None`` sizes the stream to ``users * per_user_qps *
    duration_seconds`` (rounded down, at least one per user) so every
    load level replays the *same simulated timespan* — which is what
    makes availability curves at different loads comparable around one
    fixed outage window.
    """

    #: Concurrent stub clients sharing the resolver.
    users: int = 8
    #: Mean per-user arrival rate (queries / simulated second) before
    #: the DITL diurnal modulation.
    per_user_qps: float = 0.05
    #: Total stub queries; ``None`` derives from ``duration_seconds``.
    queries: Optional[int] = None
    #: Simulated timespan the derived query budget targets.
    duration_seconds: float = 3_600.0
    #: Aggregation-window width in simulated seconds.
    window_seconds: float = 300.0
    #: Admission cap: in-flight sessions beyond this queue FIFO.
    max_concurrent: int = 64
    #: Bound on the admission FIFO; arrivals beyond it are shed.
    max_queue: Optional[int] = None
    seed: int = 2017

    def query_budget(self) -> int:
        if self.queries is not None:
            return self.queries
        derived = int(self.users * self.per_user_qps * self.duration_seconds)
        return max(self.users, derived)

    def describe(self) -> str:
        return (
            f"{self.users} users × {self.per_user_qps:g} qps "
            f"({self.query_budget()} queries, "
            f"inflight≤{self.max_concurrent}"
            + (f", queue≤{self.max_queue}" if self.max_queue is not None else "")
            + ")"
        )


#: What the matrices accept on their ``load=`` axis.
LoadSpec = Union[None, int, ReplayLoad]


def coerce_load(load: LoadSpec) -> Optional[ReplayLoad]:
    """Normalise a ``load=`` argument: ``None`` stays ``None`` (serial
    cell), ``1`` means the single-session scheduler path (also
    ``None`` here — the cell handles it), an ``int > 1`` becomes that
    many users at the default rate, and a :class:`ReplayLoad` passes
    through."""
    if load is None:
        return None
    if isinstance(load, ReplayLoad):
        return load
    if isinstance(load, bool) or not isinstance(load, int):
        raise TypeError(f"load must be None, an int, or ReplayLoad, got {load!r}")
    if load < 1:
        raise ValueError(f"load must be >= 1, got {load}")
    if load == 1:
        return None
    return ReplayLoad(users=load)


@dataclasses.dataclass
class ChaosReplayResult:
    """One under-load cell: the window stream and its phase folds."""

    scenario: str
    policy: str
    load: ReplayLoad
    #: Closed aggregation windows, in simulated-time order.
    windows: List[ReplayWindow]
    #: The monoid fold of every window.
    overall: ReplayWindow
    scheduler: SchedulerStats
    wall_seconds: float
    #: ``(start, end)`` of the scripted outage span — the smallest
    #: start and largest end over the universe's scripted outage
    #: windows (``end`` clamped to the replay's horizon when the
    #: script ran open-ended).  ``None`` when nothing was scripted.
    fault_bounds: Optional[Tuple[float, float]] = None
    #: Persona counters (adversary replays only).
    adversary: str = "none"
    responses_forged: int = 0
    poisoned_cache_entries: int = 0
    #: Resolver-side resilience counters read after the replay.
    stale_served: int = 0
    lookaside_skipped: int = 0
    lookaside_disabled: bool = False
    upstream_sends: int = 0
    crypto_verify_calls: int = 0
    hardening: Optional[HardeningSnapshot] = None

    def fold_between(self, start: float, end: float) -> ReplayWindow:
        """The exact monoid fold of every window overlapping
        ``[start, end)`` — the phase-slicing primitive behind
        :meth:`during_fault` / :meth:`after_fault`."""
        selected = [
            w for w in self.windows if w.start < end and w.end > start
        ]
        return fold_windows(selected) if selected else empty_replay_window()

    def during_fault(self) -> ReplayWindow:
        if self.fault_bounds is None:
            return empty_replay_window()
        return self.fold_between(*self.fault_bounds)

    def after_fault(self) -> ReplayWindow:
        if self.fault_bounds is None:
            return empty_replay_window()
        return self.fold_between(self.fault_bounds[1], float("inf"))

    def before_fault(self) -> ReplayWindow:
        if self.fault_bounds is None:
            return empty_replay_window()
        return self.fold_between(float("-inf"), self.fault_bounds[0])

    def describe(self) -> str:
        overall = self.overall
        label = (
            f"{self.scenario} × {self.policy}"
            if self.adversary == "none"
            else f"{self.adversary} × {self.policy}"
        )
        parts = [
            f"[{label} @ {self.load.describe()}]",
            f"servfail {overall.servfail_rate:.1%}",
            f"timeout {overall.timeout_rate:.1%}",
            f"leak-rate {overall.leak_rate:.3f}",
            f"p99 {overall.latency_p99:.3f}s",
            f"retries={overall.retries}",
            f"stale={overall.stale_served}",
            f"shed={overall.admission_rejected}",
        ]
        if self.fault_bounds is not None:
            during = self.during_fault()
            parts.append(
                f"during-fault servfail {during.servfail_rate:.1%} "
                f"timeout {during.timeout_rate:.1%}"
            )
        return " ".join(parts)


def _window_payload(window: ReplayWindow) -> dict:
    """The canonical JSON-able form of one window — every counter the
    availability monoid carries, floats via ``repr`` for bit-stability."""
    return {
        "start": repr(window.start),
        "end": repr(window.end),
        "queries": window.queries,
        "failures": window.failures,
        "servfails": window.servfails,
        "timeouts": window.timeouts,
        "dlv_queries": window.dlv_queries,
        "case1_queries": window.case1_queries,
        "case2_queries": window.case2_queries,
        "leaked_domains": sorted(window.leaked_domains),
        "cache_hits": window.cache_hits,
        "cache_misses": window.cache_misses,
        "packets": window.packets,
        "wire_bytes": window.wire_bytes,
        "dropped": window.dropped,
        "latency_sum": repr(window.latency_sum),
        "latency_max": repr(window.latency_max),
        "latency_buckets": list(window.latency_buckets),
        "sessions_started": window.sessions_started,
        "sessions_completed": window.sessions_completed,
        "retries": window.retries,
        "stale_served": window.stale_served,
        "admission_queued": window.admission_queued,
        "admission_rejected": window.admission_rejected,
    }


def chaos_replay_payload(result: ChaosReplayResult) -> dict:
    """The deterministic payload :func:`chaos_replay_fingerprint`
    hashes — also what the golden files pin, so a drift shows up as a
    readable diff before it shows up as a hash mismatch."""
    return {
        "scenario": result.scenario,
        "adversary": result.adversary,
        "policy": result.policy,
        "load": {
            "users": result.load.users,
            "per_user_qps": repr(result.load.per_user_qps),
            "queries": result.load.query_budget(),
            "window_seconds": repr(result.load.window_seconds),
            "max_concurrent": result.load.max_concurrent,
            "max_queue": result.load.max_queue,
            "seed": result.load.seed,
        },
        "fault_bounds": (
            None
            if result.fault_bounds is None
            else [repr(result.fault_bounds[0]), repr(result.fault_bounds[1])]
        ),
        "windows": [_window_payload(w) for w in result.windows],
        "responses_forged": result.responses_forged,
        "poisoned_cache_entries": result.poisoned_cache_entries,
        "upstream_sends": result.upstream_sends,
    }


def chaos_replay_fingerprint(result: ChaosReplayResult) -> str:
    """SHA-256 over the canonical window payload: same universe, same
    scenario, same load ⇒ same fingerprint, on any host."""
    blob = json.dumps(
        chaos_replay_payload(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _fault_bounds(
    universe: Universe, horizon: float
) -> Optional[Tuple[float, float]]:
    """The scripted outage span of *universe*'s fault plan, with an
    open-ended script clamped to the replay *horizon*."""
    windows = universe.network.faults.outage_windows()
    if not windows:
        return None
    start = min(window.start for _, window in windows)
    end = max(window.end for _, window in windows)
    if end == float("inf"):
        end = horizon
    return (start, end)


def _round_robin_names(
    names: Sequence[Name], users: int
) -> Callable[[int], Name]:
    """Each user cycles the full cell sample from its own phase offset:
    deterministic, covers every name, and keeps concurrent users from
    marching through the sample in lockstep (which would overstate the
    shared cache's hit rate)."""
    if not names:
        raise ValueError("chaos replay needs a non-empty name sample")
    cursors = [0] * users

    def next_name(user: int) -> Name:
        name = names[(user + cursors[user]) % len(names)]
        cursors[user] += 1
        return name

    return next_name


def _run_replay(
    universe: Universe,
    config: ResolverConfig,
    names: Sequence[Name],
    load: ReplayLoad,
    progress: Optional[Callable[[ReplayWindow], None]],
) -> Tuple[DriveOutcome, List[ReplayWindow], float]:
    started_wall = time.perf_counter()
    outcome = drive_replay_sessions(
        universe,
        config,
        _round_robin_names(names, load.users),
        users=load.users,
        per_user_qps=load.per_user_qps,
        queries=load.query_budget(),
        window_seconds=load.window_seconds,
        max_concurrent=load.max_concurrent,
        max_queue=load.max_queue,
        seed=load.seed,
        progress=progress,
    )
    return outcome, outcome.windows, time.perf_counter() - started_wall


def run_chaos_replay(
    universe: Universe,
    config: Optional[ResolverConfig] = None,
    names: Sequence[Name] = (),
    scenario: Optional[ChaosScenario] = None,
    scenario_label: str = "none",
    policy_label: str = "",
    load: LoadSpec = ReplayLoad(),
    progress: Optional[Callable[[ReplayWindow], None]] = None,
) -> ChaosReplayResult:
    """One chaos cell under load: script *scenario*'s fault windows
    onto *universe*, then replay *names* from ``load.users`` concurrent
    stubs while the faults are live.

    The scenario runs **before** any traffic (fault plans are scripted
    in simulated time, not wall time), so an outage window at, say,
    ``[900, 2700)`` hits whatever sessions happen to be in flight then —
    retry storms, backoff pile-ups, and admission pressure included.
    """
    config = config or correct_bind_config()
    replay_load = coerce_load(load) or ReplayLoad(users=1)
    if scenario is not None:
        scenario(universe)
    outcome, windows, wall = _run_replay(
        universe, config, names, replay_load, progress
    )
    overall = fold_windows(windows)
    resolver = outcome.resolver
    return ChaosReplayResult(
        scenario=scenario_label,
        policy=policy_label or config.describe(),
        load=replay_load,
        windows=windows,
        overall=overall,
        scheduler=outcome.scheduler,
        wall_seconds=wall,
        fault_bounds=_fault_bounds(universe, overall.end),
        stale_served=resolver.engine.stale_served,
        lookaside_skipped=resolver.lookaside.searches_skipped,
        lookaside_disabled=resolver.lookaside.disabled,
        upstream_sends=resolver.engine.queries_sent,
        crypto_verify_calls=resolver.validator.crypto_verify_calls,
        hardening=hardening_snapshot(resolver),
    )


def run_adversary_replay(
    universe: Universe,
    config: Optional[ResolverConfig] = None,
    names: Sequence[Name] = (),
    adversary: Optional[AdversaryScenario] = None,
    adversary_label: str = "none",
    policy_label: str = "",
    load: LoadSpec = ReplayLoad(),
    progress: Optional[Callable[[ReplayWindow], None]] = None,
) -> ChaosReplayResult:
    """One adversary cell under load: deploy the persona, then replay
    *names* concurrently while it forges on the wire.

    The persona's tamper hooks install on the universe's fault plan
    before any traffic, exactly as in the serial
    :func:`~repro.core.experiment.run_adversary_cell`; afterwards the
    result carries its forge counter and the cache's ground-truth
    poisoned-entry count."""
    config = config or correct_bind_config()
    replay_load = coerce_load(load) or ReplayLoad(users=1)
    persona = adversary(universe) if adversary is not None else None
    outcome, windows, wall = _run_replay(
        universe, config, names, replay_load, progress
    )
    overall = fold_windows(windows)
    resolver = outcome.resolver
    return ChaosReplayResult(
        scenario="none",
        policy=policy_label or config.hardening.describe(),
        load=replay_load,
        windows=windows,
        overall=overall,
        scheduler=outcome.scheduler,
        wall_seconds=wall,
        fault_bounds=_fault_bounds(universe, overall.end),
        adversary=adversary_label,
        responses_forged=persona.responses_forged if persona is not None else 0,
        poisoned_cache_entries=(
            poisoned_cache_entries(resolver, [persona])
            if persona is not None
            else 0
        ),
        stale_served=resolver.engine.stale_served,
        lookaside_skipped=resolver.lookaside.searches_skipped,
        lookaside_disabled=resolver.lookaside.disabled,
        upstream_sends=resolver.engine.queries_sent,
        crypto_verify_calls=resolver.validator.crypto_verify_calls,
        hardening=hardening_snapshot(resolver),
    )


# ----------------------------------------------------------------------
# Matrix cells under load (the `load=` axis lands here)
# ----------------------------------------------------------------------

def run_chaos_cell_under_load(
    universe: Universe,
    config: ResolverConfig,
    names: Sequence[Name],
    scenario: Optional[ChaosScenario] = None,
    scenario_label: str = "none",
    policy_label: str = "",
    load: ReplayLoad = ReplayLoad(),
) -> ChaosReport:
    """The under-load twin of
    :func:`~repro.core.experiment.run_chaos_cell`: same report shape,
    but the availability numbers come from the concurrent replay's
    overall window (``report.replay`` holds the full window stream;
    ``report.result`` is ``None`` — there is no per-name serial
    result under load)."""
    replay = run_chaos_replay(
        universe,
        config,
        names,
        scenario=scenario,
        scenario_label=scenario_label,
        policy_label=policy_label,
        load=load,
    )
    overall = replay.overall
    total = max(1, overall.queries)
    return ChaosReport(
        scenario=scenario_label,
        policy=policy_label or config.describe(),
        domains=len(names),
        noerror=overall.queries - overall.failures,
        servfail=overall.servfails,
        servfail_rate=overall.servfails / total,
        mean_response_time=overall.mean_latency,
        case2_queries=overall.case2_queries,
        registry_queries_delivered=overall.dlv_queries,
        stale_served=replay.stale_served,
        lookaside_skipped=replay.lookaside_skipped,
        lookaside_disabled=replay.lookaside_disabled,
        result=None,
        replay=replay,
    )


def run_adversary_cell_under_load(
    universe: Universe,
    config: ResolverConfig,
    names: Sequence[Name],
    adversary: Optional[AdversaryScenario] = None,
    adversary_label: str = "none",
    policy_label: str = "",
    baseline_sends: Optional[int] = None,
    load: ReplayLoad = ReplayLoad(),
) -> AdversaryReport:
    """The under-load twin of
    :func:`~repro.core.experiment.run_adversary_cell`; amplification is
    the resolver's upstream send count relative to the same policy's
    no-adversary baseline *at the same load*."""
    replay = run_adversary_replay(
        universe,
        config,
        names,
        adversary=adversary,
        adversary_label=adversary_label,
        policy_label=policy_label,
        load=load,
    )
    overall = replay.overall
    total = max(1, overall.queries)
    return AdversaryReport(
        adversary=adversary_label,
        policy=policy_label or config.hardening.describe(),
        domains=len(names),
        noerror=overall.queries - overall.failures,
        servfail=overall.servfails,
        servfail_rate=overall.servfails / total,
        upstream_sends=replay.upstream_sends,
        amplification=(
            replay.upstream_sends / baseline_sends if baseline_sends else 1.0
        ),
        poisoned_cache_entries=replay.poisoned_cache_entries,
        crypto_verify_calls=replay.crypto_verify_calls,
        hardening=replay.hardening,
        responses_forged=replay.responses_forged,
        case2_queries=overall.case2_queries,
        result=None,
        replay=replay,
    )
