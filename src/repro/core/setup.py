"""Canonical experiment setup shared by benches, examples, and tests.

Every table/figure reproduction builds its world through these helpers
so that all experiments run against the same calibrated universe
(registry population, deployment rates, latency model).  The defaults
reproduce the paper's headline numbers; see DESIGN.md for the
calibration targets and EXPERIMENTS.md for measured results.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Optional, Sequence

from .. import perf
from ..crypto.memo import BoundedMemo
from ..resolver import ResolverConfig, correct_bind_config
from ..workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams
from .experiment import LeakageExperiment

#: Workload populations are pure functions of (count, params) and are
#: rebuilt identically for every cell of a sweep or matrix; sharing the
#: instance is safe because nothing mutates a workload after
#: construction (its RNG is consumed at build time only).
_WORKLOAD_MEMO = BoundedMemo(8)

perf.register_cache(
    "core.workload_memo", _WORKLOAD_MEMO.clear, _WORKLOAD_MEMO.stats
)

#: Background DLV registry population (entries beyond the workload's own
#: deposits).  Calibrated so the leaked-domain curve saturates near the
#: paper's top-1M figure of ~68k domains.
DEFAULT_REGISTRY_FILLER_COUNT = 60_000

#: RSA modulus for experiment runs.  256-bit keys keep big sweeps fast;
#: validation logic is identical at any size (DESIGN.md).
EXPERIMENT_MODULUS_BITS = 256


def standard_workload(
    count: int, seed: int = 2016, **overrides
) -> AlexaWorkload:
    """The calibrated Alexa-like workload."""
    params = WorkloadParams(seed=seed, **overrides)
    if not perf.ENABLED:
        return AlexaWorkload(count, params)
    memo_key = (count, params)
    workload = _WORKLOAD_MEMO.get(memo_key)
    if workload is None:
        workload = AlexaWorkload(count, params)
        _WORKLOAD_MEMO.put(memo_key, workload)
    return workload


def standard_universe(
    workload: AlexaWorkload,
    filler_count: int = DEFAULT_REGISTRY_FILLER_COUNT,
    params: Optional[UniverseParams] = None,
    **overrides,
) -> Universe:
    """The calibrated universe for a workload.

    ``overrides`` are applied on top of the default
    :class:`~repro.workloads.UniverseParams` (e.g.
    ``registry_hashed=True``).
    """
    base = params or UniverseParams(modulus_bits=EXPERIMENT_MODULUS_BITS)
    filler = workload.registry_filler(filler_count)
    merged = dataclasses.replace(base, registry_filler=filler, **overrides)
    return Universe(workload.domains, merged)


def _standard_universe_for_seed(
    seed: int,
    domain_count: int,
    filler_count: int,
    workload_seed: int,
    overrides: dict,
) -> Universe:
    """Module-level builder behind :func:`standard_universe_factory`
    (kept top-level so the factory pickles for spawn-style pools)."""
    workload = standard_workload(domain_count, seed=workload_seed)
    return standard_universe(
        workload, filler_count=filler_count, seed=seed, **overrides
    )


def standard_universe_factory(
    domain_count: int,
    filler_count: int = DEFAULT_REGISTRY_FILLER_COUNT,
    workload_seed: int = 2016,
    **overrides,
) -> Callable[[int], Universe]:
    """A picklable ``seed -> Universe`` factory over the calibrated
    world — the shape :mod:`repro.core.parallel` shards need.

    The *workload* (domain population) is fixed by ``workload_seed``;
    the universe seed argument varies per shard (latency jitter, key
    material), which is how shards become statistically independent
    trials while staying bit-reproducible.
    """
    return functools.partial(
        _standard_universe_for_seed,
        domain_count=domain_count,
        filler_count=filler_count,
        workload_seed=workload_seed,
        overrides=dict(overrides),
    )


def standard_experiment(
    domain_count: int,
    config: Optional[ResolverConfig] = None,
    filler_count: int = DEFAULT_REGISTRY_FILLER_COUNT,
    seed: int = 2016,
    **universe_overrides,
) -> LeakageExperiment:
    """Workload + universe + experiment in one call.

    The returned experiment carries a universe factory, so
    ``.run(names, parallelism=N)`` shards out of the box.
    """
    workload = standard_workload(domain_count, seed=seed)
    universe = standard_universe(
        workload, filler_count=filler_count, **universe_overrides
    )
    return LeakageExperiment(
        universe,
        config or correct_bind_config(),
        universe_factory=standard_universe_factory(
            domain_count,
            filler_count=filler_count,
            workload_seed=seed,
            **universe_overrides,
        ),
        seed=seed,
    )
