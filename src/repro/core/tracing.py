"""Per-resolution span trees: follow one stub query through the system.

The aggregate reports (:class:`~repro.core.leakage.LeakageReport`,
:class:`~repro.core.observability.ObserverExposure`) answer *how much*
leaked; a trace answers *why*.  Every stub query becomes one root span
(``resolution``) whose children record, in causal order and on the
simulated clock, each upstream exchange, cache hit, DLV look-aside
probe, signature verification, fault injection, and hardening rejection
that the query triggered.  The DLV probes carry the paper's Case-1 /
Case-2 classification directly on the span (``leak="case-2"`` marks a
query the registry had no business seeing — the privacy leak of
Sections 3 and 5).

Design constraints, in order:

1. **Zero dependencies.**  This module imports nothing from the
   resolver or netsim layers; they receive a tracer by parameter
   (duck-typed) and guard every emission with ``if tracer is not
   None``, so the disabled path costs one attribute check.
2. **Determinism.**  Trace and span ids are sequential, timestamps
   come from the :class:`~repro.netsim.clock.SimClock`, and the JSONL
   export sorts keys — the same seed and workload produce a
   byte-identical export (enforced by ``tests/core/test_tracing.py``).
3. **Plain data.**  A :class:`Span` is a dataclass of JSON-safe
   scalars; export/import round-trips losslessly.

Span vocabulary (see ``docs/OBSERVABILITY.md`` for the full schema):

==================  ====================================================
``resolution``      root: one stub query, from arrival to answer
``resolve``         one engine resolution (recursive for NS fetches)
``exchange``        one query/response attempt on the wire
``lookaside``       one DLV registry search (label-stripping loop)
``dlv_probe``       one candidate probe inside a search; carries
                    ``leak`` = ``case-1`` / ``case-2`` / ``none``
``validate``        validation of one resolution outcome
``zone_security``   chain-of-trust computation for one zone apex
``signature_verify``  event: one RRSIG check (ok / failed)
``cache_hit``       event: answer served from cache (fresh or stale)
``fault``           event: injected loss / outage / brownout / tamper
``hardening``       event: a defence fired (spoof, scrub, budget, …)
==================  ====================================================
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclasses.dataclass
class Span:
    """One node of a trace tree.

    ``start`` / ``end`` are simulated-clock seconds; an *event* span is
    instantaneous (``start == end``).  ``attrs`` holds only JSON-safe
    scalars (str / int / float / bool / None) so the tree exports
    losslessly.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    children: List["Span"] = dataclasses.field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds of simulated time the span covers (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order iteration over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named *name* in this subtree, pre-order."""
        return [span for span in self.walk() if span.name == name]


class Tracer:
    """Builds span trees against a simulated clock.

    The API is a stack discipline: :meth:`begin` opens a child of the
    currently-open span (or a new root trace), :meth:`finish` closes
    the innermost open span, :meth:`event` records an instantaneous
    child, and :meth:`annotate` adds attributes to the innermost open
    span.  Finished root spans accumulate until :meth:`drain` collects
    them.

    One tracer instance is shared by the resolver *and* the network
    (see ``Universe.attach_telemetry``), so fault events injected
    mid-exchange nest under the exchange span that suffered them.

    Example::

        tracer = Tracer(universe.clock)
        universe.attach_telemetry(tracer=tracer)
        resolver = universe.make_resolver(correct_bind_config())
        universe.make_stub(resolver).query(Name.from_text("example.com"))
        (root,) = tracer.drain()
        print(render_span_tree(root))
    """

    def __init__(self, clock):
        self._clock = clock
        #: The open-span stack and the per-trace span counter are
        #: **thread-local**: under the event scheduler each concurrent
        #: stub session runs on its own pooled thread and builds its own
        #: span tree, so interleaved sessions cannot corrupt each
        #: other's stack discipline.  Trace ids (``_trace_seq``) and the
        #: finished-roots list stay *shared* and are touched only at
        #: root open / root close — which the scheduler's strict
        #: hand-off serialises in deterministic event order, so trace
        #: ids and drain order depend on the event schedule, not on
        #: thread identity.  On the serial path there is one thread and
        #: this is byte-identical to the old behaviour.
        self._local = threading.local()
        self._finished: List[Span] = []
        self._trace_seq = 0

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Emission API (duck-typed: NullTracer mirrors these signatures)
    # ------------------------------------------------------------------

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span: a child of the current span, or a new root."""
        stack = self._stack
        if stack:
            parent: Optional[Span] = stack[-1]
            trace_id = parent.trace_id  # type: ignore[union-attr]
            parent_id: Optional[int] = parent.span_id  # type: ignore[union-attr]
        else:
            parent = None
            self._trace_seq += 1
            self._local.span_seq = 0
            trace_id = self._trace_seq
            parent_id = None
        self._local.span_seq += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._local.span_seq,
            parent_id=parent_id,
            name=name,
            start=self._clock.now,
            attrs=dict(attrs),
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return span

    def finish(self, **attrs: Any) -> Span:
        """Close the innermost open span, merging *attrs* into it.

        Root closes append to the shared finished list, so drained trace
        order is *completion* order on the simulated clock — the order a
        log shipper tailing the resolver would emit them in.
        """
        stack = self._stack
        if not stack:
            raise RuntimeError("finish() with no open span")
        span = stack.pop()
        span.end = self._clock.now
        if attrs:
            span.attrs.update(attrs)
        if not stack:
            self._finished.append(span)
        return span

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous span (a point event).

        With no span open, the event becomes its own single-node trace
        — nothing is silently dropped.
        """
        span = self.begin(name, **attrs)
        return self.finish() if span is not None else span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when no
        span is open)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any):
        """``with tracer.span("name"):`` — begin/finish as a scope."""
        self.begin(name, **attrs)
        try:
            yield self._stack[-1]
        finally:
            self.finish()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 between resolutions)."""
        return len(self._stack)

    def drain(self) -> List[Span]:
        """Collect (and clear) the finished root spans."""
        roots, self._finished = self._finished, []
        return roots

    def peek(self) -> Tuple[Span, ...]:
        """The finished roots, without clearing them."""
        return tuple(self._finished)


class NullTracer:
    """A tracer that records nothing but accepts every call.

    Used by the overhead benchmark to measure the cost of the emission
    *call sites* (attribute formatting plus a method call) as distinct
    from the cost of building span trees; ``tracer=None`` remains the
    true disabled path.
    """

    def begin(self, name: str, **attrs: Any) -> None:
        return None

    def finish(self, **attrs: Any) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any):
        yield None

    @property
    def open_depth(self) -> int:
        return 0

    def drain(self) -> List[Span]:
        return []

    def peek(self) -> Tuple[Span, ...]:
        return ()


# ----------------------------------------------------------------------
# Deterministic JSONL export / import
# ----------------------------------------------------------------------

def span_to_rows(root: Span) -> List[Dict[str, Any]]:
    """Flatten a span tree to dict rows, depth-first pre-order."""
    rows = []
    for span in root.walk():
        rows.append(
            {
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            }
        )
    return rows


def export_traces_jsonl(roots: Sequence[Span]) -> str:
    """Serialise trace trees to JSON Lines: one span per line,
    depth-first pre-order, keys sorted, no whitespace — the same trees
    always produce byte-identical text."""
    lines = []
    for root in roots:
        for row in span_to_rows(root):
            lines.append(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
            )
    return "\n".join(lines) + ("\n" if lines else "")


def import_traces_jsonl(text: str) -> List[Span]:
    """Rebuild trace trees from :func:`export_traces_jsonl` output.

    Children re-attach by ``(trace, parent)``; the pre-order line order
    preserves sibling order, so ``export(import(export(x))) ==
    export(x)``.
    """
    roots: List[Span] = []
    by_id: Dict[Tuple[int, int], Span] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        span = Span(
            trace_id=row["trace"],
            span_id=row["span"],
            parent_id=row["parent"],
            name=row["name"],
            start=row["start"],
            end=row["end"],
            attrs=row["attrs"],
        )
        by_id[(span.trace_id, span.span_id)] = span
        if span.parent_id is None:
            roots.append(span)
        else:
            by_id[(span.trace_id, span.parent_id)].children.append(span)
    return roots


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _format_attrs(attrs: Dict[str, Any]) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def _format_span_line(span: Span) -> str:
    timing = f"@{span.start:.3f}s"
    if span.end is not None and span.end > span.start:
        timing += f" +{span.duration * 1000:.1f}ms"
    attrs = _format_attrs(span.attrs)
    return f"{span.name} [{timing}]" + (f" {attrs}" if attrs else "")


def render_span_tree(root: Span) -> str:
    """ASCII-render one trace tree, one span per line.

    Example output (abridged)::

        resolution [@0.000s +1007.5ms] qname=shop-31.info. qtype=A
        ├── resolve [@0.000s +861.6ms] qname=shop-31.info. qtype=A
        │   ├── exchange [@0.000s +33.4ms] server=10.0.2.74 ...
        ...
        └── lookaside [@0.911s +96.4ms] zone=shop-31.info. leak=case-2
            └── dlv_probe [@0.911s +96.4ms] ... leak=case-2
    """
    lines = [_format_span_line(root)]

    def _render(children: List[Span], prefix: str) -> None:
        for index, child in enumerate(children):
            last = index == len(children) - 1
            branch = "└── " if last else "├── "
            lines.append(prefix + branch + _format_span_line(child))
            _render(child.children, prefix + ("    " if last else "│   "))

    _render(root.children, "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-observer leak summary
# ----------------------------------------------------------------------

@dataclasses.dataclass
class ObserverTraceSummary:
    """What one server address observed across a set of traces."""

    address: str
    #: Human-readable role ("root", "tld:com", "dlv-registry", …), or
    #: the address itself when no observer map was supplied.
    role: str
    #: Upstream exchanges this address received (per-attempt).
    exchanges: int
    #: Distinct query names it saw.
    distinct_qnames: int
    #: Case-1 DLV probes (deposited names — involved-party traffic)
    #: whose wire exchanges this address served.
    case1_probes: int
    #: Case-2 DLV probes (the privacy leak) it served.
    case2_probes: int
    #: The leaked look-aside query names themselves.
    leaked_qnames: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.role:<14} {self.exchanges:>5} exchanges, "
            f"{self.distinct_qnames:>4} qnames, "
            f"case-1 {self.case1_probes}, case-2 {self.case2_probes}"
        )


def observer_trace_summary(
    roots: Sequence[Span],
    observers: Optional[Dict[str, str]] = None,
) -> List[ObserverTraceSummary]:
    """Distil *who saw what* from trace trees.

    Every ``exchange`` span names the server it queried; every
    ``dlv_probe`` span carries the Case-1/Case-2 classification of its
    look-aside query.  A probe's leak is attributed to each server that
    answered an exchange inside the probe subtree (the registry always;
    ancestors like the root when the probe walked referrals there).

    ``observers`` maps address → role as produced by
    :func:`~repro.core.observability.universe_observers`; when given,
    only listed addresses are reported (mirroring
    :func:`~repro.core.observability.observer_exposures`).
    """
    exchanges: Dict[str, int] = {}
    qnames: Dict[str, set] = {}
    case1: Dict[str, int] = {}
    case2: Dict[str, int] = {}
    leaked: Dict[str, List[str]] = {}

    def _track(address: str) -> bool:
        if observers is not None and address not in observers:
            return False
        exchanges.setdefault(address, 0)
        qnames.setdefault(address, set())
        case1.setdefault(address, 0)
        case2.setdefault(address, 0)
        leaked.setdefault(address, [])
        return True

    if observers:
        for address in observers:
            _track(address)
    for root in roots:
        for span in root.walk():
            if span.name == "exchange":
                address = span.attrs.get("server")
                if address is None or not _track(address):
                    continue
                exchanges[address] += 1
                qname = span.attrs.get("qname")
                if qname is not None:
                    qnames[address].add(qname)
            elif span.name == "dlv_probe":
                leak = span.attrs.get("leak")
                if leak not in ("case-1", "case-2"):
                    continue
                served_by = {
                    child.attrs.get("server")
                    for child in span.walk()
                    if child.name == "exchange"
                    and not child.attrs.get("failed", False)
                }
                served_by.discard(None)
                for address in served_by:
                    if not _track(address):
                        continue
                    if leak == "case-1":
                        case1[address] += 1
                    else:
                        case2[address] += 1
                        dlv_name = span.attrs.get("dlv_name")
                        if dlv_name is not None:
                            leaked[address].append(dlv_name)
    return [
        ObserverTraceSummary(
            address=address,
            role=observers.get(address, address) if observers else address,
            exchanges=exchanges[address],
            distinct_qnames=len(qnames[address]),
            case1_probes=case1[address],
            case2_probes=case2[address],
            leaked_qnames=tuple(leaked[address]),
        )
        for address in exchanges
    ]
