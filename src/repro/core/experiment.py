"""The measurement harness: drive a workload, capture, classify.

This is the reproduction of the paper's experimental procedure
(Section 4.1): configure a resolver, query the sample domains from a
stub, capture all packets, and analyse (1) whether DNSSEC succeeded,
(2) which queries went to the DLV registry, and (3) whether the
registry provided validation utility.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence

from ..dnscore import Name, RCode, RRType
from ..resolver import RecursiveResolver, ResolverConfig, ValidationStatus
from ..workloads import Universe
from .leakage import LeakageClassifier, LeakageReport
from .overhead import OverheadMetrics


@dataclasses.dataclass
class ExperimentResult:
    """Everything one run produced."""

    names: List[Name]
    leakage: LeakageReport
    overhead: OverheadMetrics
    #: Validation status distribution over stub queries.
    status_counts: Dict[str, int]
    #: rcode distribution of stub answers.
    rcode_counts: Dict[str, int]
    #: Number of answers carrying AD (validated secure).
    authenticated_answers: int
    #: Read-only view over this run's captured packets.
    capture: "_CaptureSlice" = dataclasses.field(default=None, repr=False)  # type: ignore[assignment]

    def summary(self) -> str:
        leak = self.leakage
        return (
            f"{leak.domains_queried} domains; {leak.dlv_queries} DLV queries "
            f"({leak.case2_queries} case-2); leaked domains: "
            f"{leak.leaked_count} ({leak.leaked_proportion:.1%}); "
            f"utility: {leak.utility_fraction:.2%}; "
            f"time {self.overhead.response_time:.2f}s, "
            f"{self.overhead.traffic_mb:.2f} MB, "
            f"{self.overhead.queries_issued} queries"
        )


class LeakageExperiment:
    """Runs one workload against one resolver configuration."""

    def __init__(
        self,
        universe: Universe,
        config: ResolverConfig,
        ptr_fraction: float = 0.01,
        dnssec_ok_stub: bool = True,
    ):
        self.universe = universe
        self.config = config
        self.resolver = universe.make_resolver(config)
        self.stub = universe.make_stub(self.resolver)
        self.classifier = LeakageClassifier(
            registry=universe.registry_zone,
            registry_address=universe.registry_address,
        )
        self._ptr_fraction = ptr_fraction
        self._dnssec_ok_stub = dnssec_ok_stub

    def run(self, names: Sequence[Name]) -> ExperimentResult:
        """Query every name (type A, plus a deterministic PTR fraction),
        then classify the capture."""
        capture = self.universe.capture
        start_index = len(capture)
        start_time = self.universe.clock.now
        start_bytes = capture.total_bytes()
        rcode_counts: Dict[str, int] = {}
        authenticated = 0
        for name in names:
            response = self.stub.query(
                name, RRType.A, dnssec_ok=self._dnssec_ok_stub
            )
            rcode_counts[response.rcode.name] = (
                rcode_counts.get(response.rcode.name, 0) + 1
            )
            if response.flags.ad:
                authenticated += 1
            if self._wants_ptr(name):
                reverse = self._reverse_name(name)
                if reverse is not None:
                    self.stub.query(reverse, RRType.PTR, dnssec_ok=False)
        # Slice the capture to this run's packets.
        run_records = list(capture)[start_index:]
        run_capture = _CaptureSlice(run_records)
        leakage = self.classifier.report(run_capture, list(names))
        overhead = OverheadMetrics.from_capture(
            run_capture,
            response_time=self.universe.clock.now - start_time,
        )
        status_counts = self._status_histogram(names)
        return ExperimentResult(
            names=list(names),
            leakage=leakage,
            overhead=overhead,
            status_counts=status_counts,
            rcode_counts=rcode_counts,
            authenticated_answers=authenticated,
            capture=run_capture,
        )

    # ------------------------------------------------------------------
    # PTR side traffic (small, deterministic — see Table 4's PTR column)
    # ------------------------------------------------------------------

    def _wants_ptr(self, name: Name) -> bool:
        if self._ptr_fraction <= 0:
            return False
        digest = hashlib.md5(name.to_text().encode("ascii")).digest()
        return digest[3] / 255.0 < self._ptr_fraction

    def _reverse_name(self, name: Name) -> Optional[Name]:
        address = self.universe.apex_address(name)
        if address is None:
            return None
        octets = address.split(".")
        return Name(list(reversed(octets)) + ["in-addr", "arpa"])

    # ------------------------------------------------------------------
    # Validation-status bookkeeping
    # ------------------------------------------------------------------

    def _status_histogram(self, names: Sequence[Name]) -> Dict[str, int]:
        """Read the resolver's memoised conclusions for the queried
        zones — a pure cache read, so it adds no traffic and cannot
        perturb the captured run.
        """
        counts: Dict[str, int] = {}
        if not self.config.validation_machinery_active:
            return counts
        memo = self.resolver.validator._zone_security
        for name in names:
            security = memo.get(name)
            key = security.status.value if security is not None else "unknown"
            counts[key] = counts.get(key, 0) + 1
        return counts


class _CaptureSlice:
    """A read-only view over a subset of capture records, exposing the
    Capture analysis API the classifier and metrics need."""

    def __init__(self, records):
        self._records = list(records)

    def __iter__(self):
        return iter(self._records)

    def __len__(self):
        return len(self._records)

    def queries(self):
        return [r for r in self._records if r.is_query]

    def queries_of_type(self, rtype: RRType):
        return [
            r for r in self._records if r.is_query and r.qtype is rtype
        ]

    def queries_to(self, address: str):
        return [
            r for r in self._records if r.is_query and r.dst == address
        ]

    def total_bytes(self) -> int:
        return sum(r.wire_size for r in self._records)

    def query_count(self) -> int:
        return sum(1 for r in self._records if r.is_query)

    def query_type_histogram(self):
        counts: Dict[RRType, int] = {}
        for record in self._records:
            if record.is_query and record.qtype is not None:
                counts[record.qtype] = counts.get(record.qtype, 0) + 1
        return counts
