"""The measurement harness: drive a workload, capture, classify.

This is the reproduction of the paper's experimental procedure
(Section 4.1): configure a resolver, query the sample domains from a
stub, capture all packets, and analyse (1) whether DNSSEC succeeded,
(2) which queries went to the DLV registry, and (3) whether the
registry provided validation utility.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..dnscore import Name, RCode, RRType
from ..netsim import AdversaryPersona
from ..resolver import RecursiveResolver, ResolverConfig, ValidationStatus
from ..workloads import Universe
from .attacks import schedule_outage
from .leakage import LeakageClassifier, LeakageReport
from .metrics import MetricsRegistry
from .observability import (
    HardeningSnapshot,
    hardening_snapshot,
    poisoned_cache_entries,
)
from .overhead import OverheadMetrics
from .tracing import Span, Tracer


@dataclasses.dataclass
class ExperimentResult:
    """Everything one run produced."""

    names: List[Name]
    leakage: LeakageReport
    overhead: OverheadMetrics
    #: Validation status distribution over stub queries.
    status_counts: Dict[str, int]
    #: rcode distribution of stub answers.
    rcode_counts: Dict[str, int]
    #: Number of answers carrying AD (validated secure).
    authenticated_answers: int
    #: Read-only view over this run's captured packets (``None`` only
    #: for synthetic results, e.g. the merge identity in
    #: :func:`~repro.core.parallel.empty_result`).
    capture: Optional["_CaptureSlice"] = dataclasses.field(
        default=None, repr=False
    )
    #: Root spans drained from the experiment's tracer, one per stub
    #: query (empty when the run was untraced).
    traces: Sequence[Span] = dataclasses.field(default=(), repr=False)
    #: :meth:`~repro.core.metrics.MetricsRegistry.snapshot` of the
    #: run's metrics registry (``None`` when no registry was attached).
    metrics: Optional[Dict[str, Dict]] = dataclasses.field(
        default=None, repr=False
    )

    def summary(self) -> str:
        leak = self.leakage
        return (
            f"{leak.domains_queried} domains; {leak.dlv_queries} DLV queries "
            f"({leak.case2_queries} case-2); leaked domains: "
            f"{leak.leaked_count} ({leak.leaked_proportion:.1%}); "
            f"utility: {leak.utility_fraction:.2%}; "
            f"time {self.overhead.response_time:.2f}s, "
            f"{self.overhead.traffic_mb:.2f} MB, "
            f"{self.overhead.queries_issued} queries"
        )


class LeakageExperiment:
    """Runs one workload against one resolver configuration."""

    def __init__(
        self,
        universe: Universe,
        config: ResolverConfig,
        ptr_fraction: float = 0.01,
        dnssec_ok_stub: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        universe_factory: Optional[Callable[[int], Universe]] = None,
        seed: Optional[int] = None,
    ):
        self.universe = universe
        self.config = config
        #: Rebuilds a fresh universe from a sub-seed — required only for
        #: sharded runs (``run(..., parallelism=N)``), where every shard
        #: gets its own world (see :mod:`repro.core.parallel`).
        self.universe_factory = universe_factory
        #: Base seed for shard sub-seed derivation.
        self.seed = seed if seed is not None else universe.params.seed
        if tracer is not None or metrics is not None:
            universe.attach_telemetry(tracer=tracer, metrics=metrics)
        #: Telemetry sinks this run drains/snapshots — whatever is
        #: attached to the universe, whether passed here or installed
        #: earlier via :meth:`Universe.attach_telemetry`.
        self.tracer = universe.tracer
        self.metrics = universe.metrics
        self.resolver = universe.make_resolver(config)
        self.stub = universe.make_stub(self.resolver)
        self.classifier = LeakageClassifier(
            registry=universe.registry_zone,
            registry_address=universe.registry_address,
        )
        self._ptr_fraction = ptr_fraction
        self._dnssec_ok_stub = dnssec_ok_stub

    def run(
        self,
        names: Sequence[Name],
        parallelism: int = 1,
        shards: Optional[int] = None,
        executor=None,
    ) -> ExperimentResult:
        """Query every name (type A, plus a deterministic PTR fraction),
        then classify the capture.

        With ``parallelism > 1`` (or an explicit ``shards``/
        ``executor``) the workload is split into deterministic shards
        and fanned out by :func:`~repro.core.parallel.run_sharded_experiment`;
        this requires a ``universe_factory`` (each shard runs in a
        fresh universe built from a derived sub-seed).  Pin ``shards``
        while varying ``parallelism`` to get byte-identical merged
        output across worker counts — the shard plan, not the pool,
        defines the result.
        """
        if parallelism > 1 or shards is not None or executor is not None:
            if self.universe_factory is None:
                raise ValueError(
                    "sharded run requires a universe_factory: construct "
                    "LeakageExperiment(..., universe_factory=...) or use "
                    "repro.core.standard_experiment()"
                )
            from .parallel import run_sharded_experiment

            return run_sharded_experiment(
                self.universe_factory,
                self.config,
                names,
                seed=self.seed,
                shards=shards,
                parallelism=parallelism,
                executor=executor,
                ptr_fraction=self._ptr_fraction,
                dnssec_ok_stub=self._dnssec_ok_stub,
                trace=self.tracer is not None,
            )
        capture = self.universe.capture
        start_index = len(capture)
        start_time = self.universe.clock.now
        start_bytes = capture.total_bytes()
        rcode_counts: Dict[str, int] = {}
        authenticated = 0
        for name in names:
            response = self.stub.query(
                name, RRType.A, dnssec_ok=self._dnssec_ok_stub
            )
            rcode_counts[response.rcode.name] = (
                rcode_counts.get(response.rcode.name, 0) + 1
            )
            if response.flags.ad:
                authenticated += 1
            if self._wants_ptr(name):
                reverse = self._reverse_name(name)
                if reverse is not None:
                    self.stub.query(reverse, RRType.PTR, dnssec_ok=False)
        # Slice the capture to this run's packets.
        run_records = list(capture)[start_index:]
        run_capture = _CaptureSlice(run_records)
        leakage = self.classifier.report(run_capture, list(names))
        overhead = OverheadMetrics.from_capture(
            run_capture,
            response_time=self.universe.clock.now - start_time,
        )
        status_counts = self._status_histogram(names)
        traces = tuple(self.tracer.drain()) if self.tracer is not None else ()
        metrics_snapshot = (
            self.metrics.snapshot() if self.metrics is not None else None
        )
        return ExperimentResult(
            names=list(names),
            leakage=leakage,
            overhead=overhead,
            status_counts=status_counts,
            rcode_counts=rcode_counts,
            authenticated_answers=authenticated,
            capture=run_capture,
            traces=traces,
            metrics=metrics_snapshot,
        )

    # ------------------------------------------------------------------
    # PTR side traffic (small, deterministic — see Table 4's PTR column)
    # ------------------------------------------------------------------

    def _wants_ptr(self, name: Name) -> bool:
        if self._ptr_fraction <= 0:
            return False
        digest = hashlib.md5(name.to_text().encode("ascii")).digest()
        return digest[3] / 255.0 < self._ptr_fraction

    def _reverse_name(self, name: Name) -> Optional[Name]:
        address = self.universe.apex_address(name)
        if address is None:
            return None
        octets = address.split(".")
        return Name(list(reversed(octets)) + ["in-addr", "arpa"])

    # ------------------------------------------------------------------
    # Validation-status bookkeeping
    # ------------------------------------------------------------------

    def _status_histogram(self, names: Sequence[Name]) -> Dict[str, int]:
        """Read the resolver's memoised conclusions for the queried
        zones — a pure cache read, so it adds no traffic and cannot
        perturb the captured run.
        """
        counts: Dict[str, int] = {}
        if not self.config.validation_machinery_active:
            return counts
        memo = self.resolver.validator._zone_security
        for name in names:
            security = memo.get(name)
            key = security.status.value if security is not None else "unknown"
            counts[key] = counts.get(key, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Chaos harness: fault plans × degradation policies
# ----------------------------------------------------------------------

#: A scenario scripts faults onto a freshly built universe (typically
#: via :func:`~repro.core.attacks.schedule_outage` /
#: :func:`~repro.core.attacks.schedule_brownout`).  ``None`` = fault-free.
ChaosScenario = Callable[[Universe], None]


def registry_outage_scenario(
    rcode: Optional[RCode] = RCode.SERVFAIL,
    start: float = 0.0,
    end: float = float("inf"),
) -> ChaosScenario:
    """A scenario taking down the DLV registry (Section 8.4).

    ``rcode=None`` black-holes it; an rcode keeps the host answering
    but the service broken — the mode that still *sees* every query.
    """

    def scenario(universe: Universe) -> None:
        schedule_outage(
            universe.network,
            universe.registry_address,
            start=start,
            end=end,
            rcode=rcode,
        )

    return scenario


@dataclasses.dataclass
class ChaosReport:
    """How one resolver policy behaved under one fault scenario."""

    scenario: str
    policy: str
    domains: int
    #: Stub-visible availability.
    noerror: int
    servfail: int
    servfail_rate: float
    mean_response_time: float
    #: Registry exposure while degraded: Case-2 queries the registry
    #: operator could observe (dropped packets never arrive, so a
    #: black-holed registry observes nothing).
    case2_queries: int
    registry_queries_delivered: int
    #: Resilience machinery activity.
    stale_served: int
    lookaside_skipped: int
    lookaside_disabled: bool
    #: The full serial run (``None`` for under-load cells, which have
    #: no per-name serial result — see ``replay``).
    result: Optional[ExperimentResult] = dataclasses.field(
        default=None, repr=False
    )
    #: The concurrent replay behind an under-load cell
    #: (:class:`~repro.core.chaos_replay.ChaosReplayResult`; ``None``
    #: for serial cells).
    replay: Optional[object] = dataclasses.field(default=None, repr=False)

    def describe(self) -> str:
        return (
            f"[{self.scenario} × {self.policy}] "
            f"servfail {self.servfail_rate:.1%} "
            f"({self.noerror} ok / {self.servfail} fail), "
            f"mean rt {self.mean_response_time * 1000:.0f} ms, "
            f"case-2 exposure {self.case2_queries}, "
            f"stale {self.stale_served}, "
            f"skipped {self.lookaside_skipped}"
            + (" [lookaside auto-disabled]" if self.lookaside_disabled else "")
        )


def _make_telemetry(universe: Universe, trace: bool):
    """Telemetry sinks for one matrix cell: a tracer on the universe's
    simulated clock plus a fresh registry, or ``(None, None)``."""
    if not trace:
        return None, None
    return Tracer(universe.clock), MetricsRegistry()


def run_chaos_cell(
    universe: Universe,
    config: ResolverConfig,
    names: Sequence[Name],
    scenario: Optional[ChaosScenario] = None,
    scenario_label: str = "none",
    policy_label: str = "",
    trace: bool = False,
    load=None,
) -> ChaosReport:
    """One cell of the chaos matrix: script the faults, run the
    workload, distil availability / latency / exposure.

    With ``trace=True`` the cell runs fully instrumented: the returned
    report's ``result.traces`` holds one span tree per stub query and
    ``result.metrics`` the cell's counter/histogram snapshot.

    ``load`` selects the execution regime: ``None`` is the serial cell;
    ``1`` runs the *same* serial experiment as a single session on the
    event scheduler (byte-identical result — the equivalence contract);
    an ``int > 1`` or a :class:`~repro.core.chaos_replay.ReplayLoad`
    replays the cell under concurrent load (``report.replay`` carries
    the window stream, ``report.result`` is ``None``).
    """
    if load is not None and load != 1:
        from .chaos_replay import coerce_load, run_chaos_cell_under_load

        return run_chaos_cell_under_load(
            universe,
            config,
            names,
            scenario=scenario,
            scenario_label=scenario_label,
            policy_label=policy_label,
            load=coerce_load(load),
        )
    if scenario is not None:
        scenario(universe)
    tracer, metrics = _make_telemetry(universe, trace)
    experiment = LeakageExperiment(universe, config, tracer=tracer, metrics=metrics)
    if load == 1:
        from .replay import run_experiment_in_session

        result = run_experiment_in_session(experiment, names)
    else:
        result = experiment.run(names)
    servfail = result.rcode_counts.get(RCode.SERVFAIL.name, 0)
    noerror = result.rcode_counts.get(RCode.NOERROR.name, 0)
    total = max(1, len(names))
    registry_queries = (
        result.capture.queries_to(universe.registry_address)
        if result.capture is not None
        else ()
    )
    delivered = sum(1 for record in registry_queries if not record.dropped)
    resolver = experiment.resolver
    return ChaosReport(
        scenario=scenario_label,
        policy=policy_label or config.describe(),
        domains=len(names),
        noerror=noerror,
        servfail=servfail,
        servfail_rate=servfail / total,
        mean_response_time=result.overhead.response_time / total,
        case2_queries=result.leakage.case2_queries,
        registry_queries_delivered=delivered,
        stale_served=resolver.engine.stale_served,
        lookaside_skipped=resolver.lookaside.searches_skipped,
        lookaside_disabled=resolver.lookaside.disabled,
        result=result,
    )


def _drain_quarantine(quarantined, sink, where: str) -> None:
    """Hand quarantined cells to the caller's sink, or warn so a
    keep-going matrix can never swallow failures silently."""
    if not quarantined:
        return
    if sink is not None:
        sink.extend(quarantined)
        return
    import warnings

    summary = "; ".join(cell.describe() for cell in quarantined)
    warnings.warn(
        f"{where}: {len(quarantined)} cell(s) quarantined and omitted "
        f"from the report list ({summary}); pass quarantine=[] to "
        "collect them, or fail_fast=True to raise instead",
        RuntimeWarning,
        stacklevel=3,
    )


def run_chaos_matrix(
    universe_factory: Callable[[], Universe],
    names: Sequence[Name],
    scenarios: Mapping[str, Optional[ChaosScenario]],
    configs: Mapping[str, ResolverConfig],
    trace: bool = False,
    parallelism: int = 1,
    executor=None,
    fail_fast: bool = False,
    timeout: Optional[float] = None,
    retries: int = 0,
    quarantine: Optional[List] = None,
    load=None,
) -> List[ChaosReport]:
    """Sweep fault scenarios × resolver policies.

    Every cell gets a *fresh* universe from ``universe_factory`` so the
    cells are independent and each one's capture is reproducible: same
    factory, same names, same scenario ⇒ byte-identical packet trace.
    That independence is also what makes the matrix embarrassingly
    parallel: with ``parallelism > 1`` the cells fan out over a worker
    pool (see :mod:`repro.core.parallel`) and the returned list — in
    the same scenario-major order as the serial sweep — is
    byte-identical to the ``parallelism=1`` run.

    Failure containment (:class:`~repro.core.parallel.FaultTolerantExecutor`):
    by default the matrix **keeps going** — a cell that fails (raises,
    times out against ``timeout``, or loses its worker) is retried
    ``retries`` times and then quarantined, the healthy cells complete,
    and the quarantined ones are appended to the caller's ``quarantine``
    list (or warned about).  ``fail_fast=True`` raises the first cell's
    typed failure instead.

    ``load`` applies :func:`run_chaos_cell`'s execution regime to every
    cell: ``load=1`` reproduces the serial sweep byte-identically
    through the scheduler, higher loads replay every cell concurrently.
    """
    from .parallel import run_tasks_fault_tolerant

    def make_cell(scenario_label, scenario, policy_label, config):
        def cell() -> ChaosReport:
            return run_chaos_cell(
                universe_factory(),
                config,
                names,
                scenario=scenario,
                scenario_label=scenario_label,
                policy_label=policy_label,
                trace=trace,
                load=load,
            )

        cell.cell_context = f"chaos '{scenario_label}' × '{policy_label}'"
        return cell

    tasks = [
        make_cell(scenario_label, scenario, policy_label, config)
        for scenario_label, scenario in scenarios.items()
        for policy_label, config in configs.items()
    ]
    results, quarantined, _ = run_tasks_fault_tolerant(
        tasks,
        parallelism=parallelism,
        executor=executor,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
    )
    _drain_quarantine(quarantined, quarantine, "run_chaos_matrix")
    return [report for report in results if report is not None]


# ----------------------------------------------------------------------
# Adversary matrix: byzantine personas × hardening policies
# ----------------------------------------------------------------------

#: An adversary scenario deploys a persona (or several) onto a freshly
#: built universe and returns it, so the harness can read its counters
#: and recognise its poison.  ``None`` = the no-adversary control cell.
AdversaryScenario = Callable[[Universe], AdversaryPersona]


@dataclasses.dataclass
class AdversaryReport:
    """How one hardening policy fared against one adversary persona."""

    adversary: str
    policy: str
    domains: int
    #: Stub-visible availability.
    noerror: int
    servfail: int
    servfail_rate: float
    #: Queries the resolver itself sent upstream (excludes stub traffic).
    upstream_sends: int
    #: ``upstream_sends`` relative to the same policy's no-adversary
    #: baseline — the amplification factor the persona achieved.
    amplification: float
    #: Ground truth: cache entries the persona fabricated.
    poisoned_cache_entries: int
    #: Signature verifications the validator attempted.
    crypto_verify_calls: int
    #: Defence activity (all zero for an unhardened policy).
    hardening: HardeningSnapshot
    #: Responses the persona actually rewrote.
    responses_forged: int
    #: Case-2 leakage, to confirm the defence layer does not perturb
    #: the paper's measurement in the control cell.
    case2_queries: int
    #: The full serial run (``None`` for under-load cells).
    result: Optional[ExperimentResult] = dataclasses.field(
        default=None, repr=False
    )
    #: The concurrent replay behind an under-load cell
    #: (:class:`~repro.core.chaos_replay.ChaosReplayResult`).
    replay: Optional[object] = dataclasses.field(default=None, repr=False)

    def describe(self) -> str:
        return (
            f"[{self.adversary} × {self.policy}] "
            f"poisoned {self.poisoned_cache_entries}, "
            f"amplification {self.amplification:.1f}x "
            f"({self.upstream_sends} sends), "
            f"crypto {self.crypto_verify_calls}, "
            f"servfail {self.servfail_rate:.1%}, "
            f"defences[{self.hardening.describe()}]"
        )


def _upstream_sends(result: ExperimentResult, resolver: RecursiveResolver) -> int:
    if result.capture is None:
        return 0
    return sum(
        1 for record in result.capture.queries() if record.src == resolver.address
    )


def run_adversary_cell(
    universe: Universe,
    config: ResolverConfig,
    names: Sequence[Name],
    adversary: Optional[AdversaryScenario] = None,
    adversary_label: str = "none",
    policy_label: str = "",
    baseline_sends: Optional[int] = None,
    trace: bool = False,
    load=None,
) -> AdversaryReport:
    """One cell: deploy the persona, run the workload, read the damage.

    ``baseline_sends`` is the same policy's no-adversary send count; when
    given, ``amplification`` is relative to it (else 1.0).  With
    ``trace=True`` the returned report's ``result.traces`` and
    ``result.metrics`` carry the cell's full telemetry.

    ``load`` mirrors :func:`run_chaos_cell`: ``None`` serial, ``1``
    single-session scheduler (byte-identical), ``int > 1`` /
    :class:`~repro.core.chaos_replay.ReplayLoad` concurrent replay.
    """
    if load is not None and load != 1:
        from .chaos_replay import coerce_load, run_adversary_cell_under_load

        return run_adversary_cell_under_load(
            universe,
            config,
            names,
            adversary=adversary,
            adversary_label=adversary_label,
            policy_label=policy_label,
            baseline_sends=baseline_sends,
            load=coerce_load(load),
        )
    persona = adversary(universe) if adversary is not None else None
    tracer, metrics = _make_telemetry(universe, trace)
    experiment = LeakageExperiment(universe, config, tracer=tracer, metrics=metrics)
    if load == 1:
        from .replay import run_experiment_in_session

        result = run_experiment_in_session(experiment, names)
    else:
        result = experiment.run(names)
    resolver = experiment.resolver
    sends = _upstream_sends(result, resolver)
    if baseline_sends:
        amplification = sends / baseline_sends
    else:
        amplification = 1.0
    poisoned = (
        poisoned_cache_entries(resolver, [persona]) if persona is not None else 0
    )
    servfail = result.rcode_counts.get(RCode.SERVFAIL.name, 0)
    noerror = result.rcode_counts.get(RCode.NOERROR.name, 0)
    return AdversaryReport(
        adversary=adversary_label,
        policy=policy_label or config.hardening.describe(),
        domains=len(names),
        noerror=noerror,
        servfail=servfail,
        servfail_rate=servfail / max(1, len(names)),
        upstream_sends=sends,
        amplification=amplification,
        poisoned_cache_entries=poisoned,
        crypto_verify_calls=resolver.validator.crypto_verify_calls,
        hardening=hardening_snapshot(resolver),
        responses_forged=persona.responses_forged if persona is not None else 0,
        case2_queries=result.leakage.case2_queries,
        result=result,
    )


def run_adversary_matrix(
    universe_factory: Callable[[], Universe],
    names: Sequence[Name],
    adversaries: Mapping[str, Optional[AdversaryScenario]],
    configs: Mapping[str, ResolverConfig],
    trace: bool = False,
    parallelism: int = 1,
    executor=None,
    fail_fast: bool = False,
    timeout: Optional[float] = None,
    retries: int = 0,
    quarantine: Optional[List] = None,
    load=None,
) -> List[AdversaryReport]:
    """Sweep adversary personas × hardening policies.

    For every policy a no-adversary baseline cell runs first (reported
    with label ``none`` unless the caller supplied their own) and its
    upstream-send count anchors the amplification factors of that
    policy's adversary cells.  Fresh universe per cell, as in
    :func:`run_chaos_matrix`, so cells are independent and
    reproducible.

    With ``parallelism > 1`` the sweep runs in two waves — all policy
    baselines, then all adversary cells (which need the baseline send
    counts) — and the reports are reassembled into the serial order
    (baseline, then adversaries, per policy).  Cell independence makes
    the parallel report list byte-identical to the serial one.

    Failure containment mirrors :func:`run_chaos_matrix`: keep-going
    with bounded retries and quarantine by default, ``fail_fast=True``
    to raise.  A quarantined *baseline* also sidelines that policy's
    adversary cells (their amplification factor would be meaningless),
    recording them with error ``baseline-quarantined``.
    """
    from .parallel import QuarantinedCell, run_tasks_fault_tolerant

    policies = list(configs.items())
    active_adversaries = [
        (label, scenario)
        for label, scenario in adversaries.items()
        if scenario is not None
    ]

    def make_cell(config, policy_label, adversary_label="none",
                  scenario=None, baseline_sends=None):
        def cell() -> AdversaryReport:
            return run_adversary_cell(
                universe_factory(),
                config,
                names,
                adversary=scenario,
                adversary_label=adversary_label,
                policy_label=policy_label,
                baseline_sends=baseline_sends,
                trace=trace,
                load=load,
            )

        cell.cell_context = f"adversary '{adversary_label}' × '{policy_label}'"
        return cell

    all_quarantined: List[QuarantinedCell] = []
    baselines, quarantined, _ = run_tasks_fault_tolerant(
        [make_cell(config, policy_label) for policy_label, config in policies],
        parallelism=parallelism,
        executor=executor,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
    )
    all_quarantined.extend(quarantined)
    adversary_tasks = []
    skipped: List[QuarantinedCell] = []
    for policy_index, (policy_label, config) in enumerate(policies):
        baseline = baselines[policy_index]
        for adversary_label, scenario in active_adversaries:
            if baseline is None:
                skipped.append(
                    QuarantinedCell(
                        index=-1,
                        context=(
                            f"cell [adversary '{adversary_label}' × "
                            f"'{policy_label}']"
                        ),
                        attempts=0,
                        error="baseline-quarantined",
                        detail="policy baseline failed; amplification "
                        "denominator unavailable",
                    )
                )
                continue
            adversary_tasks.append(
                make_cell(
                    config,
                    policy_label,
                    adversary_label=adversary_label,
                    scenario=scenario,
                    baseline_sends=baseline.upstream_sends,
                )
            )
    adversary_reports, quarantined, _ = run_tasks_fault_tolerant(
        adversary_tasks,
        parallelism=parallelism,
        executor=executor,
        timeout=timeout,
        retries=retries,
        fail_fast=fail_fast,
    )
    all_quarantined.extend(quarantined)
    all_quarantined.extend(skipped)
    reports: List[AdversaryReport] = []
    cursor = 0
    for policy_index, baseline in enumerate(baselines):
        if baseline is None:
            continue
        reports.append(baseline)
        for report in adversary_reports[
            cursor:cursor + len(active_adversaries)
        ]:
            if report is not None:
                reports.append(report)
        cursor += len(active_adversaries)
    _drain_quarantine(all_quarantined, quarantine, "run_adversary_matrix")
    return reports


class _CaptureSlice:
    """A read-only view over a subset of capture records, exposing the
    Capture analysis API the classifier and metrics need."""

    def __init__(self, records):
        self._records = list(records)

    def __iter__(self):
        return iter(self._records)

    def __len__(self):
        return len(self._records)

    def queries(self):
        return [r for r in self._records if r.is_query]

    def queries_of_type(self, rtype: RRType):
        return [
            r for r in self._records if r.is_query and r.qtype is rtype
        ]

    def queries_to(self, address: str):
        return [
            r for r in self._records if r.is_query and r.dst == address
        ]

    def total_bytes(self) -> int:
        return sum(r.wire_size for r in self._records)

    def query_count(self) -> int:
        return sum(1 for r in self._records if r.is_query)

    def query_type_histogram(self):
        counts: Dict[RRType, int] = {}
        for record in self._records:
            if record.is_query and record.qtype is not None:
                counts[record.qtype] = counts.get(record.qtype, 0) + 1
        return counts
