"""Per-observer exposure analysis: who on the resolution path learned
which of the user's domains?

The paper's threat model (Section 3) distinguishes involved parties
(root, TLD, target authoritative) from uninvolved ones (the DLV
registry for non-deposited names).  This module generalises the
measurement: for every observation point in the capture, compute how
many of the queried domains were *visible* in the query names it
received.

Used by the qname-minimisation bench to show that RFC 7816 removes
full names from the root and TLDs, while the DLV registry keeps seeing
them — look-aside queries embed the whole domain regardless of how the
original resolution was minimised.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..dnscore import Name
from ..netsim import AdversaryPersona
from ..resolver import RecursiveResolver
from ..workloads import Universe


@dataclasses.dataclass
class ObserverExposure:
    """What one observation point (server address) saw."""

    address: str
    role: str
    queries_received: int
    distinct_qnames: int
    #: Queried workload domains whose full name appeared inside at
    #: least one query name this observer received.
    exposed_domains: Set[Name]

    def exposure_fraction(self, total_domains: int) -> float:
        if total_domains == 0:
            return 0.0
        return len(self.exposed_domains) / total_domains


def _contains_domain(qname: Name, domain: Name) -> bool:
    """Is *domain* visible inside *qname*?

    True when the domain's labels occur as a contiguous run in the
    query name — covering ``example.com`` itself, ``www.example.com``,
    and the look-aside form ``example.com.dlv.isc.org``.
    """
    q = qname.labels
    d = domain.labels
    if len(d) > len(q):
        return False
    for start in range(len(q) - len(d) + 1):
        if q[start : start + len(d)] == d:
            return True
    return False


def observer_exposures(
    capture,
    queried_domains: Sequence[Name],
    observers: Dict[str, str],
) -> List[ObserverExposure]:
    """Exposure per observation point.

    ``observers`` maps server address → human-readable role (e.g.
    ``{"10.0.0.1": "dlv-registry", ...}``); addresses not listed are
    ignored (e.g. the leaf servers, which are involved by definition).
    """
    domains = list(queried_domains)
    qname_sets: Dict[str, Set[Name]] = {address: set() for address in observers}
    exposed: Dict[str, Set[Name]] = {address: set() for address in observers}
    counts: Dict[str, int] = {address: 0 for address in observers}
    for record in capture:
        if not record.is_query or record.dst not in observers:
            continue
        counts[record.dst] += 1
        qname = record.qname
        if qname is None:
            continue
        qname_sets[record.dst].add(qname)
    # Exposure matching on distinct qnames only (cheaper and identical).
    for address, qnames in qname_sets.items():
        for qname in qnames:
            for domain in domains:
                if domain in exposed[address]:
                    continue
                if _contains_domain(qname, domain):
                    exposed[address].add(domain)
    return [
        ObserverExposure(
            address=address,
            role=observers[address],
            queries_received=counts[address],
            distinct_qnames=len(qname_sets[address]),
            exposed_domains=exposed[address],
        )
        for address in observers
    ]


# ----------------------------------------------------------------------
# Hardening observability (byzantine-robustness subsystem)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class HardeningSnapshot:
    """A point-in-time read of one resolver's defence activity.

    Mirrors :class:`~repro.resolver.hardening.HardeningCounters` plus
    the validator's crypto-attempt counter, frozen so reports can carry
    it without aliasing the live counters.
    """

    spoofs_rejected: int
    records_scrubbed: int
    glue_rejected: int
    referrals_rejected: int
    send_budget_exhausted: int
    ns_budget_exhausted: int
    signature_budget_exhausted: int
    #: Signature verifications actually attempted by the validator.
    crypto_verify_calls: int

    @property
    def total_rejections(self) -> int:
        return (
            self.spoofs_rejected
            + self.records_scrubbed
            + self.glue_rejected
            + self.referrals_rejected
        )

    @property
    def budget_denials(self) -> int:
        return (
            self.send_budget_exhausted
            + self.ns_budget_exhausted
            + self.signature_budget_exhausted
        )

    def describe(self) -> str:
        """One-line summary of the defence activity.

        The format is ``spoofs=<n> scrubbed=<n> glue=<n> referrals=<n>
        budget-denials=<n> crypto=<n>`` — the first four are the
        rejection counters (summed by :attr:`total_rejections`),
        ``budget-denials`` sums the three work-budget exhaustions, and
        ``crypto`` counts attempted signature verifications.  This is
        the string embedded in
        :meth:`~repro.core.experiment.AdversaryReport.describe`::

            >>> snapshot.describe()      # doctest: +SKIP
            'spoofs=108 scrubbed=28 glue=28 referrals=0 budget-denials=0 crypto=21'
        """
        return (
            f"spoofs={self.spoofs_rejected} scrubbed={self.records_scrubbed} "
            f"glue={self.glue_rejected} referrals={self.referrals_rejected} "
            f"budget-denials={self.budget_denials} "
            f"crypto={self.crypto_verify_calls}"
        )


def hardening_snapshot(resolver: RecursiveResolver) -> HardeningSnapshot:
    """Freeze the resolver's hardening counters for a report."""
    counters = resolver.engine.counters
    return HardeningSnapshot(
        spoofs_rejected=counters.spoofs_rejected,
        records_scrubbed=counters.records_scrubbed,
        glue_rejected=counters.glue_rejected,
        referrals_rejected=counters.referrals_rejected,
        send_budget_exhausted=counters.send_budget_exhausted,
        ns_budget_exhausted=counters.ns_budget_exhausted,
        signature_budget_exhausted=counters.signature_budget_exhausted,
        crypto_verify_calls=resolver.validator.crypto_verify_calls,
    )


def poisoned_cache_entries(
    resolver: RecursiveResolver,
    personas: Iterable[AdversaryPersona],
) -> int:
    """Count cache entries fabricated by any of *personas*.

    Walks the positive cache directly (no hit/miss perturbation) and
    asks each persona to recognise its own poison — the ground-truth
    poisoning-success metric of the adversary matrix.
    """
    persona_list = list(personas)
    count = 0
    for entry in resolver.cache.entries():
        if any(p.is_poison(entry.rrset) for p in persona_list):
            count += 1
    return count


def universe_observers(universe: Universe) -> Dict[str, str]:
    """The standard observation points of a Universe, as the address →
    role mapping :func:`observer_exposures` expects.

    Roles are ``"root"`` for the root server, ``"tld:<label>"`` for
    every TLD server, and ``"dlv-registry"`` for the look-aside
    registry — the parties the paper's Section 3 threat model ranks by
    involvement.  Leaf/hosting servers are deliberately absent: they
    are involved parties for their own domains by definition.

    Example — measure what the registry learned from a run::

        exposures = observer_exposures(
            result.capture, names, universe_observers(universe)
        )
        registry = next(e for e in exposures if e.role == "dlv-registry")
        print(len(registry.exposed_domains))
    """
    observers = {universe.root_address: "root"}
    for label, address in universe.tld_addresses().items():
        observers[address] = f"tld:{label}"
    observers[universe.registry_address] = "dlv-registry"
    return observers
