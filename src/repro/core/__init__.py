"""The paper's contribution: leakage measurement, remedies, attacks."""

from .attacks import (
    OutageServer,
    TamperingProxy,
    interpose_tampering,
    lift_faults,
    restore,
    schedule_brownout,
    schedule_outage,
    take_down,
)
from .dictionary import AttackResult, DictionaryAttack, coverage_curve
from .enumeration import NsecZoneWalker, WalkResult
from .observability import (
    ObserverExposure,
    observer_exposures,
    universe_observers,
)
from .experiment import (
    ChaosReport,
    ChaosScenario,
    ExperimentResult,
    LeakageExperiment,
    registry_outage_scenario,
    run_chaos_cell,
    run_chaos_matrix,
)
from .leakage import (
    ClassifiedDlvQuery,
    LeakageCase,
    LeakageClassifier,
    LeakageReport,
)
from .overhead import MetricComparison, OverheadComparison, OverheadMetrics
from .population import (
    PopulationResult,
    UserProfile,
    make_profiles,
    run_population,
)
from .trace_replay import ReplayResult, replay_zipf_stream
from .setup import (
    DEFAULT_REGISTRY_FILLER_COUNT,
    EXPERIMENT_MODULUS_BITS,
    standard_experiment,
    standard_universe,
    standard_workload,
)
from .remedies import (
    Remedy,
    RemedyRun,
    compare_all,
    comparisons_against_baseline,
    resolver_config_for,
    run_remedy,
    universe_params_for,
)

__all__ = [
    "AttackResult",
    "ChaosReport",
    "ChaosScenario",
    "registry_outage_scenario",
    "run_chaos_cell",
    "run_chaos_matrix",
    "lift_faults",
    "schedule_brownout",
    "schedule_outage",
    "DEFAULT_REGISTRY_FILLER_COUNT",
    "EXPERIMENT_MODULUS_BITS",
    "standard_experiment",
    "standard_universe",
    "standard_workload",
    "ClassifiedDlvQuery",
    "DictionaryAttack",
    "ExperimentResult",
    "LeakageCase",
    "LeakageClassifier",
    "LeakageExperiment",
    "LeakageReport",
    "MetricComparison",
    "NsecZoneWalker",
    "ObserverExposure",
    "OutageServer",
    "observer_exposures",
    "universe_observers",
    "OverheadComparison",
    "OverheadMetrics",
    "PopulationResult",
    "Remedy",
    "ReplayResult",
    "UserProfile",
    "replay_zipf_stream",
    "make_profiles",
    "run_population",
    "TamperingProxy",
    "WalkResult",
    "interpose_tampering",
    "restore",
    "take_down",
    "RemedyRun",
    "compare_all",
    "comparisons_against_baseline",
    "coverage_curve",
    "resolver_config_for",
    "run_remedy",
    "universe_params_for",
]
