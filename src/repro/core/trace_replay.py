"""Packet-level trace replay: cross-validating the Fig 12 model.

The Fig 12 reproduction (:mod:`repro.workloads.ditl`) evaluates the
TXT-signalling overhead with an *analytic* TTL-cache model, because a
92.7M-query trace is too large for packet-level simulation in pure
Python.  This module replays a (scaled) Zipf query stream through the
*actual* resolver/network stack with the TXT remedy deployed, and
measures the TXT exchanges from the capture — so the analytic model's
core assumption (one cacheable TXT fetch per zone per TTL window) can
be validated against the full implementation.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from ..dnscore import RRType
from ..resolver import ResolverConfig, correct_bind_config
from ..workloads import AlexaWorkload, Universe, UniverseParams
from .experiment import LeakageExperiment
from .overhead import SignalingCost


@dataclasses.dataclass
class ReplayResult:
    """Packet-level measurement vs analytic prediction."""

    queries_replayed: int
    distinct_zones: int
    #: TXT exchanges measured from the capture.
    measured_txt_exchanges: int
    measured_txt_bytes: int
    #: The analytic model's prediction: one fetch per distinct zone per
    #: TTL window (the replay stays within one window).
    predicted_txt_exchanges: int

    @property
    def prediction_error(self) -> float:
        if self.predicted_txt_exchanges == 0:
            return 0.0
        return (
            abs(self.measured_txt_exchanges - self.predicted_txt_exchanges)
            / self.predicted_txt_exchanges
        )


def replay_zipf_stream(
    workload: AlexaWorkload,
    query_count: int,
    zipf_s: float = 1.2,
    seed: int = 33,
    config: Optional[ResolverConfig] = None,
    universe_params: Optional[UniverseParams] = None,
) -> ReplayResult:
    """Drive *query_count* Zipf-popularity queries through the packet
    simulator with TXT signalling deployed, then compare the measured
    TXT cost with the analytic cache model's prediction."""
    rng = random.Random(seed)
    population = workload.names()
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(population))]
    stream = rng.choices(population, weights=weights, k=query_count)

    params = universe_params or UniverseParams(modulus_bits=256)
    params = dataclasses.replace(
        params,
        deploy_txt_signal=True,
        registry_filler=tuple(params.registry_filler)
        or tuple(workload.registry_filler(2000)),
    )
    universe = Universe(workload.domains, params)
    resolver_config = dataclasses.replace(
        config or correct_bind_config(), txt_signaling=True
    )
    experiment = LeakageExperiment(universe, resolver_config, ptr_fraction=0.0)
    result = experiment.run(stream)

    cost = SignalingCost.of_query_type(result.capture, RRType.TXT)
    distinct_zones = len(set(stream))
    # The analytic model charges one TXT fetch per distinct zone per
    # TTL window; the resolver only fetches the signal for zones whose
    # validation was not already secure, so the prediction counts the
    # non-secure distinct zones.
    secure = {
        spec.name
        for spec in workload.domains
        if spec.signed and spec.ds_in_parent
    }
    predicted = len(set(stream) - secure)
    return ReplayResult(
        queries_replayed=query_count,
        distinct_zones=distinct_zones,
        measured_txt_exchanges=cost.exchanges,
        measured_txt_bytes=cost.bytes,
        predicted_txt_exchanges=predicted,
    )
