"""The paper's remedies, packaged as runnable experiment variants.

Section 6.2 proposes:

* **DLV-aware DNS / TXT record** — registrants publish ``dlv=1``/``dlv=0``
  in a TXT record; the resolver fetches it and only consults the DLV
  registry when signalled.  Costs one extra (cacheable) query per zone.
* **DLV-aware DNS / Z bit** — the authoritative server sets the spare Z
  header bit on responses for zones with a deposit; no extra packets.
* **Privacy-preserving DLV** — the registry stores
  ``crypto_hash(domain)`` digests and the resolver queries the digest,
  so Case-2 misses reveal only a hash.

Each remedy here is a recipe: how to build the universe (deployment
side) and how to configure the resolver (client side).  ``compare_all``
reproduces the Fig. 11 three-way comparison on a common workload.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from ..dnscore import Name
from ..resolver import ResolverConfig
from ..workloads import DomainSpec, Universe, UniverseParams
from .experiment import ExperimentResult, LeakageExperiment
from .overhead import OverheadComparison


class Remedy(enum.Enum):
    NONE = "dlv"            # vanilla DLV: the baseline
    TXT = "txt"             # DLV-aware DNS via TXT record
    ZBIT = "zbit"           # DLV-aware DNS via the Z header bit
    HASHED = "hashed-dlv"   # privacy-preserving DLV


def universe_params_for(
    remedy: Remedy, base: Optional[UniverseParams] = None
) -> UniverseParams:
    """Deployment-side changes the remedy needs in the universe."""
    base = base or UniverseParams()
    if remedy is Remedy.TXT:
        return dataclasses.replace(base, deploy_txt_signal=True)
    if remedy is Remedy.ZBIT:
        return dataclasses.replace(base, deploy_zbit_signal=True)
    if remedy is Remedy.HASHED:
        return dataclasses.replace(base, registry_hashed=True)
    return base


def resolver_config_for(remedy: Remedy, base: ResolverConfig) -> ResolverConfig:
    """Client-side switches the remedy needs in the resolver."""
    if remedy is Remedy.TXT:
        return dataclasses.replace(base, txt_signaling=True)
    if remedy is Remedy.ZBIT:
        return dataclasses.replace(base, zbit_signaling=True)
    if remedy is Remedy.HASHED:
        return dataclasses.replace(base, hashed_dlv=True)
    return base


@dataclasses.dataclass
class RemedyRun:
    remedy: Remedy
    result: ExperimentResult


def run_remedy(
    remedy: Remedy,
    domains: Sequence[DomainSpec],
    names: Sequence[Name],
    resolver_config: ResolverConfig,
    base_params: Optional[UniverseParams] = None,
    ptr_fraction: float = 0.01,
) -> RemedyRun:
    """Build a fresh universe with the remedy deployed and run the
    workload once.  Fresh universes keep runs independent and identical
    except for the remedy (same seeds everywhere)."""
    params = universe_params_for(remedy, base_params)
    universe = Universe(domains, params)
    config = resolver_config_for(remedy, resolver_config)
    experiment = LeakageExperiment(universe, config, ptr_fraction=ptr_fraction)
    return RemedyRun(remedy=remedy, result=experiment.run(names))


def compare_all(
    domains: Sequence[DomainSpec],
    names: Sequence[Name],
    resolver_config: ResolverConfig,
    base_params: Optional[UniverseParams] = None,
    remedies: Sequence[Remedy] = (Remedy.NONE, Remedy.TXT, Remedy.ZBIT),
    ptr_fraction: float = 0.01,
) -> Dict[Remedy, RemedyRun]:
    """The Fig. 11 comparison: the same workload under each remedy."""
    return {
        remedy: run_remedy(
            remedy, domains, names, resolver_config, base_params, ptr_fraction
        )
        for remedy in remedies
    }


def comparisons_against_baseline(
    runs: Dict[Remedy, RemedyRun]
) -> List[OverheadComparison]:
    """Table 5 style rows: every remedy against the vanilla-DLV run."""
    baseline = runs[Remedy.NONE].result.overhead
    rows: List[OverheadComparison] = []
    for remedy, run in runs.items():
        if remedy is Remedy.NONE:
            continue
        rows.append(
            OverheadComparison.between(remedy.value, baseline, run.result.overhead)
        )
    return rows
