"""NSEC zone enumeration against the DLV registry (paper Section 7.3).

The aggressive-negative-caching performance that DLV relies on comes
from NSEC records — but NSEC famously allows *zone walking*: each
denial names the next existing owner in canonical order, so an attacker
can enumerate every registered domain by repeatedly probing just past
the last learned owner.  The paper points out the resulting trade-off:
NSEC leaks the registry's contents, NSEC3 protects them but disables
the caching that limits query leakage.

:class:`NsecZoneWalker` implements the attack as a network client; it
also demonstrates (by collecting only opaque hashes) why NSEC3 defeats
it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set

from ..dnscore import Message, Name, RCode, RRType
from ..netsim import Network


@dataclasses.dataclass
class WalkResult:
    """Outcome of an enumeration attempt."""

    owners: List[Name]
    queries_sent: int
    complete: bool

    def enumerated_domains(self, origin: Name) -> List[Name]:
        """Registered names relative to the registry origin."""
        domains = []
        for owner in self.owners:
            if owner == origin:
                continue
            domains.append(Name(owner.relativize(origin)))
        return domains


class NsecZoneWalker:
    """Walks a zone's NSEC chain from the outside."""

    def __init__(
        self,
        network: Network,
        registry_address: str,
        origin: Name,
        attacker_address: str = "203.0.113.66",
    ):
        self._network = network
        self._registry_address = registry_address
        self.origin = origin
        self._attacker_address = attacker_address
        self._next_id = 1

    def _query(self, qname: Name) -> Message:
        message_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFF or 1
        query = Message.make_query(
            message_id, qname, RRType.DLV, recursion_desired=False, dnssec_ok=True
        )
        return self._network.query(
            self._attacker_address, self._registry_address, query
        )

    @staticmethod
    def _probe_after(owner: Name) -> Name:
        """A name canonically just after *owner*: any child of it sorts
        immediately after the owner itself (RFC 4034 section 6.1)."""
        return owner.prepend("0")

    def walk(self, max_queries: int = 100_000) -> WalkResult:
        """Enumerate the zone.  Completes when the chain wraps back to
        the apex; returns partial results if the probe responses carry
        no NSEC (e.g. an NSEC3 zone) or the budget runs out."""
        owners: List[Name] = [self.origin]
        seen: Set[Name] = {self.origin}
        queries = 0
        current = self.origin
        while queries < max_queries:
            response = self._query(self._probe_after(current))
            queries += 1
            next_owner = self._next_from_response(response)
            if next_owner is None:
                return WalkResult(owners=owners, queries_sent=queries, complete=False)
            if next_owner == self.origin or next_owner in seen:
                return WalkResult(owners=owners, queries_sent=queries, complete=True)
            owners.append(next_owner)
            seen.add(next_owner)
            current = next_owner
        return WalkResult(owners=owners, queries_sent=queries, complete=False)

    def _next_from_response(self, response: Message) -> Optional[Name]:
        if response.rcode is not RCode.NXDOMAIN:
            return None
        for rrset in response.authority:
            if rrset.rtype is RRType.NSEC:
                return rrset.first().next_name  # type: ignore[attr-defined]
        return None
