"""Counters and histograms: the aggregate face of observability.

Where :mod:`repro.core.tracing` answers *why one query behaved as it
did*, this registry answers *how often things happen*: cache hit
rates, queries sent, faults injected, signature checks, look-aside
leak counts.  The design goals match the tracer's:

1. **Zero dependencies** — importable from any layer (the resolver and
   netsim receive a registry by parameter, never by import).
2. **Near-zero disabled cost** — instrumented code guards every call
   with ``if metrics is not None``; for code that wants to hold an
   always-valid reference, :data:`NULL_METRICS` swallows calls in one
   no-op method dispatch (the overhead benchmark keeps this under 5 %
   of total runtime on the substrate-perf workload).
3. **Determinism** — :meth:`MetricsRegistry.snapshot` sorts names, so
   the same run always snapshots identically.

Metric names are dotted strings, conventionally ``layer.event``:
``cache.hits``, ``net.exchanges``, ``faults.drops_injected``,
``lookaside.case2_probes``, ``validator.signature_checks`` — the full
vocabulary is documented in ``docs/OBSERVABILITY.md``.

Example::

    metrics = MetricsRegistry()
    universe.attach_telemetry(metrics=metrics)
    ... run the workload ...
    snap = metrics.snapshot()
    snap["counters"]["lookaside.case2_probes"]
    snap["histograms"]["net.rtt"]["mean"]
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclasses.dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / min / max (constant memory); enough for the
    RTT and size distributions the benches compare.  ``mean`` derives.
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    The write API is two methods — :meth:`inc` and :meth:`observe` —
    so instrumented call sites stay one line.  Reads go through
    :meth:`snapshot`, which freezes everything into sorted plain dicts
    suitable for JSON, reports, and equality checks in tests.
    """

    #: Distinguishes a live registry from :class:`NullMetricsRegistry`
    #: without isinstance checks.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """Freeze the registry: ``{"counters": {...}, "histograms":
        {...}}`` with sorted names and plain scalar values."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)


class NullMetricsRegistry(MetricsRegistry):
    """A registry that records nothing.

    Every write is a single empty method call, so code holding a
    registry unconditionally stays benchmark-comparable with code
    holding none.  ``snapshot`` always returns empty maps.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> Counter:
        # Hand out a throwaway so callers can .inc() harmlessly.
        return Counter()

    def histogram(self, name: str) -> Histogram:
        return Histogram()


#: Shared no-op registry for call sites that want a non-None default.
NULL_METRICS = NullMetricsRegistry()
