"""Multi-user population experiments (paper Section 7.3.1).

The paper discusses the granularity of the leak: if many stubs share a
public recursive resolver, the registry sees the *aggregate* query
stream under the resolver's address and cannot directly attribute
domains to users; dedicated (per-household) resolvers hand the registry
per-user profiles.  Shared caching also shrinks the aggregate leak,
since one user's look-aside denial suppresses everyone else's.

The paper cautions that aggregation is not a fix — traffic-correlation
techniques can re-link users — but quantifying the baseline granularity
difference is still instructive, and this module does that.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Sequence, Set

from ..dnscore import Name, RRType
from ..resolver import RecursiveResolver, ResolverConfig, StubClient
from ..workloads import AlexaWorkload, Universe, UniverseParams


@dataclasses.dataclass(frozen=True)
class UserProfile:
    """One simulated user's browsing set, in visit order."""

    user_id: int
    names: Sequence[Name]


def make_profiles(
    workload: AlexaWorkload,
    user_count: int,
    domains_per_user: int,
    seed: int = 99,
) -> List[UserProfile]:
    """Popularity-weighted profiles: everyone visits the head of the
    list, tails diverge — the usual web-browsing shape."""
    rng = random.Random(seed)
    population = workload.names()
    weights = [1.0 / (rank + 1) for rank in range(len(population))]
    profiles = []
    for user_id in range(user_count):
        chosen: List[Name] = []
        seen: Set[Name] = set()
        while len(chosen) < min(domains_per_user, len(population)):
            name = rng.choices(population, weights=weights, k=1)[0]
            if name in seen:
                continue
            seen.add(name)
            chosen.append(name)
        profiles.append(UserProfile(user_id=user_id, names=tuple(chosen)))
    return profiles


@dataclasses.dataclass
class PopulationResult:
    """What the registry could see and attribute."""

    shared_resolver: bool
    users: int
    #: DLV-query source addresses observed at the registry.
    observed_sources: int
    #: Distinct domains the registry saw across the run (Case-2 only).
    aggregate_exposed: int
    #: Users whose (partial) browsing profile is attributable because a
    #: source address maps to exactly one user.
    attributable_users: int
    #: Leaked domains per attributable user.
    per_user_exposure: Dict[int, int]
    total_dlv_queries: int


def run_population(
    domains,
    profiles: Sequence[UserProfile],
    config: ResolverConfig,
    shared: bool,
    universe_params: UniverseParams,
) -> PopulationResult:
    """Run every profile, interleaved round-robin, against one shared
    resolver or one resolver per user."""
    universe = Universe(domains, universe_params)
    if shared:
        resolvers = [universe.make_resolver(config)]
    else:
        resolvers = [universe.make_resolver(config) for _ in profiles]
    stubs: List[StubClient] = []
    for index, profile in enumerate(profiles):
        resolver = resolvers[0] if shared else resolvers[index]
        stubs.append(universe.make_stub(resolver))

    # Interleave users' browsing round-robin, as concurrency would.
    cursors = [0] * len(profiles)
    remaining = sum(len(p.names) for p in profiles)
    while remaining:
        for index, profile in enumerate(profiles):
            if cursors[index] >= len(profile.names):
                continue
            stubs[index].query(profile.names[cursors[index]], RRType.A)
            cursors[index] += 1
            remaining -= 1

    # What did the registry see, from which sources?
    resolver_to_user = {}
    if not shared:
        for index, resolver in enumerate(resolvers):
            resolver_to_user[resolver.address] = index
    sources: Set[str] = set()
    exposed_by_source: Dict[str, Set[Name]] = {}
    origin = universe.registry_origin
    for record in universe.capture.queries_of_type(RRType.DLV):
        if record.dst != universe.registry_address or record.dropped:
            continue
        qname = record.qname
        assert qname is not None
        if not qname.is_subdomain_of(origin) or qname == origin:
            continue
        relative = qname.relativize(origin)
        if len(relative) < 2:
            continue  # TLD-level enclosing query
        domain = Name(relative)
        if universe.registry_zone.has_deposit(domain):
            continue  # Case-1: involved party
        sources.add(record.src)
        exposed_by_source.setdefault(record.src, set()).add(domain)

    aggregate: Set[Name] = set()
    for exposed in exposed_by_source.values():
        aggregate |= exposed
    per_user: Dict[int, int] = {}
    for source, exposed in exposed_by_source.items():
        user = resolver_to_user.get(source)
        if user is not None:
            per_user[user] = len(exposed)
    total_dlv = sum(
        1
        for record in universe.capture.queries_of_type(RRType.DLV)
        if record.dst == universe.registry_address and not record.dropped
    )
    return PopulationResult(
        shared_resolver=shared,
        users=len(profiles),
        observed_sources=len(sources),
        aggregate_exposed=len(aggregate),
        attributable_users=len(per_user),
        per_user_exposure=per_user,
        total_dlv_queries=total_dlv,
    )
