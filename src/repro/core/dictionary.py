"""Dictionary attacks on privacy-preserving (hashed) DLV.

Paper Section 6.2.4: hashed DLV only protects a Case-2 query if the
registry operator cannot invert the digest.  An adversary who suspects
the query population can precompute ``crypto_hash(candidate)`` for a
candidate dictionary and match observed digests.  The paper argues the
live domain population (>350M names, plus unbounded subdomains) makes an
exhaustive dictionary impractical, but that a *targeted* dictionary
(e.g. DNSSEC-enabled domains only) recovers its members.

:class:`DictionaryAttack` simulates exactly that: given observed hashed
query labels and a candidate dictionary, how many queries are recovered?
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..crypto import hash_domain_label
from ..dnscore import Name, RRType
from ..netsim import Capture


@dataclasses.dataclass
class AttackResult:
    """Outcome of one dictionary attack."""

    observed_digests: int
    dictionary_size: int
    recovered: Dict[str, Name]
    hash_evaluations: int

    @property
    def recovered_count(self) -> int:
        return len(self.recovered)

    @property
    def recovery_rate(self) -> float:
        if self.observed_digests == 0:
            return 0.0
        return self.recovered_count / self.observed_digests


class DictionaryAttack:
    """The registry operator's offline attack against hashed queries."""

    def __init__(self, registry_origin: Name, registry_address: str):
        self._origin = registry_origin
        self._address = registry_address

    def observed_digest_labels(self, capture: Capture) -> List[str]:
        """Hashed-query labels seen at the registry (distinct, ordered
        by first appearance)."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for record in capture.queries_of_type(RRType.DLV):
            if record.dst != self._address:
                continue
            qname = record.qname
            assert qname is not None
            if not qname.is_subdomain_of(self._origin) or qname == self._origin:
                continue
            relative = qname.relativize(self._origin)
            if len(relative) != 1:
                continue
            label = relative[0]
            if label not in seen:
                seen.add(label)
                ordered.append(label)
        return ordered

    def attack(
        self,
        capture: Capture,
        dictionary: Sequence[Name],
        max_hash_evaluations: Optional[int] = None,
    ) -> AttackResult:
        """Precompute digests for the dictionary and match observations.

        ``max_hash_evaluations`` models a compute budget — the paper's
        feasibility argument is exactly that the required number of
        evaluations scales with the candidate space.
        """
        observed = self.observed_digest_labels(capture)
        targets = set(observed)
        recovered: Dict[str, Name] = {}
        evaluations = 0
        for candidate in dictionary:
            if max_hash_evaluations is not None and evaluations >= max_hash_evaluations:
                break
            evaluations += 1
            label = hash_domain_label(candidate)
            if label in targets and label not in recovered:
                recovered[label] = candidate
                if len(recovered) == len(targets):
                    break
        return AttackResult(
            observed_digests=len(observed),
            dictionary_size=len(dictionary),
            recovered=recovered,
            hash_evaluations=evaluations,
        )


def coverage_curve(
    attack: DictionaryAttack,
    capture: Capture,
    dictionary: Sequence[Name],
    checkpoints: Iterable[int],
) -> List[dict]:
    """Recovery rate as the dictionary grows — the bench's series."""
    rows = []
    for size in checkpoints:
        result = attack.attack(capture, dictionary[:size])
        rows.append(
            {
                "dictionary_size": size,
                "recovered": result.recovered_count,
                "observed": result.observed_digests,
                "recovery_rate": result.recovery_rate,
            }
        )
    return rows
