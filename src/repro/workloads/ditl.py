"""DITL-style recursive-resolver trace (paper Fig. 12).

The paper's large-scale experiment replays a Day-In-The-Life (DITL)
trace from a busy recursive resolver: 7 hours, 92,705,013 queries, a
per-minute rate fluctuating between 160,000 and 360,000 queries/minute.
The DITL archive is access-restricted, so we generate a seeded trace
with the published envelope, and evaluate the TXT-signalling remedy's
cumulative byte overhead over it.

Key modelling point: the TXT signal is fetched *per zone and cached for
its TTL*, so the overhead scales with the number of distinct zones per
TTL window, not with raw query volume — which is why the paper's
measured overhead (~1.2 GB over 7 h, ~0.38 Mbps) is small relative to
the baseline.  We reproduce that with a Zipf popularity model over a
large zone population and a vectorised TTL-cache simulation (numpy).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Published trace envelope.
FULL_TRACE_MINUTES = 7 * 60
FULL_TRACE_TOTAL_QUERIES = 92_705_013
RATE_MIN_QPM = 160_000
RATE_MAX_QPM = 360_000


@dataclasses.dataclass(frozen=True)
class DitlParams:
    """Knobs of the synthetic trace."""

    seed: int = 42
    minutes: int = FULL_TRACE_MINUTES
    #: Scale divisor: 1.0 replays the full published volume; 0.01 keeps
    #: bench runtime low (results are reported rescaled either way).
    scale: float = 1.0
    #: Distinct zones in the resolver's query population.
    zone_population: int = 2_000_000
    #: Zipf skew of zone popularity.
    zipf_s: float = 1.2
    #: TXT signal TTL (seconds) — how long one fetch stays cached.
    txt_ttl: float = 3600.0
    #: Wire bytes of one TXT signal exchange (query + response).  The
    #: packet-level simulation measures ~111 bytes per exchange
    #: (Table 5 reproduction: 0.011 MB over 99 exchanges).
    txt_exchange_bytes: int = 112
    #: Average wire bytes a recursive spends serving one query
    #: (baseline), calibrated from the packet-level simulation.
    baseline_bytes_per_query: int = 260


@dataclasses.dataclass
class DitlTrace:
    """The generated rate series."""

    params: DitlParams
    #: Queries per minute, scaled.
    per_minute: np.ndarray

    @property
    def total_queries(self) -> int:
        return int(self.per_minute.sum())

    def cumulative(self) -> np.ndarray:
        return np.cumsum(self.per_minute)

    def rescale_factor(self) -> float:
        """Multiplier that maps scaled results back to the full trace."""
        if self.params.scale <= 0:
            return 1.0
        return 1.0 / self.params.scale


def generate_trace(params: Optional[DitlParams] = None) -> DitlTrace:
    """The per-minute query-rate series matching the paper's envelope:
    a diurnal-ish oscillation inside [160k, 360k] qpm whose total lands
    on the published 92.7M queries (before scaling)."""
    params = params or DitlParams()
    rng = np.random.default_rng(params.seed)
    minutes = np.arange(params.minutes)
    mid = (RATE_MIN_QPM + RATE_MAX_QPM) / 2.0
    swing = (RATE_MAX_QPM - RATE_MIN_QPM) / 2.0
    wave = mid + 0.75 * swing * np.sin(2 * math.pi * minutes / 180.0)
    noise = rng.normal(0.0, 0.12 * swing, size=params.minutes)
    rates = np.clip(wave + noise, RATE_MIN_QPM, RATE_MAX_QPM)
    # Normalise the total to the published figure, then re-clip.
    rates *= FULL_TRACE_TOTAL_QUERIES / rates.sum() * (params.minutes / FULL_TRACE_MINUTES)
    rates = np.clip(rates, RATE_MIN_QPM, RATE_MAX_QPM)
    scaled = np.maximum(1, (rates * params.scale)).astype(np.int64)
    return DitlTrace(params=params, per_minute=scaled)


def iter_replay_arrivals(
    trace: Optional[DitlTrace] = None,
    *,
    users: int,
    per_user_qps: float = 0.05,
    limit: Optional[int] = None,
    seed: int = 1337,
) -> Iterator[Tuple[float, int]]:
    """Lazy ``(arrival_time, user_id)`` stream for population replay.

    The published DITL envelope is an *absolute* rate from one busy
    resolver serving an unknown user count; replaying it verbatim under
    a small simulated population would swamp the service rate.  Instead
    the envelope contributes its **shape**: the per-minute rates are
    normalised to a diurnal modulation factor, and the instantaneous
    arrival rate is ``users × per_user_qps × factor(minute)`` — a
    Poisson process (seeded, exponential gaps) whose volume scales with
    the simulated population while keeping the trace's load dynamics.
    The minute index wraps, so the stream is unbounded; ``limit`` caps
    it.  Arrivals are generated one at a time — O(1) memory no matter
    how many queries the replay drains — and each carries a uniformly
    drawn user id.
    """
    if users < 1:
        raise ValueError("users must be >= 1")
    if per_user_qps <= 0:
        raise ValueError("per_user_qps must be positive")
    trace = trace or generate_trace(DitlParams(scale=0.001))
    per_minute = trace.per_minute.astype(np.float64)
    factors = [float(f) for f in per_minute / per_minute.mean()]
    rng = random.Random(seed)
    now = 0.0
    emitted = 0
    while limit is None or emitted < limit:
        minute = int(now // 60.0) % len(factors)
        rate = users * per_user_qps * max(factors[minute], 1e-6)
        now += rng.expovariate(rate)
        yield now, rng.randrange(users)
        emitted += 1


@dataclasses.dataclass
class DitlOverheadResult:
    """Fig. 12's series, at trace scale."""

    trace: DitlTrace
    #: Cumulative baseline bytes per minute.
    cumulative_baseline_bytes: np.ndarray
    #: Cumulative TXT-signalling overhead bytes per minute.
    cumulative_overhead_bytes: np.ndarray
    #: TXT fetches per minute (cache misses).
    txt_fetches_per_minute: np.ndarray

    @property
    def total_overhead_bytes(self) -> int:
        return int(self.cumulative_overhead_bytes[-1])

    @property
    def total_baseline_bytes(self) -> int:
        return int(self.cumulative_baseline_bytes[-1])

    def overhead_mbps(self) -> float:
        """Average extra bandwidth, in Mbit/s, over the trace."""
        seconds = len(self.trace.per_minute) * 60.0
        return self.total_overhead_bytes * 8 / seconds / 1e6

    def rescaled_total_overhead_bytes(self) -> float:
        """Overhead mapped back to the full published trace volume.

        TXT overhead is driven by distinct-zone cache misses, which grow
        sublinearly in volume, so linear rescaling is an upper bound; we
        report it as the paper-comparable headline number.
        """
        return self.total_overhead_bytes * self.trace.rescale_factor()


def evaluate_txt_overhead(
    trace: DitlTrace, params: Optional[DitlParams] = None
) -> DitlOverheadResult:
    """Replay the trace against a TTL cache of TXT signals.

    Per minute: draw the zone index of every query from the Zipf
    popularity model, count the zones whose cached signal is missing or
    expired, and charge one TXT exchange for each.
    """
    params = params or trace.params
    rng = np.random.default_rng(params.seed + 1)
    population = params.zone_population
    # Zipf ranks via the inverse-CDF trick on a power-law, bounded to
    # the population size.
    last_fetch = np.full(population, -np.inf, dtype=np.float64)
    fetches = np.zeros(len(trace.per_minute), dtype=np.int64)
    baseline = np.zeros(len(trace.per_minute), dtype=np.float64)
    for minute, count in enumerate(trace.per_minute):
        now = minute * 60.0
        raw = rng.zipf(params.zipf_s, size=int(count))
        zones = np.minimum(raw, population) - 1
        unique_zones = np.unique(zones)
        expired = last_fetch[unique_zones] < now - params.txt_ttl
        miss_zones = unique_zones[expired]
        last_fetch[miss_zones] = now
        fetches[minute] = len(miss_zones)
        baseline[minute] = count * params.baseline_bytes_per_query
    overhead = fetches * float(params.txt_exchange_bytes)
    return DitlOverheadResult(
        trace=trace,
        cumulative_baseline_bytes=np.cumsum(baseline),
        cumulative_overhead_bytes=np.cumsum(overhead),
        txt_fetches_per_minute=fetches,
    )
