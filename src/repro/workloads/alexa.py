"""Synthetic "Alexa top-N" popular-domain workload.

The paper queries Alexa's top 100 / 10k / 1M lists.  The list itself is
no longer redistributable (and leakage does not depend on the literal
names), so we generate a seeded population with the distributional
properties the experiments exercise:

* a realistic TLD mix with a long tail (the registry's deposits
  concentrate in few TLDs, so tail-TLD queries fall into wide NSEC
  ranges — one driver of the Fig. 9 decay);
* Zipf-distributed name tokens, so popular prefixes cluster in
  canonical order (the other driver: clustered queries collide with
  previously cached NSEC ranges);
* calibrated DNSSEC deployment rates: ~3 % of SLDs signed (paper
  Section 1), roughly half of those with a DS in the parent (the rest
  are islands of security), and ~1.5 % of domains with a DLV deposit
  (calibrated to the Section 5.3 utility measurement).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..crypto.memo import BoundedMemo
from ..dnscore import Name

#: Registry-filler populations are expensive to draw and identical
#: across repeated universe builds; see :meth:`AlexaWorkload.registry_filler`.
_FILLER_MEMO = BoundedMemo(16)

perf.register_cache(
    "workloads.filler_memo", _FILLER_MEMO.clear, _FILLER_MEMO.stats
)


@dataclasses.dataclass(frozen=True)
class TldSpec:
    """One top-level domain in the simulated root."""

    label: str
    weight: float
    signed: bool = True


#: Default TLD mix.  ~85 % of TLDs signed (paper Section 2.3): ru and cn
#: are the unsigned ones here.
DEFAULT_TLDS: Tuple[TldSpec, ...] = (
    TldSpec("com", 0.46),
    TldSpec("net", 0.12),
    TldSpec("org", 0.09),
    TldSpec("ru", 0.05, signed=False),
    TldSpec("de", 0.05),
    TldSpec("uk", 0.04),
    TldSpec("jp", 0.04),
    TldSpec("br", 0.03),
    TldSpec("cn", 0.03, signed=False),
    TldSpec("info", 0.03),
    TldSpec("io", 0.02),
    TldSpec("xyz", 0.02),
    TldSpec("edu", 0.02),
)


@dataclasses.dataclass(frozen=True)
class DomainSpec:
    """Everything the universe needs to know about one SLD."""

    name: Name
    rank: int
    signed: bool
    ds_in_parent: bool
    dlv_deposited: bool
    out_of_bailiwick_ns: bool

    def is_island_of_security(self) -> bool:
        """Signed but unvalidatable from the root — DLV's raison d'être."""
        return self.signed and not self.ds_in_parent


@dataclasses.dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic population (defaults are calibrated)."""

    seed: int = 2016
    tlds: Tuple[TldSpec, ...] = DEFAULT_TLDS
    #: Fraction of SLDs that sign their zone (paper: ~3 %).
    signed_fraction: float = 0.03
    #: Of signed SLDs, fraction with a DS in the parent (the rest are
    #: islands of security).
    ds_given_signed: float = 0.5
    #: DLV deposit probability for islands / for secured zones
    #: (calibrated to the paper's Section 5.3 utility of ~1.2 %).
    dlv_given_island: float = 0.35
    dlv_given_secured: float = 0.05
    #: Fraction of domains using shared (out-of-bailiwick) nameservers.
    out_of_bailiwick_fraction: float = 0.15
    #: Name-token model: vocabulary size and Zipf skew.
    vocabulary_size: int = 2000
    token_zipf_s: float = 0.9


class NameGenerator:
    """Seeded generator of plausible, clustered domain labels."""

    _SYLLABLES = (
        "an ba be bo ca co da de di do el en er fa fi go ha he in ka ki "
        "la le li lo ma me mi mo na ne no pa pe po ra re ri ro sa se si "
        "so ta te ti to ul un va ve vi yo za zo"
    ).split()

    def __init__(self, rng: random.Random, params: WorkloadParams):
        self._rng = rng
        vocabulary = []
        for _ in range(params.vocabulary_size):
            syllable_count = rng.choice((2, 2, 3, 3, 4))
            vocabulary.append(
                "".join(rng.choice(self._SYLLABLES) for _ in range(syllable_count))
            )
        self._vocabulary = vocabulary
        # Zipf weights over the vocabulary.
        s = params.token_zipf_s
        weights = [1.0 / (rank + 1) ** s for rank in range(len(vocabulary))]
        total = sum(weights)
        self._weights = [w / total for w in weights]

    def token(self) -> str:
        return self._rng.choices(self._vocabulary, weights=self._weights, k=1)[0]

    def label(self) -> str:
        """One SLD label: one or two Zipf tokens, occasionally a digit."""
        roll = self._rng.random()
        if roll < 0.45:
            label = self.token()
        elif roll < 0.9:
            label = self.token() + self.token()
        else:
            label = self.token() + str(self._rng.randrange(100))
        return label[:40]

    def uniform_label(self, length_range: Tuple[int, int] = (8, 14)) -> str:
        """A uniformly random label — used for registry filler entries so
        their density does NOT track query clustering (see module docs)."""
        length = self._rng.randrange(*length_range)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        return "".join(self._rng.choice(alphabet) for _ in range(length))


class AlexaWorkload:
    """The generated population, ordered by popularity rank."""

    def __init__(self, count: int, params: Optional[WorkloadParams] = None):
        self.params = params or WorkloadParams()
        self._rng = random.Random(self.params.seed)
        self._names = NameGenerator(self._rng, self.params)
        self.domains: List[DomainSpec] = []
        self._by_name: Dict[Name, DomainSpec] = {}
        tld_labels = [tld.label for tld in self.params.tlds]
        tld_weights = [tld.weight for tld in self.params.tlds]
        signed_tlds = {tld.label for tld in self.params.tlds if tld.signed}
        seen = set()
        rank = 0
        while len(self.domains) < count:
            label = self._names.label()
            tld = self._rng.choices(tld_labels, weights=tld_weights, k=1)[0]
            name = Name([label, tld])
            if name in seen:
                continue
            seen.add(name)
            rank += 1
            spec = self._make_spec(name, rank, tld in signed_tlds)
            self.domains.append(spec)
            self._by_name[name] = spec

    def _make_spec(self, name: Name, rank: int, tld_signed: bool) -> DomainSpec:
        p = self.params
        signed = self._rng.random() < p.signed_fraction
        # A DS can only live in a parent that is itself signed; SLDs
        # under unsigned TLDs are islands of security at best.  (The
        # roll is drawn whenever the zone is signed so seeded sequences
        # stay stable across this constraint.)
        ds_roll = signed and self._rng.random() < p.ds_given_signed
        ds_in_parent = ds_roll and tld_signed
        if signed and not ds_in_parent:
            dlv = self._rng.random() < p.dlv_given_island
        elif signed:
            dlv = self._rng.random() < p.dlv_given_secured
        else:
            dlv = False
        return DomainSpec(
            name=name,
            rank=rank,
            signed=signed,
            ds_in_parent=ds_in_parent,
            dlv_deposited=dlv,
            out_of_bailiwick_ns=self._rng.random() < p.out_of_bailiwick_fraction,
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self):
        return iter(self.domains)

    def top(self, count: int) -> List[DomainSpec]:
        return self.domains[:count]

    def names(self, count: Optional[int] = None) -> List[Name]:
        pool = self.domains if count is None else self.domains[:count]
        return [spec.name for spec in pool]

    def get(self, name: Name) -> Optional[DomainSpec]:
        return self._by_name.get(name)

    def shuffled_names(self, count: int, trial_seed: int) -> List[Name]:
        """A shuffled copy of the top-*count* names — the Section 5.1
        "Order Matters" experiment."""
        names = self.names(count)
        random.Random(trial_seed).shuffle(names)
        return names

    def registry_filler(
        self,
        count: int,
        tld_weights: Optional[Dict[str, float]] = None,
    ) -> List[Name]:
        """Background registry deposits: domains registered in the DLV
        zone that the experiment never queries.  Labels are uniform (the
        registry population does not track query-name clustering); the
        TLD mix defaults to the workload's own mix tilted toward the
        DNSSEC-friendly TLDs, mirroring the real registry."""
        if tld_weights is None:
            tld_weights = self.calibrated_filler_weights()
        # The population is a pure function of (params, workload size,
        # count, weights) — params seed the generator, workload size
        # fixes the collision set — so repeated universe builds over the
        # same workload reuse it from the memo.
        memo_key = (
            self.params,
            len(self._by_name),
            count,
            tuple(sorted(tld_weights.items())),
        )
        if perf.ENABLED:
            cached = _FILLER_MEMO.get(memo_key)
            if cached is not None:
                return list(cached)
        filler_tlds = list(tld_weights)
        filler_weights = [tld_weights[label] for label in filler_tlds]
        # Independent RNG: the filler population must not depend on how
        # many workload domains were generated before it.
        rng = random.Random(self.params.seed ^ 0xF111E4)
        generator = NameGenerator(rng, self.params)
        names: List[Name] = []
        seen = set(self._by_name)
        while len(names) < count:
            name = Name(
                [
                    generator.uniform_label(),
                    rng.choices(filler_tlds, weights=filler_weights, k=1)[0],
                ]
            )
            if name in seen:
                continue
            seen.add(name)
            names.append(name)
        if perf.ENABLED:
            _FILLER_MEMO.put(memo_key, tuple(names))
        return names

    def calibrated_filler_weights(self) -> Dict[str, float]:
        """The registry-population TLD mix that reproduces the paper's
        leakage curve (Figs. 8/9): deposits concentrated in the
        DNSSEC-friendly TLDs, none at all in the long tail (those tail
        TLDs collapse into a handful of wide NSEC ranges, which is what
        caps leakage at ~84 % even for the top-100 workload)."""
        weights = {t.label: t.weight for t in self.params.tlds}
        for boosted in ("com", "net", "org", "edu", "info"):
            if boosted in weights:
                weights[boosted] *= 1.5
        for uncovered in ("ru", "cn", "io", "xyz", "uk"):
            weights.pop(uncovered, None)
        return weights
