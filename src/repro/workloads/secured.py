"""The "Huque-45" DNSSEC-secured domain set (paper Section 4.2, 5.2).

The paper uses a list of 45 DNSSEC-secured domains from Huque's DNSstat
to test whether secured domains are leaked to the DLV registry.  In
their measurement, 5 of the 45 could not be validated on-path because
their parents carried no DS — islands of security — and exactly those 5
were sent to the DLV server under a *correct* configuration, while all
45 leaked when the trust anchor was missing.

The original list is gone, so we synthesise a set with the same
composition: 45 signed domains, 5 of them islands.
"""

from __future__ import annotations

from typing import List

from ..dnscore import Name
from .alexa import DomainSpec

SECURED_DOMAIN_COUNT = 45
ISLAND_COUNT = 5

_SECURED_BASE_LABELS = [
    "ietf", "isoc", "iana", "ripe", "nlnetlabs", "sidn", "afnic", "nic-cz",
    "switch", "nominet", "verisign", "icann", "dnssec-tools", "opendnssec",
    "powerdns", "knot-dns", "unbound-net", "bind-users", "root-canary",
    "dnsviz", "zonemaster", "caida", "isi-edu", "columbia-cs", "upenn-net",
    "berkeley-ops", "lbl-gov", "ornl-net", "desy-de", "cern-ops",
    "surfnet", "funet", "uninett", "rediris", "garr-net", "dfn-verein",
    "renater", "belnet", "heanet", "arnes-si",
]

_ISLAND_LABELS = [
    "island-alpha", "island-bravo", "island-charlie", "island-delta",
    "island-echo",
]

_SECURED_TLDS = ["org", "net", "com", "edu", "de"]


def secured_domains(dlv_deposited_islands: bool = True) -> List[DomainSpec]:
    """The 45-domain secured set: 40 with DS in the parent, 5 islands.

    ``dlv_deposited_islands`` controls whether the islands registered in
    the DLV registry (the paper's Section 5.2 setting, where the five
    island domains are the ones legitimately served by DLV).
    """
    specs: List[DomainSpec] = []
    for index, label in enumerate(_SECURED_BASE_LABELS):
        tld = _SECURED_TLDS[index % len(_SECURED_TLDS)]
        specs.append(
            DomainSpec(
                name=Name([label, tld]),
                rank=index + 1,
                signed=True,
                ds_in_parent=True,
                dlv_deposited=False,
                out_of_bailiwick_ns=False,
            )
        )
    for index, label in enumerate(_ISLAND_LABELS):
        tld = _SECURED_TLDS[index % len(_SECURED_TLDS)]
        specs.append(
            DomainSpec(
                name=Name([label, tld]),
                rank=len(_SECURED_BASE_LABELS) + index + 1,
                signed=True,
                ds_in_parent=False,
                dlv_deposited=dlv_deposited_islands,
                out_of_bailiwick_ns=False,
            )
        )
    assert len(specs) == SECURED_DOMAIN_COUNT
    return specs


def island_names() -> List[Name]:
    """The five island-of-security names in the secured set."""
    return [spec.name for spec in secured_domains() if spec.is_island_of_security()]
