"""Workloads: domain populations, traces, and the Universe builder."""

from .alexa import (
    AlexaWorkload,
    DEFAULT_TLDS,
    DomainSpec,
    NameGenerator,
    TldSpec,
    WorkloadParams,
)
from .ditl import (
    DitlOverheadResult,
    DitlParams,
    DitlTrace,
    FULL_TRACE_MINUTES,
    FULL_TRACE_TOTAL_QUERIES,
    RATE_MAX_QPM,
    RATE_MIN_QPM,
    evaluate_txt_overhead,
    generate_trace,
    iter_replay_arrivals,
)
from .secured import (
    ISLAND_COUNT,
    SECURED_DOMAIN_COUNT,
    island_names,
    secured_domains,
)
from .universe import (
    ReverseZone,
    TTL_LEAF,
    TTL_REGISTRY,
    TTL_ROOT,
    TTL_TLD_DELEGATION,
    Universe,
    UniverseParams,
)

__all__ = [
    "AlexaWorkload",
    "DEFAULT_TLDS",
    "DitlOverheadResult",
    "DitlParams",
    "DitlTrace",
    "DomainSpec",
    "FULL_TRACE_MINUTES",
    "FULL_TRACE_TOTAL_QUERIES",
    "RATE_MAX_QPM",
    "RATE_MIN_QPM",
    "evaluate_txt_overhead",
    "generate_trace",
    "iter_replay_arrivals",
    "ISLAND_COUNT",
    "NameGenerator",
    "ReverseZone",
    "SECURED_DOMAIN_COUNT",
    "TldSpec",
    "TTL_LEAF",
    "TTL_REGISTRY",
    "TTL_ROOT",
    "TTL_TLD_DELEGATION",
    "Universe",
    "UniverseParams",
    "WorkloadParams",
    "island_names",
    "secured_domains",
]
