"""The Universe: a complete simulated DNS world on one network.

Given a domain population (:class:`~repro.workloads.alexa.DomainSpec`
list), this builds:

* a signed root zone delegating the TLDs (85 % of them signed) plus the
  ``in-addr.arpa`` reverse tree and the ``org`` branch hosting the DLV
  registry's own delegation chain (root → org → isc.org → dlv.isc.org);
* one authoritative zone per TLD with per-domain delegations (DS for
  secured domains, nothing for unsigned/island domains);
* one leaf zone per domain on a shared-hosting provider server (most
  domains in-bailiwick with glue, a fraction on out-of-bailiwick
  nameservers under ``hostingN.net``);
* the DLV registry itself, populated with the deposits of the domain
  population plus background filler entries (the registry's real-world
  population that the experiment never queries but that shapes the NSEC
  chain and hence aggressive negative caching);
* trust-anchor material and factories for resolvers and stubs.

Remedy deployment (paper Section 6.2) is a build-time switch: TXT
``dlv=0/1`` records in every leaf zone, and/or Z-bit signalling on the
hosting servers.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..crypto import KeyPool, make_dlv
from ..dnscore import (
    A,
    AAAA,
    Name,
    NS,
    PTR,
    ROOT,
    RRType,
    TXT,
)
from ..netsim import Capture, LatencyModel, Network, SimClock
from ..resolver import (
    RecursiveResolver,
    ResolverConfig,
    StubClient,
    TrustAnchor,
    TrustAnchorStore,
)
from ..servers import AuthoritativeServer, DenialMode, DLVRegistryServer
from ..servers.dlv_registry import DlvRegistryZone
from ..zones import Zone, ZoneBuilder, make_soa
from ..zones.zone import LookupOutcome, LookupResult, ZoneError
from .alexa import DomainSpec, TldSpec, DEFAULT_TLDS

#: TTLs modelled on operational practice.
TTL_ROOT = 86400
TTL_TLD_DELEGATION = 86400
TTL_LEAF = 3600
TTL_REGISTRY = 3600


@dataclasses.dataclass(frozen=True)
class UniverseParams:
    """Build-time configuration of the simulated world."""

    seed: int = 7
    modulus_bits: int = 512
    key_pool_size: int = 32
    registry_origin: Name = Name.from_text("dlv.isc.org")
    #: Background DLV registry entries beyond the workload's deposits.
    registry_filler: Sequence[Name] = ()
    #: Privacy-preserving (hashed) registry — paper Section 6.2.2.
    registry_hashed: bool = False
    #: NSEC3 denial at the registry — paper Section 7.3.
    registry_denial: DenialMode = DenialMode.NSEC
    #: ISC phase-out mode: serve the zone but with zero deposits.
    registry_empty: bool = False
    #: Deploy the TXT dlv=0/1 signal in every leaf zone.
    deploy_txt_signal: bool = False
    #: Deploy Z-bit signalling at the hosting servers.
    deploy_zbit_signal: bool = False
    hosting_provider_count: int = 16
    #: Fraction of leaf zones publishing an AAAA at the apex.
    apex_aaaa_fraction: float = 0.6
    latency_min: float = 0.010
    latency_max: float = 0.120
    latency_jitter: float = 0.010
    #: Packet-loss probability per exchange (0 = the deterministic
    #: default; ~0.01-0.03 reproduces live-measurement trial variance).
    loss_rate: float = 0.0


class ReverseZone:
    """A synthetic ``in-addr.arpa`` zone answering every PTR query."""

    def __init__(self, ttl: int = TTL_LEAF):
        self.origin = Name.from_text("in-addr.arpa")
        self.ttl = ttl
        self._soa = None

    def lookup(self, qname: Name, qtype: RRType, dnssec_ok: bool = False) -> LookupResult:
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(f"{qname.to_text()} outside in-addr.arpa")
        from ..dnscore import RRset, SOA

        if self._soa is None:
            self._soa = RRset(
                self.origin, RRType.SOA, self.ttl, (make_soa(self.origin),)
            )
        if qname == self.origin or qtype is not RRType.PTR:
            return LookupResult(LookupOutcome.NODATA, authority=(self._soa,))
        target = Name(["host-" + "-".join(qname.labels[:4]), "example", "net"])
        from ..dnscore import RRset as RRset_

        rrset = RRset_(qname, RRType.PTR, self.ttl, (PTR(target),))
        return LookupResult(LookupOutcome.ANSWER, answer=(rrset,))


class Universe:
    """The assembled simulation world."""

    def __init__(
        self,
        domains: Sequence[DomainSpec],
        params: Optional[UniverseParams] = None,
        tlds: Sequence[TldSpec] = DEFAULT_TLDS,
        extra_domains: Sequence[DomainSpec] = (),
    ):
        self.params = params or UniverseParams()
        self.clock = SimClock()
        self.network = Network(
            clock=self.clock,
            latency=LatencyModel(
                seed=self.params.seed,
                min_base=self.params.latency_min,
                max_base=self.params.latency_max,
                jitter=self.params.latency_jitter,
            ),
            loss_rate=self.params.loss_rate,
            loss_seed=self.params.seed ^ 0x7055,
        )
        self.keys = KeyPool(
            seed=self.params.seed,
            pool_size=self.params.key_pool_size,
            modulus_bits=self.params.modulus_bits,
        )
        self.domains: List[DomainSpec] = list(domains) + list(extra_domains)
        self._spec_by_name: Dict[Name, DomainSpec] = {
            spec.name: spec for spec in self.domains
        }
        self._tlds = list(tlds)
        self._tld_by_label = {tld.label: tld for tld in self._tlds}
        self._address_counter = 0
        self._apex_address: Dict[Name, str] = {}
        self._resolver_count = 0
        self._stub_count = 0
        #: Telemetry sinks handed to every resolver built by
        #: :meth:`make_resolver`; ``None`` until
        #: :meth:`attach_telemetry` installs real ones.
        self.tracer = None
        self.metrics = None

        self._build_registry()
        self._build_hosting()
        self._build_tlds()
        self._build_root()

    # ------------------------------------------------------------------
    # Address allocation
    # ------------------------------------------------------------------

    def _next_address(self) -> str:
        self._address_counter += 1
        value = self._address_counter
        return f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def _build_registry(self) -> None:
        params = self.params
        self.registry_origin = params.registry_origin
        self.registry_keys = self.keys.keys_for_zone(self.registry_origin)
        deposits: Dict[Name, object] = {}
        if not params.registry_empty:
            for spec in self.domains:
                if spec.dlv_deposited:
                    owner_keys = self.keys.keys_for_zone(spec.name)
                    deposits[spec.name] = make_dlv(spec.name, owner_keys.ksk.dnskey)
            for filler in params.registry_filler:
                if filler not in deposits:
                    filler_keys = self.keys.keys_for_zone(filler)
                    deposits[filler] = make_dlv(filler, filler_keys.ksk.dnskey)
        self.registry_address = self._next_address()
        registry_ns_host = self.registry_origin.prepend("ns1")
        self.registry_zone = DlvRegistryZone(
            origin=self.registry_origin,
            keyset=self.registry_keys,
            deposits=deposits,  # type: ignore[arg-type]
            ns_host=registry_ns_host,
            ns_address=self.registry_address,
            hashed=params.registry_hashed,
            denial=params.registry_denial,
            ttl=TTL_REGISTRY,
        )
        self.registry_server = DLVRegistryServer(self.registry_zone)
        self.network.register(self.registry_address, self.registry_server)

    # ------------------------------------------------------------------
    # Hosting providers and leaf zones
    # ------------------------------------------------------------------

    def _provider_for(self, name: Name) -> int:
        digest = hashlib.md5(name.to_text().encode("ascii")).digest()
        return digest[1] % self.params.hosting_provider_count

    def _build_hosting(self) -> None:
        params = self.params
        zbit = self._zbit_predicate if params.deploy_zbit_signal else None
        self._providers: List[AuthoritativeServer] = []
        self._provider_addresses: List[str] = []
        for _ in range(params.hosting_provider_count):
            server = AuthoritativeServer(zbit_signal=zbit)
            address = self._next_address()
            self.network.register(address, server)
            self._providers.append(server)
            self._provider_addresses.append(address)
        # hostingN.net zones provide the out-of-bailiwick NS targets.
        self._hosting_ns: List[Tuple[Name, Name]] = []
        for index in range(params.hosting_provider_count):
            origin = Name([f"hosting{index}", "net"])
            address = self._provider_addresses[index]
            zone = ZoneBuilder(origin, default_ttl=TTL_LEAF)
            ns1 = origin.prepend("ns1")
            ns2 = origin.prepend("ns2")
            zone.with_ns([(ns1, address), (ns2, address)])
            built = zone.build()
            self._providers[index].add_zone(built)
            self._hosting_ns.append((ns1, ns2))
        for spec in self.domains:
            self._build_leaf_zone(spec)

    def _build_leaf_zone(self, spec: DomainSpec) -> None:
        params = self.params
        provider = self._provider_for(spec.name)
        address = self._provider_addresses[provider]
        apex_ip = self._next_address()
        self._apex_address[spec.name] = apex_ip
        builder = ZoneBuilder(spec.name, default_ttl=TTL_LEAF)
        if spec.out_of_bailiwick_ns:
            ns1, ns2 = self._hosting_ns[provider]
        else:
            ns1 = spec.name.prepend("ns1")
            ns2 = spec.name.prepend("ns2")
        builder.with_ns([(ns1, address), (ns2, address)])
        builder.with_address(spec.name, ipv4=apex_ip)
        digest = hashlib.md5(spec.name.to_text().encode("ascii")).digest()
        if digest[2] / 255.0 < params.apex_aaaa_fraction:
            builder.with_rrset(
                spec.name, RRType.AAAA, [AAAA(self._synthetic_ipv6(spec.name))]
            )
        if params.deploy_txt_signal:
            signal = "dlv=1" if spec.dlv_deposited else "dlv=0"
            builder.with_rrset(spec.name, RRType.TXT, [TXT((signal,))])
        if spec.signed:
            zone = builder.signed(self.keys.keys_for_zone(spec.name))
        else:
            zone = builder.build()
        self._providers[provider].add_zone(zone)

    @staticmethod
    def _synthetic_ipv6(name: Name) -> str:
        digest = hashlib.md5(name.to_text().encode("ascii")).hexdigest()
        return f"2001:db8:{digest[0:4]}:{digest[4:8]}::1"

    def _zbit_predicate(self, qname: Name) -> bool:
        """Z-bit remedy: signal when the queried name's SLD has a DLV
        deposit (paper Section 6.2.1)."""
        if qname.label_count < 2:
            return False
        sld = Name(qname.labels[-2:])
        return self.registry_zone.has_deposit(sld)

    # ------------------------------------------------------------------
    # TLD and root zones
    # ------------------------------------------------------------------

    def _build_tlds(self) -> None:
        self._tld_zones: Dict[str, Zone] = {}
        self._tld_addresses: Dict[str, str] = {}
        by_tld: Dict[str, List[DomainSpec]] = {}
        for spec in self.domains:
            by_tld.setdefault(spec.name.labels[-1], []).append(spec)
        # Make sure org and net exist (registry chain, hosting zones),
        # and that every workload TLD has a zone even if it was not in
        # the configured TLD list.
        required_labels = ["org", "net"] + sorted(by_tld)
        for required in required_labels:
            if required not in self._tld_by_label:
                self._tld_by_label[required] = TldSpec(required, 0.0)
                self._tlds.append(self._tld_by_label[required])
        for tld_spec in self._tlds:
            label = tld_spec.label
            origin = Name([label])
            address = self._next_address()
            builder = ZoneBuilder(origin, default_ttl=TTL_TLD_DELEGATION)
            builder.with_ns([(origin.prepend("ns1"), address)])
            for spec in by_tld.get(label, ()):
                self._delegate_leaf(builder, spec)
            if label == "net":
                for index in range(self.params.hosting_provider_count):
                    hosting_origin = Name([f"hosting{index}", "net"])
                    ns1, _ = self._hosting_ns[index]
                    builder.delegate(
                        hosting_origin,
                        [(ns1, self._provider_addresses[index])],
                    )
            if label == "org":
                self._delegate_registry_chain(builder)
            if tld_spec.signed:
                zone = builder.signed(self.keys.keys_for_zone(origin))
            else:
                zone = builder.build()
            self._tld_zones[label] = zone
            server = AuthoritativeServer([zone])
            self.network.register(address, server)
            self._tld_addresses[label] = address

    def _delegate_leaf(self, builder: ZoneBuilder, spec: DomainSpec) -> None:
        provider = self._provider_for(spec.name)
        address = self._provider_addresses[provider]
        if spec.out_of_bailiwick_ns:
            ns1, ns2 = self._hosting_ns[provider]
            hosts = [(ns1, address), (ns2, address)]
        else:
            # Glue only under ns1; ns2 is advertised but unglued, which
            # is common practice and keeps the TLD zone compact.
            hosts = [
                (spec.name.prepend("ns1"), address),
                (spec.name.prepend("ns2"), ""),
            ]
        child_keys = (
            self.keys.keys_for_zone(spec.name)
            if spec.signed and spec.ds_in_parent
            else None
        )
        builder.zone.add(
            spec.name, RRType.NS, [NS(host) for host, _ in hosts]
        )
        glue_host, glue_address = hosts[0]
        if glue_host.is_subdomain_of(builder.zone.origin) and glue_address:
            if builder.zone.get(glue_host, RRType.A) is None:
                builder.zone.add(glue_host, RRType.A, [A(glue_address)])
        if child_keys is not None:
            from ..crypto import make_ds

            builder.zone.add(spec.name, RRType.DS, [make_ds(spec.name, child_keys.ksk.dnskey)])

    def _delegate_registry_chain(self, builder: ZoneBuilder) -> None:
        """org delegates isc.org (signed, DS); isc.org delegates
        dlv.isc.org (signed, DS)."""
        isc = Name.from_text("isc.org")
        isc_address = self._next_address()
        isc_keys = self.keys.keys_for_zone(isc)
        builder.delegate(
            isc, [(isc.prepend("ns1"), isc_address)], child_keyset=isc_keys
        )
        isc_builder = ZoneBuilder(isc, default_ttl=TTL_TLD_DELEGATION)
        isc_builder.with_ns([(isc.prepend("ns1"), isc_address)])
        isc_builder.delegate(
            self.registry_origin,
            [(self.registry_origin.prepend("ns1"), self.registry_address)],
            child_keyset=self.registry_keys,
        )
        isc_zone = isc_builder.signed(isc_keys)
        isc_server = AuthoritativeServer([isc_zone])
        self.network.register(isc_address, isc_server)
        self.isc_zone = isc_zone

    def _build_root(self) -> None:
        self.root_address = self._next_address()
        self.root_keys = self.keys.keys_for_zone(ROOT)
        builder = ZoneBuilder(ROOT, default_ttl=TTL_ROOT)
        root_ns_host = Name.from_text("a.root-servers.net")
        builder.zone.add(ROOT, RRType.NS, [NS(root_ns_host)], TTL_ROOT)
        builder.zone.add(root_ns_host, RRType.A, [A(self.root_address)], TTL_ROOT)
        for tld_spec in self._tlds:
            origin = Name([tld_spec.label])
            child_keys = (
                self.keys.keys_for_zone(origin) if tld_spec.signed else None
            )
            builder.delegate(
                origin,
                [(origin.prepend("ns1"), self._tld_addresses[tld_spec.label])],
                child_keyset=child_keys,
            )
        # Reverse tree.
        reverse_address = self._next_address()
        reverse_origin = Name.from_text("in-addr.arpa")
        builder.delegate(
            reverse_origin,
            [(reverse_origin.prepend("ns1"), reverse_address)],
        )
        self.root_zone = builder.signed(self.root_keys)
        self.network.register(self.root_address, AuthoritativeServer([self.root_zone]))
        self.network.register(reverse_address, AuthoritativeServer([ReverseZone()]))

    # ------------------------------------------------------------------
    # Factories and accessors
    # ------------------------------------------------------------------

    @property
    def capture(self) -> Capture:
        return self.network.capture

    def spec_for(self, name: Name) -> Optional[DomainSpec]:
        return self._spec_by_name.get(name)

    def apex_address(self, name: Name) -> Optional[str]:
        return self._apex_address.get(name)

    def tld_addresses(self) -> Dict[str, str]:
        """TLD label → authoritative server address (a copy: callers
        script faults against these without reaching into internals)."""
        return dict(self._tld_addresses)

    def hosting_addresses(self) -> List[str]:
        """Addresses of the shared-hosting providers serving the leaf
        zones (a copy) — the deployment surface for adversaries that
        tamper with terminal answers."""
        return list(self._provider_addresses)

    def has_dlv_deposit(self, name: Name) -> bool:
        return self.registry_zone.has_deposit(name)

    def root_trust_anchor(self) -> TrustAnchor:
        from ..crypto import make_ds

        return TrustAnchor(zone=ROOT, ds=make_ds(ROOT, self.root_keys.ksk.dnskey))

    def registry_trust_anchor(self) -> TrustAnchor:
        return TrustAnchor(
            zone=self.registry_origin, dnskey=self.registry_keys.ksk.dnskey
        )

    def anchors_for(self, config: ResolverConfig) -> TrustAnchorStore:
        """The anchor store a resolver with *config* would end up with."""
        store = TrustAnchorStore()
        if config.root_anchor_available:
            store.add(self.root_trust_anchor())
        if config.lookaside_enabled:
            store.add(self.registry_trust_anchor())
        return store

    def attach_telemetry(self, tracer=None, metrics=None) -> None:
        """Install telemetry sinks on the world and future resolvers.

        The same tracer is shared between the network and every
        resolver built afterwards, so fault events recorded by the
        transport nest under the resolver's exchange spans; the same
        metrics registry likewise aggregates transport, fault, and
        resolver counters in one snapshot.  Pass ``None`` to detach.
        """
        self.tracer = tracer
        self.metrics = metrics
        self.network.tracer = tracer
        self.network.metrics = metrics
        self.network.faults.metrics = metrics

    def make_resolver(
        self, config: ResolverConfig, address: Optional[str] = None
    ) -> RecursiveResolver:
        self._resolver_count += 1
        address = address or f"192.0.2.{self._resolver_count}"
        resolver = RecursiveResolver(
            network=self.network,
            address=address,
            config=config,
            root_hints=[self.root_address],
            anchors=self.anchors_for(config),
            registry_origin=self.registry_origin,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.network.register(address, resolver)
        # Stub-to-resolver hops are on-host in the paper's setup.
        self.network.latency.pin(address, 0.0005)
        return resolver

    def make_stub(self, resolver: RecursiveResolver) -> StubClient:
        self._stub_count += 1
        return StubClient(
            network=self.network,
            address=f"198.18.0.{self._stub_count}",
            resolver_address=resolver.address,
        )
