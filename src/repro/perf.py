"""Process-wide switch and registry for the hot-path caches.

Every memo in the hot path (name interning, per-instance wire caches,
the RSA sign/verify memos, the keypair generator memo) is *pure*: a hit
returns exactly the bytes the skipped computation would have produced,
so results are byte-identical with caches on or off — only wall-clock
changes.  This module provides the single switch the invariance tests
flip to prove that, plus a registry so flipping it also drops any
already-memoized state.

Disable from the environment with ``REPRO_DISABLE_HOTPATH_CACHES=1``
(any value other than ``0``/``false``/``no``/empty disables), or from
code with :func:`set_caches_enabled` / :func:`caches_disabled`.

Per-instance caches (e.g. an rdata's encoded wire form stashed on the
instance) cannot be enumerated centrally; they are instead *read-gated*
on :data:`ENABLED`, so disabling the switch makes stale entries
unreachable without having to find them.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, List, Optional, Tuple

_ENV_VAR = "REPRO_DISABLE_HOTPATH_CACHES"


def _enabled_from_env() -> bool:
    value = os.environ.get(_ENV_VAR, "").strip().lower()
    return value in ("", "0", "false", "no")


#: Fast-path flag, read directly (``perf.ENABLED``) by hot code.
ENABLED: bool = _enabled_from_env()

_ClearFn = Callable[[], None]
_StatsFn = Callable[[], Dict[str, int]]

_REGISTRY: List[Tuple[str, _ClearFn, Optional[_StatsFn]]] = []


def caches_enabled() -> bool:
    """Whether the hot-path caches are currently active."""
    return ENABLED


def set_caches_enabled(enabled: bool) -> None:
    """Flip the global switch; any registered cache is cleared on every
    transition so both directions start cold."""
    global ENABLED
    ENABLED = bool(enabled)
    clear_hotpath_caches()


def register_cache(
    name: str, clear: _ClearFn, stats: Optional[_StatsFn] = None
) -> None:
    """Register a module-level cache's ``clear`` (and optional ``stats``)
    hook.  Called once at import time by each caching module."""
    _REGISTRY.append((name, clear, stats))


def clear_hotpath_caches() -> None:
    """Drop every registered module-level cache."""
    for _, clear, _ in _REGISTRY:
        clear()


def hotpath_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters for every registered cache that exposes
    them, keyed by cache name (sorted for stable output)."""
    out: Dict[str, Dict[str, int]] = {}
    for name, _, stats in _REGISTRY:
        if stats is not None:
            out[name] = dict(stats())
    return {name: out[name] for name in sorted(out)}


@contextlib.contextmanager
def caches_disabled():
    """Temporarily disable (and clear) the hot-path caches."""
    previous = ENABLED
    set_caches_enabled(False)
    try:
        yield
    finally:
        set_caches_enabled(previous)
