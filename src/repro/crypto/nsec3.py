"""NSEC3 hashing (RFC 5155 section 5) and base32hex name encoding.

Used by the NSEC3 variant of the DLV registry (paper Section 7.3): with
hashed denial of existence the resolver cannot do aggressive negative
caching, so *every* query leaks to the DLV server.
"""

from __future__ import annotations

import hashlib

from ..dnscore import Name
from ..dnscore.rdata import _encode_name

#: RFC 4648 base32hex alphabet, as used for NSEC3 owner names.
_BASE32HEX = "0123456789abcdefghijklmnopqrstuv"


def nsec3_hash(name: Name, salt: bytes, iterations: int) -> bytes:
    """Iterated, salted SHA-1 over the canonical wire name."""
    digest = hashlib.sha1(_encode_name(name) + salt).digest()
    for _ in range(iterations):
        digest = hashlib.sha1(digest + salt).digest()
    return digest


def base32hex_encode(data: bytes) -> str:
    """Encode bytes in base32hex without padding (RFC 5155 usage)."""
    bits = 0
    bit_count = 0
    out = []
    for octet in data:
        bits = (bits << 8) | octet
        bit_count += 8
        while bit_count >= 5:
            bit_count -= 5
            out.append(_BASE32HEX[(bits >> bit_count) & 0x1F])
    if bit_count:
        out.append(_BASE32HEX[(bits << (5 - bit_count)) & 0x1F])
    return "".join(out)


def nsec3_owner_label(name: Name, salt: bytes, iterations: int) -> str:
    """The base32hex label under which a name's NSEC3 record lives."""
    return base32hex_encode(nsec3_hash(name, salt, iterations))
