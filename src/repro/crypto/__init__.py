"""Cryptographic substrate for the DNSSEC/DLV simulation.

Textbook RSA with real asymmetric semantics (scaled-down moduli), DNSSEC
zone keys and key tags, DS/DLV digests, the privacy-preserving DLV
domain hash, and NSEC3 hashing.
"""

from .digest import (
    HASH_LABEL_HEX_CHARS,
    ds_digest,
    hash_domain_label,
    make_dlv,
    make_ds,
    verify_ds_matches,
)
from .keys import KeyPool, ZoneKey, ZoneKeySet, make_zone_key
from .nsec3 import base32hex_encode, nsec3_hash, nsec3_owner_label
from .numbertheory import generate_prime, is_probable_prime, modinv
from .rsa import (
    DEFAULT_MODULUS_BITS,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
)

__all__ = [
    "DEFAULT_MODULUS_BITS",
    "HASH_LABEL_HEX_CHARS",
    "KeyPool",
    "RSAPrivateKey",
    "RSAPublicKey",
    "ZoneKey",
    "ZoneKeySet",
    "base32hex_encode",
    "ds_digest",
    "generate_keypair",
    "generate_prime",
    "hash_domain_label",
    "is_probable_prime",
    "make_dlv",
    "make_ds",
    "make_zone_key",
    "modinv",
    "nsec3_hash",
    "nsec3_owner_label",
    "verify_ds_matches",
]
