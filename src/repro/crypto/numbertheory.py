"""Number-theoretic primitives for the textbook RSA implementation.

Everything takes an explicit :class:`random.Random` instance so key
generation is deterministic under a seed, which the experiment harness
relies on for reproducibility.
"""

from __future__ import annotations

import random
from typing import Optional

#: Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def is_probable_prime(candidate: int, rng: Optional[random.Random] = None,
                      rounds: int = 24) -> bool:
    """Miller-Rabin primality test.

    With 24 rounds the error probability is below 2^-48, far beyond what
    a simulation needs.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or random.Random(0xD15EA5E)
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 4:
        raise ValueError("prime size must be at least 4 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # correct size, odd
        if is_probable_prime(candidate, rng):
            return candidate


def modinv(value: int, modulus: int) -> int:
    """Modular inverse via the extended Euclidean algorithm."""
    old_r, r = value % modulus, modulus
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError(f"{value} has no inverse modulo {modulus}")
    return old_s % modulus
