"""Bounded memoization primitives for the crypto hot path.

Two users:

* :mod:`repro.crypto.rsa` keeps module-level memos for signing (keyed by
  key material + SHA-256 of the signing input) and deterministic keypair
  generation (keyed by the RNG state consumed, which it also replays).
* :class:`VerifyMemo` is held per resolver by the validator so each
  distinct (public key, signing input, signature) triple is
  modexp-verified at most once, while the validator's *logical* counters
  (``signature_checks`` / ``crypto_verify_calls``, the KeyTrap cost
  units) still advance on every call.

Every memo key includes the full inputs of the computation it skips, so
a hit can never alias distinct inputs: a tampered signature or a
substituted key is a different key tuple and is always recomputed — a
poisoned entry cannot be served out of the verify memo.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, Optional

from .. import perf


class BoundedMemo:
    """A small LRU memo with deterministic eviction (least recently
    used first, ties impossible: Python dicts preserve order)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("memo capacity must be positive")
        self.capacity = capacity
        self._data: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Optional[Any]:
        try:
            value = self._data.pop(key)
        except KeyError:
            self.misses += 1
            return None
        # Reinsert to mark as most recently used.
        self._data[key] = value
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.pop(key)
        elif len(self._data) >= self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1
        self._data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Default backing store for every :class:`VerifyMemo`.  Sharing it
#: process-wide is safe because the key is the complete verification
#: input; it is what lets repeated experiment cells (sweeps, matrices,
#: shards over the same seed) amortize each modexp across resolvers.
_VERIFY_STORE = BoundedMemo(16384)

perf.register_cache(
    "crypto.verify_memo", _VERIFY_STORE.clear, _VERIFY_STORE.stats
)


class VerifyMemo:
    """A resolver's handle on the memoized RSA verification store.

    The memo key is the *complete* input of the skipped modexp —
    ``(modulus, exponent, SHA-256(data), signature)`` — so only a
    byte-identical re-verification can hit; both True and False verdicts
    are memoized.

    Two layers of accounting, kept deliberately separate:

    * **Logical (deterministic, metrics-visible).**  Per resolver, a key
      seen before counts as ``validator.verify_memo_hits``, a first
      sight as ``_misses`` — derived from this resolver's own history
      only, so merged metric snapshots are identical however the work is
      scheduled (serial vs forked shards).
    * **Physical (wall-clock only).**  The backing store is process-wide
      by default, so repeated cells/shards in one process also skip the
      modexp across resolvers.  Those extra skips surface only in
      :data:`store_hits` and ``perf.hotpath_cache_stats()``, never in
      the metrics registry — sharing changes timing, not fingerprints.
    """

    def __init__(self, capacity: int = 8192, metrics=None, store=None):
        self._store = store if store is not None else _VERIFY_STORE
        self._metrics = metrics
        self._seen = set()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def verify(self, public_key, data: bytes, signature: bytes) -> bool:
        key = (
            public_key.modulus,
            public_key.exponent,
            hashlib.sha256(data).digest(),
            signature,
        )
        if key in self._seen:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.inc("validator.verify_memo_hits")
        else:
            self._seen.add(key)
            self.misses += 1
            if self._metrics is not None:
                self._metrics.inc("validator.verify_memo_misses")
        cached = self._store.get(key)
        if cached is not None:
            self.store_hits += 1
            return cached
        result = public_key.verify(data, signature)
        # Store the bool directly; get() treats None as a miss, and
        # verify results are never None.
        self._store.put(key, result)
        return result

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
        }
