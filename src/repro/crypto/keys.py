"""DNSSEC zone keys: KSK/ZSK pairs, DNSKEY records, and a key pool.

A signed zone has two keys (RFC 4033 terminology, paper Section 2.2):

* the *zone signing key* (ZSK) signs the zone's RRsets, and
* the *key signing key* (KSK) signs the DNSKEY RRset; its digest is what
  goes into the parent's DS record (or into a DLV record in a registry).

Generating distinct RSA primes for tens of thousands of simulated zones
would dominate runtime, so :class:`KeyPool` deals keys from a fixed,
seeded pool, assigning each zone origin a pool slot by a stable hash.
Sharing key *material* across unrelated zones changes no experiment
outcome: validation keys off the DS/DLV digest chain, and every digest
is computed over the owner name, so chains never cross between zones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Dict, List

from ..dnscore import Algorithm, DNSKEY, Name
from .rsa import DEFAULT_MODULUS_BITS, RSAPrivateKey, generate_keypair


@dataclasses.dataclass(frozen=True)
class ZoneKey:
    """One zone key: the private RSA key plus its DNSKEY presentation."""

    private: RSAPrivateKey
    dnskey: DNSKEY

    @property
    def key_tag(self) -> int:
        return self.dnskey.key_tag()

    def is_ksk(self) -> bool:
        return self.dnskey.is_ksk()


@dataclasses.dataclass(frozen=True)
class ZoneKeySet:
    """The KSK/ZSK pair a signed zone uses."""

    ksk: ZoneKey
    zsk: ZoneKey

    def dnskeys(self) -> List[DNSKEY]:
        return [self.ksk.dnskey, self.zsk.dnskey]


def make_zone_key(private: RSAPrivateKey, ksk: bool) -> ZoneKey:
    flags = DNSKEY.KSK_FLAGS if ksk else DNSKEY.ZONE_KEY_FLAGS
    dnskey = DNSKEY(
        flags=flags,
        protocol=3,
        algorithm=Algorithm.RSASHA256,
        public_key=private.public_key.to_bytes(),
    )
    return ZoneKey(private=private, dnskey=dnskey)


class KeyPool:
    """A deterministic pool of RSA keypairs shared across zones.

    ``pool_size`` keypairs are generated lazily from the seed.  A zone
    origin is mapped to one of ``pool_size // 2`` (KSK, ZSK) slot pairs
    by a stable MD5 hash of its text form, so the mapping is identical
    across runs and across independently constructed pools with the same
    seed — and memory stays bounded no matter how many zones exist.
    """

    def __init__(
        self,
        seed: int = 0x5EED,
        pool_size: int = 32,
        modulus_bits: int = DEFAULT_MODULUS_BITS,
    ):
        if pool_size < 2 or pool_size % 2:
            raise ValueError("pool size must be an even number >= 2")
        self._rng = random.Random(seed)
        self._pool_size = pool_size
        self._modulus_bits = modulus_bits
        self._pool: List[RSAPrivateKey] = []
        self._keysets: Dict[int, ZoneKeySet] = {}

    def _pool_key(self, index: int) -> RSAPrivateKey:
        while len(self._pool) <= index:
            self._pool.append(generate_keypair(self._rng, self._modulus_bits))
        return self._pool[index]

    @staticmethod
    def _slot_for(origin: Name, slot_count: int) -> int:
        digest = hashlib.md5(origin.to_text().encode("ascii")).digest()
        return int.from_bytes(digest[:4], "big") % slot_count

    def keys_for_zone(self, origin: Name) -> ZoneKeySet:
        """Return the (stable) key set for a zone origin."""
        slot = self._slot_for(origin, self._pool_size // 2)
        if slot not in self._keysets:
            self._keysets[slot] = ZoneKeySet(
                ksk=make_zone_key(self._pool_key(2 * slot), ksk=True),
                zsk=make_zone_key(self._pool_key(2 * slot + 1), ksk=False),
            )
        return self._keysets[slot]

    def fresh_keyset(self) -> ZoneKeySet:
        """A key set outside the pool (used by tampering tests)."""
        return ZoneKeySet(
            ksk=make_zone_key(generate_keypair(self._rng, self._modulus_bits), True),
            zsk=make_zone_key(generate_keypair(self._rng, self._modulus_bits), False),
        )
