"""Digest helpers: DS records, DLV records, and the privacy-preserving
domain hash.

``hash_domain_label`` implements the paper's second remedy
(Section 6.2.2): instead of sending ``example.com.dlv.isc.org`` the
resolver sends ``crypto_hash("example.com").dlv.isc.org``, so a registry
miss reveals only a digest.
"""

from __future__ import annotations

import hashlib

from ..dnscore import DLV, DS, DigestType, DNSKEY, Name
from ..dnscore.rdata import _encode_name


def ds_digest(owner: Name, dnskey: DNSKEY, digest_type: DigestType) -> bytes:
    """RFC 4034 section 5.1.4: digest(owner | DNSKEY RDATA)."""
    data = _encode_name(owner) + dnskey.to_wire()
    if digest_type is DigestType.SHA1:
        return hashlib.sha1(data).digest()
    if digest_type is DigestType.SHA256:
        return hashlib.sha256(data).digest()
    raise ValueError(f"unsupported digest type {digest_type!r}")


def make_ds(
    owner: Name, dnskey: DNSKEY, digest_type: DigestType = DigestType.SHA256
) -> DS:
    """Build the DS record a parent zone publishes for a child KSK."""
    return DS(
        key_tag=dnskey.key_tag(),
        algorithm=dnskey.algorithm,
        digest_type=digest_type,
        digest=ds_digest(owner, dnskey, digest_type),
    )


def make_dlv(
    owner: Name, dnskey: DNSKEY, digest_type: DigestType = DigestType.SHA256
) -> DLV:
    """Build the DLV record a zone owner deposits in a registry.

    RFC 4431: contents are identical to the DS record the owner *would*
    have published in its parent.
    """
    return DLV.from_ds(make_ds(owner, dnskey, digest_type))


def verify_ds_matches(owner: Name, dnskey: DNSKEY, ds: DS) -> bool:
    """Does *ds* authenticate *dnskey* as a trust point for *owner*?"""
    if ds.key_tag != dnskey.key_tag():
        return False
    if ds.algorithm != dnskey.algorithm:
        return False
    return ds.digest == ds_digest(owner, dnskey, ds.digest_type)


#: Number of hex characters kept from the SHA-256 digest when forming the
#: hashed-DLV query label.  56 hex chars fit comfortably in one label
#: (max 63 octets) while keeping 224 bits of preimage resistance.
HASH_LABEL_HEX_CHARS = 56


def hash_domain_label(domain: Name) -> str:
    """The paper's ``crypto_hash(domain_name)`` as a single DNS label."""
    digest = hashlib.sha256(domain.to_text().encode("ascii")).hexdigest()
    return digest[:HASH_LABEL_HEX_CHARS]
