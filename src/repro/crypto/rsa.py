"""Textbook RSA signatures over SHA-256 digests.

This provides *real asymmetric* sign/verify semantics for the DNSSEC
simulation: validation genuinely fails for tampered data or wrong keys.
Moduli default to 512 bits — the experiments exercise chain-of-trust
logic, not cryptographic strength, and small keys keep zone signing fast
(see DESIGN.md, "Scaled-down RSA").
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Tuple

from .. import perf
from .memo import BoundedMemo
from .numbertheory import generate_prime, modinv

DEFAULT_MODULUS_BITS = 512
_PUBLIC_EXPONENT = 65537

#: Signing memo: (modulus, private exponent, SHA-256(data)) -> signature.
#: The signature is a pure function of exactly that triple, so a hit is
#: byte-identical to the modexp it skips.
_SIGN_MEMO = BoundedMemo(8192)

#: Keypair memo: (modulus_bits, rng state before generation) ->
#: (keypair, rng state after).  Keying on the consumed RNG state — and
#: replaying the post-state on a hit — makes the memo transparent to
#: every later draw from the same stream (e.g. ``fresh_keyset``), so
#: repeated universe builds skip prime generation without perturbing
#: downstream randomness.
_KEYGEN_MEMO = BoundedMemo(512)

perf.register_cache("crypto.sign_memo", _SIGN_MEMO.clear, _SIGN_MEMO.stats)
perf.register_cache(
    "crypto.keygen_memo", _KEYGEN_MEMO.clear, _KEYGEN_MEMO.stats
)


@dataclasses.dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key (n, e) with a DNSKEY-style byte encoding."""

    modulus: int
    exponent: int = _PUBLIC_EXPONENT

    def to_bytes(self) -> bytes:
        """Encode as exponent-length-prefixed bytes, in the spirit of the
        RFC 3110 DNSKEY public-key field."""
        exponent_bytes = _int_to_bytes(self.exponent)
        modulus_bytes = _int_to_bytes(self.modulus)
        if len(exponent_bytes) > 255:
            raise ValueError("exponent too large for one-octet length")
        return bytes([len(exponent_bytes)]) + exponent_bytes + modulus_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSAPublicKey":
        if not data:
            raise ValueError("empty public key")
        exponent_length = data[0]
        if len(data) < 1 + exponent_length + 1:
            raise ValueError("truncated public key")
        exponent = int.from_bytes(data[1 : 1 + exponent_length], "big")
        modulus = int.from_bytes(data[1 + exponent_length :], "big")
        return cls(modulus=modulus, exponent=exponent)

    def verify(self, data: bytes, signature: bytes) -> bool:
        """Check ``signature`` over SHA-256(data)."""
        signature_int = int.from_bytes(signature, "big")
        if signature_int >= self.modulus:
            return False
        recovered = pow(signature_int, self.exponent, self.modulus)
        return recovered == _digest_int(data, self.modulus)


@dataclasses.dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key; carries its public half."""

    modulus: int
    public_exponent: int
    private_exponent: int

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(modulus=self.modulus, exponent=self.public_exponent)

    def sign(self, data: bytes) -> bytes:
        if perf.ENABLED:
            memo_key = (
                self.modulus,
                self.private_exponent,
                hashlib.sha256(data).digest(),
            )
            cached = _SIGN_MEMO.get(memo_key)
            if cached is not None:
                return cached
        digest = _digest_int(data, self.modulus)
        signature_int = pow(digest, self.private_exponent, self.modulus)
        signature = signature_int.to_bytes(
            (self.modulus.bit_length() + 7) // 8, "big"
        )
        if perf.ENABLED:
            _SIGN_MEMO.put(memo_key, signature)
        return signature


def generate_keypair(
    rng: random.Random, modulus_bits: int = DEFAULT_MODULUS_BITS
) -> RSAPrivateKey:
    """Generate an RSA keypair deterministically from *rng*.

    Memoized on (modulus_bits, rng state): when the same seeded stream
    reaches the same state again — every fresh universe built from the
    same seed — the stored keypair is returned and the stored post-state
    replayed, skipping prime generation with identical results.
    """
    memo_key = None
    if perf.ENABLED:
        try:
            memo_key = (modulus_bits, rng.getstate())
        except AttributeError:
            memo_key = None
        if memo_key is not None:
            cached = _KEYGEN_MEMO.get(memo_key)
            if cached is not None:
                key, state_after = cached
                rng.setstate(state_after)
                return key
    key = _generate_keypair_uncached(rng, modulus_bits)
    if memo_key is not None and perf.ENABLED:
        _KEYGEN_MEMO.put(memo_key, (key, rng.getstate()))
    return key


def _generate_keypair_uncached(
    rng: random.Random, modulus_bits: int
) -> RSAPrivateKey:
    half = modulus_bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(modulus_bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        n = p * q
        if n.bit_length() != modulus_bits:
            continue
        d = modinv(_PUBLIC_EXPONENT, phi)
        return RSAPrivateKey(
            modulus=n, public_exponent=_PUBLIC_EXPONENT, private_exponent=d
        )


def _digest_int(data: bytes, modulus: int) -> int:
    """SHA-256 digest reduced into the message space of *modulus*."""
    digest = hashlib.sha256(data).digest()
    return int.from_bytes(digest, "big") % modulus


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
