"""Master-file style text serialisation for zones (RFC 1035 section 5).

Lets users inspect simulated zones, keep fixtures under version
control, and load hand-written zones into the simulator:

* :func:`zone_to_text` renders a zone as ``$ORIGIN``/``$TTL`` plus one
  record per line;
* :func:`zone_from_text` parses the same dialect back into an
  (unsigned) :class:`~repro.zones.Zone`; callers re-sign as needed.

RRSIGs are intentionally not serialised: the simulator generates them
lazily at serve time, so a round-tripped zone re-signs with its keys.
NSEC records are emitted (they are ordinary zone data once signed) but
skipped on parse for the same reason.
"""

from __future__ import annotations

import base64
import binascii
from typing import List, Optional

from ..dnscore import (
    A,
    AAAA,
    Algorithm,
    CNAME,
    DigestType,
    DLV,
    DNSKEY,
    DS,
    MX,
    Name,
    NS,
    NSEC,
    PTR,
    Rdata,
    RRType,
    RRset,
    SOA,
    TXT,
)
from .zone import Zone


class MasterFileError(ValueError):
    """Raised for unparseable master-file text."""


# ----------------------------------------------------------------------
# Rdata <-> text
# ----------------------------------------------------------------------


def rdata_to_text(rdata: Rdata) -> str:
    """Present one rdata in master-file form."""
    if isinstance(rdata, (A, AAAA)):
        return rdata.address
    if isinstance(rdata, (NS, CNAME, PTR)):
        return rdata.target.to_text()
    if isinstance(rdata, MX):
        return f"{rdata.preference} {rdata.exchange.to_text()}"
    if isinstance(rdata, SOA):
        return (
            f"{rdata.mname.to_text()} {rdata.rname.to_text()} "
            f"{rdata.serial} {rdata.refresh} {rdata.retry} "
            f"{rdata.expire} {rdata.minimum}"
        )
    if isinstance(rdata, TXT):
        return " ".join(f'"{string}"' for string in rdata.strings)
    if isinstance(rdata, (DLV, DS)):
        return (
            f"{rdata.key_tag} {int(rdata.algorithm)} "
            f"{int(rdata.digest_type)} {rdata.digest.hex()}"
        )
    if isinstance(rdata, DNSKEY):
        key = base64.b64encode(rdata.public_key).decode("ascii")
        return f"{rdata.flags} {rdata.protocol} {int(rdata.algorithm)} {key}"
    if isinstance(rdata, NSEC):
        types = " ".join(
            rrtype.name for rrtype in sorted(rdata.types, key=int)
        )
        return f"{rdata.next_name.to_text()} {types}"
    raise MasterFileError(f"no text form for {type(rdata).__name__}")


def rdata_from_text(rtype: RRType, text: str) -> Rdata:
    """Parse one rdata from master-file form."""
    fields = text.split()
    try:
        if rtype is RRType.A:
            return A(fields[0])
        if rtype is RRType.AAAA:
            return AAAA(fields[0])
        if rtype is RRType.NS:
            return NS(Name.from_text(fields[0]))
        if rtype is RRType.CNAME:
            return CNAME(Name.from_text(fields[0]))
        if rtype is RRType.PTR:
            return PTR(Name.from_text(fields[0]))
        if rtype is RRType.MX:
            return MX(int(fields[0]), Name.from_text(fields[1]))
        if rtype is RRType.SOA:
            return SOA(
                Name.from_text(fields[0]),
                Name.from_text(fields[1]),
                int(fields[2]),
                int(fields[3]),
                int(fields[4]),
                int(fields[5]),
                int(fields[6]),
            )
        if rtype is RRType.TXT:
            strings = _parse_quoted_strings(text)
            return TXT(tuple(strings))
        if rtype in (RRType.DS, RRType.DLV):
            cls = DLV if rtype is RRType.DLV else DS
            return cls(
                int(fields[0]),
                Algorithm(int(fields[1])),
                DigestType(int(fields[2])),
                bytes.fromhex(fields[3]),
            )
        if rtype is RRType.DNSKEY:
            return DNSKEY(
                int(fields[0]),
                int(fields[1]),
                Algorithm(int(fields[2])),
                base64.b64decode(fields[3]),
            )
    except MasterFileError:
        raise
    except (IndexError, ValueError, binascii.Error) as exc:
        raise MasterFileError(f"bad {rtype.name} rdata {text!r}: {exc}") from exc
    raise MasterFileError(f"unsupported record type {rtype.name}")


def _parse_quoted_strings(text: str) -> List[str]:
    strings: List[str] = []
    remainder = text.strip()
    while remainder:
        if not remainder.startswith('"'):
            raise MasterFileError(f"TXT strings must be quoted: {text!r}")
        end = remainder.find('"', 1)
        if end < 0:
            raise MasterFileError(f"unterminated TXT string: {text!r}")
        strings.append(remainder[1:end])
        remainder = remainder[end + 1 :].lstrip()
    return strings


# ----------------------------------------------------------------------
# Zone <-> text
# ----------------------------------------------------------------------

_SKIP_ON_PARSE = {RRType.RRSIG, RRType.NSEC, RRType.NSEC3, RRType.NSEC3PARAM}


def zone_to_text(zone: Zone) -> str:
    """Render a zone as a master file."""
    lines = [
        f"$ORIGIN {zone.origin.to_text()}",
        f"$TTL {zone.default_ttl}",
    ]
    rrsets = sorted(
        zone.rrsets(), key=lambda r: (r.name.canonical_key(), int(r.rtype))
    )
    for rrset in rrsets:
        for rdata in rrset.rdatas:
            lines.append(
                f"{rrset.name.to_text()} {rrset.ttl} IN {rrset.rtype.name} "
                f"{rdata_to_text(rdata)}"
            )
    return "\n".join(lines) + "\n"


def zone_from_text(text: str) -> Zone:
    """Parse a master file into an unsigned Zone.

    Supports the dialect :func:`zone_to_text` emits: ``$ORIGIN`` /
    ``$TTL`` directives, absolute or origin-relative owner names,
    ``;`` comments, and blank lines.  DNSSEC denial/signature records
    are skipped (regenerated by signing).
    """
    origin: Optional[Name] = None
    default_ttl = 3600
    pending: dict = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("$ORIGIN"):
            origin = Name.from_text(line.split()[1])
            continue
        if line.startswith("$TTL"):
            default_ttl = int(line.split()[1])
            continue
        if origin is None:
            raise MasterFileError(f"line {line_number}: record before $ORIGIN")
        fields = line.split(None, 4)
        if len(fields) < 4:
            raise MasterFileError(f"line {line_number}: too few fields: {line!r}")
        owner_text, ttl_text, rclass_text = fields[0], fields[1], fields[2]
        if rclass_text.upper() != "IN":
            raise MasterFileError(f"line {line_number}: only class IN supported")
        rtype_text = fields[3]
        rdata_text = fields[4] if len(fields) > 4 else ""
        try:
            rtype = RRType[rtype_text.upper()]
        except KeyError as exc:
            raise MasterFileError(
                f"line {line_number}: unknown type {rtype_text!r}"
            ) from exc
        if rtype in _SKIP_ON_PARSE:
            continue
        owner = (
            Name.from_text(owner_text)
            if owner_text.endswith(".")
            else Name.from_text(owner_text).concatenate(origin)
        )
        ttl = int(ttl_text)
        rdata = rdata_from_text(rtype, rdata_text)
        pending.setdefault((owner, rtype, ttl), []).append(rdata)
    if origin is None:
        raise MasterFileError("missing $ORIGIN directive")
    zone = Zone(origin, default_ttl=default_ttl)
    for (owner, rtype, ttl), rdatas in pending.items():
        zone.add_rrset(RRset(owner, rtype, ttl, tuple(rdatas)))
    return zone
