"""Convenience builders for assembling zones and delegation chains."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..crypto import make_ds
from ..crypto.keys import KeyPool, ZoneKeySet
from ..dnscore import A, AAAA, DS, Name, NS, RRType, SOA
from .zone import DEFAULT_TTL, Zone


def make_soa(origin: Name, serial: int = 1) -> SOA:
    """A plausible SOA for a simulated zone."""
    return SOA(
        mname=origin.prepend("ns1") if not origin.is_root() else Name(["a", "root-servers", "net"]),
        rname=Name(["hostmaster"] + list(origin.labels)) if not origin.is_root() else Name(["nstld", "verisign-grs", "com"]),
        serial=serial,
    )


class ZoneBuilder:
    """Fluent construction of one zone."""

    def __init__(self, origin: Name, default_ttl: int = DEFAULT_TTL):
        self.zone = Zone(origin, default_ttl=default_ttl)
        self.zone.set_soa(make_soa(origin))

    def with_ns(self, hosts_and_addresses: Sequence[Tuple[Name, str]], ttl: Optional[int] = None) -> "ZoneBuilder":
        """Apex NS records plus in-zone A glue."""
        origin = self.zone.origin
        self.zone.add(origin, RRType.NS, [NS(host) for host, _ in hosts_and_addresses], ttl)
        for host, address in hosts_and_addresses:
            if host.is_subdomain_of(origin):
                self.zone.add(host, RRType.A, [A(address)], ttl)
        return self

    def with_address(self, name: Name, ipv4: Optional[str] = None, ipv6: Optional[str] = None, ttl: Optional[int] = None) -> "ZoneBuilder":
        if ipv4 is not None:
            self.zone.add(name, RRType.A, [A(ipv4)], ttl)
        if ipv6 is not None:
            self.zone.add(name, RRType.AAAA, [AAAA(ipv6)], ttl)
        return self

    def with_rrset(self, name: Name, rtype: RRType, rdatas: Iterable, ttl: Optional[int] = None) -> "ZoneBuilder":
        self.zone.add(name, rtype, rdatas, ttl)
        return self

    def delegate(
        self,
        child: Name,
        ns_hosts_and_addresses: Sequence[Tuple[Name, str]],
        child_keyset: Optional[ZoneKeySet] = None,
        ttl: Optional[int] = None,
    ) -> "ZoneBuilder":
        """Add a delegation; a *child_keyset* publishes the child's DS."""
        self.zone.add(child, RRType.NS, [NS(host) for host, _ in ns_hosts_and_addresses], ttl)
        for host, address in ns_hosts_and_addresses:
            needs_glue = (
                host.is_subdomain_of(self.zone.origin)
                and self.zone.get(host, RRType.A) is None
            )
            if needs_glue:
                self.zone.add(host, RRType.A, [A(address)], ttl)
        if child_keyset is not None:
            self.zone.add(child, RRType.DS, [make_ds(child, child_keyset.ksk.dnskey)], ttl)
        return self

    def signed(self, keyset: ZoneKeySet) -> Zone:
        self.zone.sign(keyset)
        return self.zone

    def build(self) -> Zone:
        return self.zone


def standard_ns_hosts(origin: Name, addresses: Sequence[str]) -> List[Tuple[Name, str]]:
    """ns1.<origin>, ns2.<origin>, ... bound to the given addresses."""
    return [
        (origin.prepend(f"ns{index + 1}"), address)
        for index, address in enumerate(addresses)
    ]


def build_leaf_zone(
    origin: Name,
    ns_addresses: Sequence[str],
    a_address: str,
    keyset: Optional[ZoneKeySet] = None,
    aaaa_address: Optional[str] = None,
) -> Zone:
    """A typical SLD zone: apex A (+AAAA), in-bailiwick NS with glue."""
    builder = ZoneBuilder(origin)
    hosts = standard_ns_hosts(origin, ns_addresses)
    builder.with_ns(hosts)
    builder.with_address(origin, ipv4=a_address, ipv6=aaaa_address)
    for host, _ in hosts:
        if aaaa_address is not None:
            builder.zone.add(host, RRType.AAAA, [AAAA(aaaa_address)])
    if keyset is not None:
        return builder.signed(keyset)
    return builder.build()
