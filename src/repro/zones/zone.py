"""Authoritative zone model with RFC-faithful lookup semantics.

A :class:`Zone` stores RRsets, knows its delegation cut points, and can
be DNSSEC-signed.  :meth:`Zone.lookup` classifies a query the way an
authoritative server must: answer, referral, CNAME, NODATA, or NXDOMAIN,
with the DNSSEC proof material (DS / NSEC / RRSIG) each case requires.

Signing is *lazy*: :meth:`Zone.sign` installs keys, the DNSKEY RRset,
and the NSEC chain, but individual RRSIGs are computed on first use and
cached — large simulated zones only ever pay for the records they serve.
"""

from __future__ import annotations

import bisect
import enum
from typing import Dict, Iterable, List, Optional, Set, Tuple  # noqa: F401

from ..crypto.keys import ZoneKey, ZoneKeySet
from ..dnscore import (
    Algorithm,
    DNSKEY,
    DS,
    NSEC,
    Name,
    RRSIG,
    RRType,
    RRset,
    SOA,
)

#: Signature validity bounds: the whole simulation lives inside them.
RRSIG_INCEPTION = 0
RRSIG_EXPIRATION = 2**31 - 1

DEFAULT_TTL = 3600


class ZoneError(ValueError):
    """Raised for inconsistent zone contents or out-of-zone lookups."""


class LookupOutcome(enum.Enum):
    """How an authoritative server classifies a query against a zone."""

    ANSWER = "answer"
    DELEGATION = "delegation"
    CNAME = "cname"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"


class LookupResult:
    """The sections an authoritative response should carry."""

    __slots__ = ("outcome", "answer", "authority", "additional")

    def __init__(
        self,
        outcome: LookupOutcome,
        answer: Tuple[RRset, ...] = (),
        authority: Tuple[RRset, ...] = (),
        additional: Tuple[RRset, ...] = (),
    ):
        self.outcome = outcome
        self.answer = answer
        self.authority = authority
        self.additional = additional

    def __repr__(self) -> str:
        return (
            f"LookupResult({self.outcome.value}, an={len(self.answer)}, "
            f"au={len(self.authority)}, ad={len(self.additional)})"
        )


class Zone:
    """A mutable authoritative zone; freeze by signing (or not) and serve."""

    def __init__(self, origin: Name, default_ttl: int = DEFAULT_TTL):
        self.origin = origin
        self.default_ttl = default_ttl
        self._records: Dict[Tuple[Name, RRType], RRset] = {}
        self._names: Set[Name] = {origin}
        self._delegations: Set[Name] = set()
        self.keyset: Optional[ZoneKeySet] = None
        self._nsec_owners: List[Name] = []
        self._nsec_keys: List[Tuple[bytes, ...]] = []
        self._rrsig_cache: Dict[Tuple[Name, RRType], RRset] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def signed(self) -> bool:
        return self.keyset is not None

    def add_rrset(self, rrset: RRset) -> None:
        if self.signed:
            raise ZoneError("cannot modify a signed zone")
        if not rrset.name.is_subdomain_of(self.origin):
            raise ZoneError(
                f"{rrset.name.to_text()} is outside zone {self.origin.to_text()}"
            )
        key = (rrset.name, rrset.rtype)
        if key in self._records:
            raise ZoneError(f"duplicate RRset {key}")
        self._records[key] = rrset
        self._add_name_and_ancestors(rrset.name)
        if rrset.rtype is RRType.NS and rrset.name != self.origin:
            self._delegations.add(rrset.name)
        self._invalidate_nsec()

    def add(self, name: Name, rtype: RRType, rdatas: Iterable, ttl: Optional[int] = None) -> None:
        """Convenience: build and add an RRset."""
        self.add_rrset(RRset(name, rtype, ttl or self.default_ttl, tuple(rdatas)))

    def set_soa(self, soa: SOA, ttl: Optional[int] = None) -> None:
        self.add(self.origin, RRType.SOA, [soa], ttl)

    def _add_name_and_ancestors(self, name: Name) -> None:
        """Track the name plus empty non-terminals up to the origin."""
        current = name
        while current != self.origin:
            if current in self._names:
                break
            self._names.add(current)
            current = current.parent()

    def _invalidate_nsec(self) -> None:
        self._nsec_owners = []
        self._nsec_keys = []
        self._rrsig_cache.clear()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def get(self, name: Name, rtype: RRType) -> Optional[RRset]:
        return self._records.get((name, rtype))

    def has_name(self, name: Name) -> bool:
        return name in self._names

    def soa(self) -> RRset:
        rrset = self.get(self.origin, RRType.SOA)
        if rrset is None:
            raise ZoneError(f"zone {self.origin.to_text()} has no SOA")
        return rrset

    def delegations(self) -> Set[Name]:
        return set(self._delegations)

    def rrsets(self) -> List[RRset]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------

    def sign(self, keyset: ZoneKeySet) -> None:
        """Install keys, publish the DNSKEY RRset, build the NSEC chain.

        Individual RRSIGs are generated lazily by :meth:`rrsig_for`.
        """
        if self.signed:
            raise ZoneError("zone is already signed")
        self.add(self.origin, RRType.DNSKEY, keyset.dnskeys())
        self.keyset = keyset
        self._build_nsec_chain()

    def _build_nsec_chain(self) -> None:
        """Add an NSEC record at every authoritative owner name."""
        owners = sorted(self._names, key=Name.canonical_key)
        types_by_owner: Dict[Name, Set[RRType]] = {}
        for (name, rtype) in self._records:
            if rtype is not RRType.NSEC:
                types_by_owner.setdefault(name, set()).add(rtype)
        for index, owner in enumerate(owners):
            next_owner = owners[(index + 1) % len(owners)]
            types = types_by_owner.get(owner, set())
            types.add(RRType.RRSIG)
            types.add(RRType.NSEC)
            self._records[(owner, RRType.NSEC)] = RRset(
                owner,
                RRType.NSEC,
                self.default_ttl,
                (NSEC(next_name=next_owner, types=frozenset(types)),),
            )
        self._nsec_owners = owners
        self._nsec_keys = [owner.canonical_key() for owner in owners]

    def _signing_key_for(self, rtype: RRType) -> ZoneKey:
        assert self.keyset is not None
        return self.keyset.ksk if rtype is RRType.DNSKEY else self.keyset.zsk

    def rrsig_for(self, name: Name, rtype: RRType) -> RRset:
        """The RRSIG RRset covering (name, rtype), computed on demand."""
        if not self.signed:
            raise ZoneError("cannot produce RRSIGs for an unsigned zone")
        cache_key = (name, rtype)
        if cache_key in self._rrsig_cache:
            return self._rrsig_cache[cache_key]
        rrset = self.get(name, rtype)
        if rrset is None:
            raise ZoneError(f"no RRset at ({name.to_text()}, {rtype.name})")
        rrsig = sign_rrset(rrset, self.origin, self._signing_key_for(rtype))
        rrsig_set = RRset(name, RRType.RRSIG, rrset.ttl, (rrsig,))
        self._rrsig_cache[cache_key] = rrsig_set
        return rrsig_set

    def covering_nsec(self, name: Name) -> RRset:
        """The NSEC record proving the non-existence of *name*."""
        if not self._nsec_owners:
            raise ZoneError("zone has no NSEC chain")
        if name in self._names:
            raise ZoneError(f"{name.to_text()} exists; nothing to cover")
        index = bisect.bisect_right(self._nsec_keys, name.canonical_key()) - 1
        if index < 0:
            # Canonically before the apex only happens for out-of-zone
            # names, which lookup() rejects earlier.
            index = len(self._nsec_owners) - 1
        owner = self._nsec_owners[index]
        nsec = self._records[(owner, RRType.NSEC)]
        return nsec

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, qname: Name, qtype: RRType, dnssec_ok: bool = False) -> LookupResult:
        """Answer a query against this zone's data."""
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(
                f"{qname.to_text()} is not in zone {self.origin.to_text()}"
            )
        cut = self._find_delegation_cut(qname)
        if cut is not None and not (cut == qname and qtype is RRType.DS):
            return self._referral(cut, dnssec_ok)
        cname = self._records.get((qname, RRType.CNAME))
        if cname is not None and qtype not in (RRType.CNAME, RRType.NSEC):
            answer = [cname]
            if dnssec_ok and self.signed:
                answer.append(self.rrsig_for(qname, RRType.CNAME))
            return LookupResult(LookupOutcome.CNAME, answer=tuple(answer))
        rrset = self._records.get((qname, qtype))
        if rrset is not None:
            answer = [rrset]
            if dnssec_ok and self.signed:
                answer.append(self.rrsig_for(qname, qtype))
            return LookupResult(LookupOutcome.ANSWER, answer=tuple(answer))
        if qname in self._names:
            return self._negative(qname, LookupOutcome.NODATA, dnssec_ok)
        return self._negative(qname, LookupOutcome.NXDOMAIN, dnssec_ok)

    def _find_delegation_cut(self, qname: Name) -> Optional[Name]:
        """Deepest delegation point at-or-above qname, if any."""
        for ancestor in qname.ancestors():
            if ancestor == self.origin:
                return None
            if ancestor in self._delegations:
                # Prefer the *highest* cut: keep walking up and remember.
                cut = ancestor
                above = ancestor.parent()
                while above != self.origin:
                    if above in self._delegations:
                        cut = above
                    above = above.parent()
                return cut
        return None

    def _referral(self, cut: Name, dnssec_ok: bool) -> LookupResult:
        ns = self._records[(cut, RRType.NS)]
        authority: List[RRset] = [ns]
        if dnssec_ok and self.signed:
            ds = self._records.get((cut, RRType.DS))
            if ds is not None:
                authority.append(ds)
                authority.append(self.rrsig_for(cut, RRType.DS))
            else:
                # Prove the delegation is insecure: NSEC at the cut with
                # no DS bit (RFC 4035 section 3.1.4.1).
                nsec = self._records.get((cut, RRType.NSEC))
                if nsec is not None:
                    authority.append(nsec)
                    authority.append(self.rrsig_for(cut, RRType.NSEC))
        additional: List[RRset] = []
        for rdata in ns.rdatas:
            target = rdata.target  # type: ignore[attr-defined]
            if target.is_subdomain_of(self.origin):
                for glue_type in (RRType.A, RRType.AAAA):
                    glue = self._records.get((target, glue_type))
                    if glue is not None:
                        additional.append(glue)
        return LookupResult(
            LookupOutcome.DELEGATION,
            authority=tuple(authority),
            additional=tuple(additional),
        )

    def _negative(
        self, qname: Name, outcome: LookupOutcome, dnssec_ok: bool
    ) -> LookupResult:
        authority: List[RRset] = [self.soa()]
        if dnssec_ok and self.signed:
            authority.append(self.rrsig_for(self.origin, RRType.SOA))
            if outcome is LookupOutcome.NXDOMAIN:
                nsec = self.covering_nsec(qname)
                authority.append(nsec)
                authority.append(self.rrsig_for(nsec.name, RRType.NSEC))
            else:
                nsec = self._records.get((qname, RRType.NSEC))
                if nsec is not None:
                    authority.append(nsec)
                    authority.append(self.rrsig_for(qname, RRType.NSEC))
        return LookupResult(outcome, authority=tuple(authority))


def sign_rrset(rrset: RRset, signer_origin: Name, key: ZoneKey) -> RRSIG:
    """Produce the RRSIG for *rrset* per RFC 4034 section 3.1.8.1."""
    unsigned = RRSIG(
        type_covered=rrset.rtype,
        algorithm=Algorithm.RSASHA256,
        labels=rrset.name.label_count,
        original_ttl=rrset.ttl,
        expiration=RRSIG_EXPIRATION,
        inception=RRSIG_INCEPTION,
        key_tag=key.key_tag,
        signer=signer_origin,
        signature=b"",
    )
    signing_input = unsigned.signed_fields_wire() + rrset.canonical_signing_input(
        rrset.ttl
    )
    signature = key.private.sign(signing_input)
    return RRSIG(
        type_covered=unsigned.type_covered,
        algorithm=unsigned.algorithm,
        labels=unsigned.labels,
        original_ttl=unsigned.original_ttl,
        expiration=unsigned.expiration,
        inception=unsigned.inception,
        key_tag=unsigned.key_tag,
        signer=unsigned.signer,
        signature=signature,
    )


def verify_rrset_signature(
    rrset: RRset, rrsig: RRSIG, dnskey: DNSKEY, memo=None
) -> bool:
    """Verify *rrsig* over *rrset* with *dnskey* (the validator's half).

    *memo*, when given, is a :class:`repro.crypto.memo.VerifyMemo`; the
    cheap structural checks (key tag, type covered) always run, only the
    modular exponentiation is memoized — keyed by the full (key, input,
    signature) triple, so tampered data can never alias a cached verdict.
    """
    if rrsig.key_tag != dnskey.key_tag():
        return False
    if rrsig.type_covered is not rrset.rtype:
        return False
    signing_input = rrsig.signed_fields_wire() + rrset.canonical_signing_input(
        rrsig.original_ttl
    )
    from ..crypto.rsa import RSAPublicKey

    try:
        public_key = RSAPublicKey.from_bytes(dnskey.public_key)
    except ValueError:
        return False
    if memo is not None:
        return memo.verify(public_key, signing_input, rrsig.signature)
    return public_key.verify(signing_input, rrsig.signature)
