"""Zone model: authoritative data, lookup semantics, DNSSEC signing."""

from .builder import ZoneBuilder, build_leaf_zone, make_soa, standard_ns_hosts
from .textio import (
    MasterFileError,
    rdata_from_text,
    rdata_to_text,
    zone_from_text,
    zone_to_text,
)
from .zone import (
    DEFAULT_TTL,
    LookupOutcome,
    LookupResult,
    RRSIG_EXPIRATION,
    RRSIG_INCEPTION,
    Zone,
    ZoneError,
    sign_rrset,
    verify_rrset_signature,
)

__all__ = [
    "DEFAULT_TTL",
    "LookupOutcome",
    "LookupResult",
    "MasterFileError",
    "rdata_from_text",
    "rdata_to_text",
    "zone_from_text",
    "zone_to_text",
    "RRSIG_EXPIRATION",
    "RRSIG_INCEPTION",
    "Zone",
    "ZoneBuilder",
    "ZoneError",
    "build_leaf_zone",
    "make_soa",
    "sign_rrset",
    "standard_ns_hosts",
    "verify_rrset_signature",
    "make_soa",
]
