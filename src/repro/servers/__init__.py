"""Simulated DNS servers: authoritative zones and the DLV registry."""

from .authoritative import AuthoritativeServer, ZoneView
from .dlv_registry import DenialMode, DlvRegistryZone, DLVRegistryServer

__all__ = [
    "AuthoritativeServer",
    "DenialMode",
    "DlvRegistryZone",
    "DLVRegistryServer",
    "ZoneView",
]
