"""The DLV registry: a scalable synthetic DLV zone and its server.

This models registries like ISC's ``dlv.isc.org`` (paper Section 2.3).
Zone owners deposit DLV records (DS-shaped trust anchors, RFC 4431);
resolvers query ``<domain>.<registry-origin>`` with type DLV.

The zone view here is *synthetic*: instead of materialising hundreds of
thousands of RRsets, it keeps a sorted list of registered owner names
and constructs DLV answers, covering NSEC (or NSEC3) denials, and lazy
RRSIGs on demand.  That keeps top-100k leakage sweeps cheap while
serving byte-accurate responses.

Operating modes map to the paper's scenarios:

* ``plain``   — normal operation: deposits under their domain names,
  NSEC denial of existence (enables aggressive negative caching).
* ``hashed``  — the paper's privacy-preserving DLV (Section 6.2.2):
  deposits live under ``crypto_hash(domain)`` labels.
* ``nsec3``   — denial via NSEC3 (Section 7.3): the resolver cannot
  reuse denials, so every query reaches the registry.
* the ISC phase-out (Section 7.3.2) is simply a registry with zero
  deposits: the zone answers, but every query is a Case-2 leak.
"""

from __future__ import annotations

import bisect
import enum
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..crypto import hash_domain_label, make_dlv, nsec3_owner_label
from ..crypto.keys import ZoneKeySet
from ..dnscore import (
    DLV as DLVRdata,
    DNSKEY,
    NS,
    NSEC,
    NSEC3,
    Name,
    RRType,
    RRset,
    A,
)
from ..zones.builder import make_soa
from ..zones.zone import (
    DEFAULT_TTL,
    LookupOutcome,
    LookupResult,
    ZoneError,
    sign_rrset,
)
from .authoritative import AuthoritativeServer

#: NSEC3 parameters used by the nsec3 denial mode.
_NSEC3_SALT = b"\xd1\x5e"
_NSEC3_ITERATIONS = 5


class DenialMode(enum.Enum):
    """How the registry proves non-existence.

    NSEC5 (paper Section 7.3, Goldberg et al.) prevents zone
    enumeration *without* the offline-keys weakness of NSEC3; from the
    resolver's caching perspective it behaves like NSEC3 — denials
    cannot be reused aggressively — so the simulator models it with the
    same hashed-denial machinery and an is-enumerable flag of its own.
    """

    NSEC = "nsec"
    NSEC3 = "nsec3"
    NSEC5 = "nsec5"

    @property
    def allows_aggressive_caching(self) -> bool:
        return self is DenialMode.NSEC

    @property
    def allows_enumeration(self) -> bool:
        return self is DenialMode.NSEC


class DlvRegistryZone:
    """Synthetic zone view over a set of DLV deposits."""

    def __init__(
        self,
        origin: Name,
        keyset: ZoneKeySet,
        deposits: Mapping[Name, DLVRdata],
        ns_host: Optional[Name] = None,
        ns_address: str = "192.0.2.200",
        hashed: bool = False,
        denial: DenialMode = DenialMode.NSEC,
        ttl: int = DEFAULT_TTL,
    ):
        self.origin = origin
        self.keyset = keyset
        self.hashed = hashed
        self.denial = denial
        self.ttl = ttl
        self._deposits_by_domain = dict(deposits)
        self._owners: Dict[Name, DLVRdata] = {}
        for domain, rdata in deposits.items():
            self._owners[self.registered_name(domain)] = rdata
        # Existence set: owners plus empty non-terminals.
        self._names = {origin}
        for owner in self._owners:
            current = owner
            while current != origin and current not in self._names:
                self._names.add(current)
                current = current.parent()
        self._sorted_owners: List[Name] = sorted(
            set(self._owners) | {origin}, key=Name.canonical_key
        )
        self._sorted_keys = [name.canonical_key() for name in self._sorted_owners]
        if not denial.allows_aggressive_caching:
            # NSEC3 and NSEC5 both deny existence via hashed owners.
            hashed_pairs = sorted(
                nsec3_owner_label(name, _NSEC3_SALT, _NSEC3_ITERATIONS)
                for name in self._sorted_owners
            )
            self._nsec3_labels = hashed_pairs
        # Apex RRsets.
        ns_host = ns_host or origin.prepend("ns1")
        self._apex: Dict[RRType, RRset] = {
            RRType.SOA: RRset(origin, RRType.SOA, ttl, (make_soa(origin),)),
            RRType.NS: RRset(origin, RRType.NS, ttl, (NS(ns_host),)),
            RRType.DNSKEY: RRset(
                origin, RRType.DNSKEY, ttl, tuple(keyset.dnskeys())
            ),
        }
        self._glue = (
            RRset(ns_host, RRType.A, ttl, (A(ns_address),))
            if ns_host.is_subdomain_of(origin)
            else None
        )
        self._rrsig_cache: Dict[Tuple[Name, RRType], RRset] = {}

    # ------------------------------------------------------------------
    # Deposit bookkeeping
    # ------------------------------------------------------------------

    def registered_name(self, domain: Name) -> Name:
        """The owner name a deposit for *domain* lives under."""
        if self.hashed:
            return self.origin.prepend(hash_domain_label(domain))
        return domain.concatenate(self.origin)

    def has_deposit(self, domain: Name) -> bool:
        return domain in self._deposits_by_domain

    def has_owner(self, owner: Name) -> bool:
        """Is there a DLV RRset at this exact owner name?"""
        return owner in self._owners

    def deposit_count(self) -> int:
        return len(self._deposits_by_domain)

    def deposited_domains(self) -> Iterable[Name]:
        return self._deposits_by_domain.keys()

    # ------------------------------------------------------------------
    # Signing helpers (lazy, cached)
    # ------------------------------------------------------------------

    def _rrsig(self, rrset: RRset) -> RRset:
        key = (rrset.name, rrset.rtype)
        cached = self._rrsig_cache.get(key)
        if cached is not None:
            return cached
        signing_key = (
            self.keyset.ksk
            if rrset.rtype is RRType.DNSKEY
            else self.keyset.zsk
        )
        rrsig = sign_rrset(rrset, self.origin, signing_key)
        rrsig_set = RRset(rrset.name, RRType.RRSIG, rrset.ttl, (rrsig,))
        self._rrsig_cache[key] = rrsig_set
        return rrsig_set

    # ------------------------------------------------------------------
    # Denial of existence
    # ------------------------------------------------------------------

    def covering_nsec(self, qname: Name) -> RRset:
        index = bisect.bisect_right(self._sorted_keys, qname.canonical_key()) - 1
        if index < 0:
            index = len(self._sorted_owners) - 1
        owner = self._sorted_owners[index]
        next_owner = self._sorted_owners[(index + 1) % len(self._sorted_owners)]
        types = self._types_at(owner)
        nsec = NSEC(next_name=next_owner, types=frozenset(types))
        return RRset(owner, RRType.NSEC, self.ttl, (nsec,))

    def covering_nsec3(self, qname: Name) -> RRset:
        qhash = nsec3_owner_label(qname, _NSEC3_SALT, _NSEC3_ITERATIONS)
        labels = self._nsec3_labels
        index = bisect.bisect_right(labels, qhash) - 1
        if index < 0:
            index = len(labels) - 1
        owner_label = labels[index]
        next_label = labels[(index + 1) % len(labels)]
        rdata = NSEC3(
            hash_algorithm=1,
            flags=0,
            iterations=_NSEC3_ITERATIONS,
            salt=_NSEC3_SALT,
            next_hashed=next_label.encode("ascii"),
            types=frozenset({RRType.DLV}),
        )
        return RRset(self.origin.prepend(owner_label), RRType.NSEC3, self.ttl, (rdata,))

    def _types_at(self, owner: Name) -> set:
        if owner == self.origin:
            types = set(self._apex) | {RRType.RRSIG, RRType.NSEC}
        else:
            types = {RRType.DLV, RRType.RRSIG, RRType.NSEC}
        return types

    # ------------------------------------------------------------------
    # Lookup (ZoneView protocol)
    # ------------------------------------------------------------------

    def lookup(self, qname: Name, qtype: RRType, dnssec_ok: bool = False) -> LookupResult:
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(
                f"{qname.to_text()} is not in registry zone {self.origin.to_text()}"
            )
        if qname == self.origin:
            return self._apex_lookup(qtype, dnssec_ok)
        rdata = self._owners.get(qname)
        if rdata is not None:
            if qtype is RRType.DLV:
                rrset = RRset(qname, RRType.DLV, self.ttl, (rdata,))
                answer = [rrset]
                if dnssec_ok:
                    answer.append(self._rrsig(rrset))
                return LookupResult(LookupOutcome.ANSWER, answer=tuple(answer))
            return self._negative(qname, LookupOutcome.NODATA, dnssec_ok)
        if qname in self._names:
            # Empty non-terminal (e.g. com.dlv.isc.org): exists, no data.
            return self._negative(qname, LookupOutcome.NODATA, dnssec_ok)
        return self._negative(qname, LookupOutcome.NXDOMAIN, dnssec_ok)

    def _apex_lookup(self, qtype: RRType, dnssec_ok: bool) -> LookupResult:
        rrset = self._apex.get(qtype)
        if rrset is None:
            return self._negative(self.origin, LookupOutcome.NODATA, dnssec_ok)
        answer = [rrset]
        if dnssec_ok:
            answer.append(self._rrsig(rrset))
        return LookupResult(LookupOutcome.ANSWER, answer=tuple(answer))

    def _negative(
        self, qname: Name, outcome: LookupOutcome, dnssec_ok: bool
    ) -> LookupResult:
        soa = self._apex[RRType.SOA]
        authority: List[RRset] = [soa]
        if dnssec_ok:
            authority.append(self._rrsig(soa))
            if outcome is LookupOutcome.NXDOMAIN:
                if self.denial is DenialMode.NSEC:
                    nsec = self.covering_nsec(qname)
                else:
                    nsec = self.covering_nsec3(qname)
                authority.append(nsec)
                authority.append(self._rrsig(nsec))
        return LookupResult(outcome, authority=tuple(authority))


class DLVRegistryServer(AuthoritativeServer):
    """An authoritative server dedicated to one DLV registry zone."""

    def __init__(self, zone: DlvRegistryZone):
        super().__init__(zones=[zone])
        self.registry = zone

    @classmethod
    def build(
        cls,
        origin: Name,
        keyset: ZoneKeySet,
        deposits: Mapping[Name, ZoneKeySet],
        hashed: bool = False,
        denial: DenialMode = DenialMode.NSEC,
        extra_owners: Optional[Mapping[Name, DLVRdata]] = None,
        ttl: int = DEFAULT_TTL,
    ) -> "DLVRegistryServer":
        """Build a registry from depositing zones' key sets.

        ``deposits`` maps each depositing domain to the key set whose KSK
        the DLV record must authenticate.  ``extra_owners`` lets callers
        add background entries (registered domains that the experiment
        never queries but that shape the NSEC chain, mirroring the real
        registry's population).
        """
        rdata_map: Dict[Name, DLVRdata] = {
            domain: make_dlv(domain, keyset_.ksk.dnskey)
            for domain, keyset_ in deposits.items()
        }
        if extra_owners:
            rdata_map.update(extra_owners)
        zone = DlvRegistryZone(
            origin=origin,
            keyset=keyset,
            deposits=rdata_map,
            hashed=hashed,
            denial=denial,
            ttl=ttl,
        )
        return cls(zone)
