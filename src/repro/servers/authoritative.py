"""Authoritative DNS server: maps zone lookups onto wire messages.

One server object may serve many zones (the simulator routes by address,
and shared hosting concentrates many zones on few addresses, as in the
real DNS).  The server picks the deepest zone matching the query name,
delegates classification to the zone, and assembles the response.

The server also carries the hook for the paper's **Z-bit remedy**
(Section 6.2.1): when a ``zbit_signal`` predicate is installed, responses
for zones with a DLV deposit have the spare Z header bit set, telling a
remedy-aware resolver that a look-aside query would be useful.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Protocol, Tuple

from ..dnscore import Message, Name, RCode, RRType
from ..zones.zone import LookupOutcome, LookupResult, ZoneError


class ZoneView(Protocol):
    """What a server needs from a zone: an origin and lookup()."""

    origin: Name

    def lookup(
        self, qname: Name, qtype: RRType, dnssec_ok: bool = False
    ) -> LookupResult:  # pragma: no cover - protocol
        ...


class AuthoritativeServer:
    """Serves one or more zones authoritatively."""

    def __init__(
        self,
        zones: Iterable[ZoneView] = (),
        zbit_signal: Optional[Callable[[Name], bool]] = None,
    ):
        self._zones: Dict[Name, ZoneView] = {}
        for zone in zones:
            self.add_zone(zone)
        #: Predicate over the query name implementing the Z-bit remedy;
        #: None means the remedy is not deployed at this server.
        self.zbit_signal = zbit_signal

    def add_zone(self, zone: ZoneView) -> None:
        if zone.origin in self._zones:
            raise ValueError(f"already serving {zone.origin.to_text()}")
        self._zones[zone.origin] = zone

    def zones(self) -> Tuple[ZoneView, ...]:
        return tuple(self._zones.values())

    def find_zone(self, qname: Name) -> Optional[ZoneView]:
        """Deepest zone whose origin is at-or-above the query name."""
        for ancestor in qname.ancestors():
            zone = self._zones.get(ancestor)
            if zone is not None:
                return zone
        return None

    # ------------------------------------------------------------------
    # Query handling
    # ------------------------------------------------------------------

    def handle(self, query: Message) -> Message:
        if query.question is None or query.is_response():
            return query.make_response(rcode=RCode.FORMERR)
        qname = query.question.name
        qtype = query.question.rtype
        zone = self.find_zone(qname)
        if zone is None:
            return query.make_response(rcode=RCode.REFUSED)
        try:
            result = zone.lookup(qname, qtype, dnssec_ok=query.dnssec_ok())
        except ZoneError:
            return query.make_response(rcode=RCode.SERVFAIL)
        return self._render(query, result)

    def _render(self, query: Message, result: LookupResult) -> Message:
        assert query.question is not None
        z_bit = False
        if self.zbit_signal is not None:
            z_bit = self.zbit_signal(query.question.name)
        if result.outcome is LookupOutcome.NXDOMAIN:
            rcode = RCode.NXDOMAIN
        else:
            rcode = RCode.NOERROR
        authoritative = result.outcome is not LookupOutcome.DELEGATION
        return query.make_response(
            rcode=rcode,
            answer=result.answer,
            authority=result.authority,
            additional=result.additional,
            authoritative=authoritative,
            z_bit=z_bit,
        )
