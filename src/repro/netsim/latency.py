"""Per-server network latency model.

The paper measures response time as an overhead metric (Table 5,
Figs 10-11); in the simulation a query's cost is one round-trip time to
the contacted server.  Each server address gets a stable base RTT drawn
from a realistic range plus per-query jitter, both from a seeded RNG, so
latency totals are deterministic yet non-degenerate.
"""

from __future__ import annotations

import random
from typing import Dict


class LatencyModel:
    """Deterministic per-destination RTT sampling.

    * ``base`` RTT per destination: uniform in [min_base, max_base],
      fixed for the lifetime of the model (servers do not move).
    * per-query jitter: uniform in [0, jitter] added on each sample.
    """

    def __init__(
        self,
        seed: int = 0xCAFE,
        min_base: float = 0.010,
        max_base: float = 0.120,
        jitter: float = 0.010,
    ):
        if min_base < 0 or max_base < min_base:
            raise ValueError("latency bounds must satisfy 0 <= min <= max")
        self._rng = random.Random(seed)
        self._min_base = min_base
        self._max_base = max_base
        self._jitter = jitter
        self._base: Dict[str, float] = {}

    def pin(self, address: str, base: float) -> None:
        """Pin an address's base RTT (e.g. ~0 for a local stub→resolver
        hop, matching the paper's on-host measurement setup)."""
        self._base[address] = base

    def base_rtt(self, address: str) -> float:
        """The stable base RTT to *address*."""
        if address not in self._base:
            self._base[address] = self._rng.uniform(self._min_base, self._max_base)
        return self._base[address]

    def sample(self, address: str) -> float:
        """One round-trip time to *address* including jitter."""
        return self.base_rtt(address) + self._rng.uniform(0.0, self._jitter)


class ZeroLatency(LatencyModel):
    """A latency model that always returns zero (for logic-only tests)."""

    def __init__(self):
        super().__init__(seed=0, min_base=0.0, max_base=0.0, jitter=0.0)
