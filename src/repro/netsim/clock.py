"""Simulated wall clock.

All components that need time — caches checking TTL expiry, the capture
stamping packets, latency accounting — share one :class:`SimClock`.  No
simulation code ever reads the real clock, which keeps every experiment
deterministic and lets a 7-hour trace replay run in seconds.

Two execution modes share this one class:

* **Serial** (the default): :meth:`SimClock.advance` mutates the clock
  in place and returns immediately — exactly the pre-event-loop
  behaviour, byte for byte.
* **Scheduled**: when an :class:`~repro.netsim.sched.EventScheduler`
  has bound itself via :meth:`bind_scheduler` and the caller is running
  inside one of its sessions, ``advance``/``sleep_until`` *suspend the
  calling session* instead: a wake-up event is pushed onto the
  scheduler's queue and control returns to the event loop, which may
  run other sessions' earlier events first.  When the session resumes,
  the clock reads exactly the requested target time — the same float
  the serial path would have computed — so a single-session scheduled
  run is byte-identical to a serial one.

Callers outside :mod:`repro.netsim` should prefer :meth:`sleep_until`
(absolute deadline) over raw :meth:`advance` (relative delta): a
deadline is idempotent under re-entry and composes with the event
scheduler, whereas repeated ``advance(0)`` calls in a busy-wait loop
silently spin without making progress.  Raw ``advance`` call sites
outside netsim are deprecated; netsim itself keeps using ``advance``
as the primitive.
"""

from __future__ import annotations

from typing import Optional


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Bound event scheduler (``None`` in serial mode).  Set by
        #: :meth:`bind_scheduler`; duck-typed so this module never
        #: imports :mod:`repro.netsim.sched`.
        self._scheduler = None

    @property
    def now(self) -> float:
        return self._now

    # ------------------------------------------------------------------
    # Event-scheduler integration
    # ------------------------------------------------------------------

    def bind_scheduler(self, scheduler) -> None:
        """Attach an event scheduler: from now on, ``advance`` calls
        made *inside scheduler sessions* suspend the session rather than
        mutating the clock directly.  Pass ``None`` to detach and return
        to plain serial behaviour."""
        if scheduler is not None and self._scheduler is not None \
                and self._scheduler is not scheduler:
            raise RuntimeError("clock is already bound to another scheduler")
        self._scheduler = scheduler

    @property
    def scheduler(self):
        """The bound event scheduler, or ``None`` in serial mode."""
        return self._scheduler

    def _jump_to(self, when: float) -> None:
        """Scheduler-internal: move the clock to an event's timestamp.

        Monotonicity is the scheduler's ordering invariant — events pop
        in non-decreasing time order — so a backwards jump is a bug.
        """
        if when < self._now:
            raise ValueError(
                f"event time {when!r} is before the clock ({self._now!r})"
            )
        self._now = when

    # ------------------------------------------------------------------
    # Time movement
    # ------------------------------------------------------------------

    def advance(self, seconds: float, *, priority: Optional[int] = None) -> float:
        """Move time forward; returns the new time.

        Inside a scheduler session this *suspends the session* until the
        simulated target time; other sessions' earlier events run in
        between.  ``priority`` orders same-instant wake-ups (see
        :class:`~repro.netsim.sched.Priority`); it is ignored on the
        serial path.

        .. deprecated:: call sites outside :mod:`repro.netsim` should
           use :meth:`sleep_until` instead.
        """
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        scheduler = self._scheduler
        if scheduler is not None and scheduler.in_session():
            return scheduler.wait_until(self._now + seconds, priority=priority)
        self._now += seconds
        return self._now

    def sleep_until(self, deadline: float, *, priority: Optional[int] = None) -> float:
        """Sleep to an absolute simulated *deadline*; returns the new time.

        The scheduler-friendly waiting primitive: a deadline at or
        before the current time is a no-op on the serial path (the
        clock never moves backwards) and a zero-length *yield* inside a
        scheduler session — the session still cedes control to the
        event loop, so same-instant events from other sessions are not
        starved by busy-wait loops.
        """
        scheduler = self._scheduler
        if scheduler is not None and scheduler.in_session():
            return scheduler.wait_until(max(self._now, deadline),
                                        priority=priority)
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:
        mode = "scheduled" if self._scheduler is not None else "serial"
        return f"SimClock(t={self._now:.6f}, {mode})"
