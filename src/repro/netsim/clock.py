"""Simulated wall clock.

All components that need time — caches checking TTL expiry, the capture
stamping packets, latency accounting — share one :class:`SimClock`.  No
simulation code ever reads the real clock, which keeps every experiment
deterministic and lets a 7-hour trace replay run in seconds.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"
