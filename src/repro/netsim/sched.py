"""Discrete-event scheduler: many concurrent clients on one universe.

The paper's setting is a DLV registry observing traffic aggregated from
*millions* of stubs, but the resolver core is deliberately synchronous
— a stub query runs ``network.query → resolver.handle → nested
network.query`` to completion.  This module makes those synchronous
resolutions *resumable sessions* on a priority queue of timestamped
events, so many stub clients overlap in simulated time on one shared
universe (shared resolver caches, shared latency/fault RNG state,
shared registry) without rewriting a line of the resolver.

How a session suspends
----------------------

Every session runs on its own pool thread, but **exactly one thread is
ever runnable**: the event loop hands control to a session, then blocks
until that session either finishes or suspends; a session suspends only
inside :meth:`SimClock.advance` / :meth:`SimClock.sleep_until`, which
push a wake-up event and hand control back.  This strict hand-off is
what keeps the simulation deterministic — there is no preemption, no
lock contention, and shared RNG streams (latency jitter, fault rolls)
are consumed in event order, which the queue makes reproducible.

Event ordering and determinism
------------------------------

The queue orders events by the tuple ``(time, priority, tiebreak,
seq)``:

1. ``time`` — simulated seconds; the loop never moves backwards.
2. ``priority`` — :class:`Priority`: at the same instant, response
   **deliveries** beat **timeout** expiries (a packet that arrives as
   the timer fires is *answered*, not dropped), timeouts beat new
   client **dispatches**, and background **timers** run last.
3. ``tiebreak`` — a caller-supplied tuple of ints (e.g. ``(user_id,
   query_index)``) that fixes the order of same-time same-priority
   events *independently of heap-insertion order*.
4. ``seq`` — insertion sequence, the final resort for events the
   caller declared order-indifferent.

Given equal tiebreaks, any legal insertion order of the same logical
events therefore dispatches identically — the property test in
``tests/netsim/test_sched.py`` enforces it.

Bounded concurrency
-------------------

``max_concurrent`` caps in-flight sessions (and therefore pool
threads): surplus dispatches queue FIFO and start the moment a slot
frees, which both bounds memory at population scale and models
resolver-side admission queueing.  Pool threads are reused across
sessions, so a million-query replay churns zero threads after warm-up.

``max_queue`` additionally bounds the admission queue itself: when the
FIFO is full a new session is **rejected** instead of queued — the
load-shedding a real resolver applies when its accept queue overflows
during a retry storm.  Rejections are counted in
:attr:`SchedulerStats.rejected` and reported to the optional
``on_reject`` callback so a replay driver can account the shed query
(the chaos replay counts it as a failed stub query).  The default
``max_queue=None`` keeps the queue unbounded — the pre-existing
behaviour, byte for byte.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import threading
from typing import Any, Callable, Deque, List, Optional, Tuple

from collections import deque

from .clock import SimClock


class Priority(enum.IntEnum):
    """Same-instant event ordering (smaller runs first)."""

    #: A response arriving / an RTT elapsing.
    DELIVERY = 0
    #: A loss-timeout expiring.  Losing to DELIVERY at the same instant
    #: is deliberate: a response that arrives exactly at the deadline is
    #: delivered, not discarded.
    TIMEOUT = 1
    #: A new client query entering the system.
    DISPATCH = 2
    #: Background timers: fault windows, aggregation-window boundaries.
    TIMER = 3


class SchedulerError(RuntimeError):
    """Misuse of the event scheduler (re-entry, calls after close, …)."""


class _SessionAborted(BaseException):
    """Internal: unwinds a suspended session when the pool closes."""


@dataclasses.dataclass
class SchedulerStats:
    """Operational counters for one scheduler lifetime (kept out of
    experiment results, like :class:`~repro.core.parallel.ExecutorHealth`)."""

    spawned: int = 0
    completed: int = 0
    failed: int = 0
    resumes: int = 0
    timers: int = 0
    queued: int = 0
    rejected: int = 0
    peak_active: int = 0
    peak_queue: int = 0
    threads_created: int = 0

    def describe(self) -> str:
        return (
            f"sessions={self.completed}/{self.spawned} "
            f"resumes={self.resumes} timers={self.timers} "
            f"queued={self.queued} rejected={self.rejected} "
            f"peak_active={self.peak_active} "
            f"peak_queue={self.peak_queue} threads={self.threads_created}"
        )


class Session:
    """One resumable client session (a unit of concurrent work)."""

    __slots__ = ("fn", "label", "tiebreak", "done", "started_at", "finished_at")

    def __init__(self, fn: Callable[[], None], label: str, tiebreak: Tuple[int, ...]):
        self.fn = fn
        self.label = label
        self.tiebreak = tiebreak
        self.done = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None


class _Worker(threading.Thread):
    """A pooled session runner under the strict hand-off protocol."""

    def __init__(self, scheduler: "EventScheduler", index: int):
        super().__init__(name=f"sim-session-{index}", daemon=True)
        self.scheduler = scheduler
        #: Signalled by the loop when a session is assigned (or on close).
        self.assigned = threading.Event()
        #: Signalled by the loop to resume a suspended session.
        self.resume = threading.Event()
        self.session: Optional[Session] = None

    def run(self) -> None:  # pragma: no branch - thread body
        scheduler = self.scheduler
        while True:
            self.assigned.wait()
            self.assigned.clear()
            if scheduler._closing:
                return
            session = self.session
            assert session is not None
            try:
                session.fn()
            except _SessionAborted:
                return
            except BaseException as exc:  # noqa: BLE001 - reported to run()
                scheduler._note_failure(session, exc)
            scheduler._finish_session(self, session)


class EventScheduler:
    """A deterministic discrete-event loop over a :class:`SimClock`.

    Typical population-scale use::

        clock = universe.clock
        with EventScheduler(clock, max_concurrent=256) as scheduler:
            for arrival in arrivals:           # or feed lazily
                scheduler.spawn(make_session(arrival), at=arrival.time,
                                tiebreak=(arrival.user, arrival.index))
            scheduler.run()

    The ``with`` block binds the scheduler to the clock (so
    ``clock.advance`` inside sessions suspends instead of mutating) and
    unbinds + tears the thread pool down on exit.
    """

    def __init__(
        self,
        clock: SimClock,
        max_concurrent: int = 256,
        journal: Optional[List[Tuple[float, str, str]]] = None,
        max_queue: Optional[int] = None,
        on_reject: Optional[Callable[[Session], None]] = None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0 (or None for unbounded)")
        self._clock = clock
        self._max_concurrent = max_concurrent
        #: Admission-queue capacity (``None`` = unbounded FIFO).  A
        #: session arriving with all slots busy and the queue full is
        #: rejected: it never runs, ``stats.rejected`` increments, and
        #: ``on_reject`` (if any) is invoked with the shed session.
        self._max_queue = max_queue
        self._on_reject = on_reject
        #: Optional dispatch journal: ``(time, kind, label)`` appended in
        #: execution order — the determinism fingerprint the property
        #: tests compare.  ``None`` (default) records nothing.
        self.journal = journal
        self.stats = SchedulerStats()
        self._heap: List[Tuple[float, int, Tuple[int, ...], int, Tuple[Any, ...]]] = []
        self._seq = 0
        self._control = threading.Event()
        self._workers: List[_Worker] = []
        self._idle: List[_Worker] = []
        self._admission: Deque[Session] = deque()
        self._active = 0
        self._running = False
        self._closing = False
        self._failure: Optional[Tuple[Session, BaseException]] = None
        clock.bind_scheduler(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def clock(self) -> SimClock:
        return self._clock

    def in_session(self) -> bool:
        """True when the calling thread is one of this scheduler's
        session threads (the clock uses this to decide suspend-vs-mutate)."""
        current = threading.current_thread()
        return isinstance(current, _Worker) and current.scheduler is self

    def pending(self) -> int:
        """Events still queued (suspended sessions, future dispatches,
        timers) plus sessions waiting for an admission slot."""
        return len(self._heap) + len(self._admission)

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------

    def _push(
        self,
        when: float,
        priority: int,
        tiebreak: Tuple[int, ...],
        payload: Tuple[Any, ...],
    ) -> None:
        if self._closing:
            raise SchedulerError("scheduler is closed")
        if when < self._clock.now:
            raise ValueError(
                f"cannot schedule at {when!r}: clock is at {self._clock.now!r}"
            )
        self._seq += 1
        heapq.heappush(
            self._heap, (when, int(priority), tuple(tiebreak), self._seq, payload)
        )

    def spawn(
        self,
        fn: Callable[[], None],
        *,
        at: Optional[float] = None,
        label: str = "",
        tiebreak: Tuple[int, ...] = (),
    ) -> Session:
        """Schedule a new session: *fn* runs (resumably) from simulated
        time *at* (default: now).  ``tiebreak`` fixes same-instant
        dispatch order independent of insertion order."""
        session = Session(fn, label, tuple(tiebreak))
        when = self._clock.now if at is None else at
        self._push(when, Priority.DISPATCH, session.tiebreak, ("start", session))
        self.stats.spawned += 1
        return session

    def call_at(
        self,
        when: float,
        fn: Callable[[], None],
        *,
        label: str = "",
        priority: int = Priority.TIMER,
        tiebreak: Tuple[int, ...] = (),
    ) -> None:
        """Schedule a plain callback (fault window, aggregation-window
        boundary) on the loop thread.  Callbacks must not block or
        advance the clock; they observe the instant they fire at."""
        self._push(when, priority, tuple(tiebreak), ("call", fn, label))

    def wait_until(self, deadline: float, *, priority: Optional[int] = None) -> float:
        """Suspend the calling session until simulated *deadline*.

        Called (via :meth:`SimClock.advance` / ``sleep_until``) from
        inside a session thread; schedules the wake-up and hands control
        back to the event loop.  Returns the clock reading on resume —
        exactly *deadline*, the same float the serial path computes.
        """
        worker = threading.current_thread()
        if not (isinstance(worker, _Worker) and worker.scheduler is self):
            raise SchedulerError("wait_until() called outside a session")
        session = worker.session
        assert session is not None
        effective = Priority.DELIVERY if priority is None else priority
        self._push(
            max(deadline, self._clock.now),
            effective,
            session.tiebreak,
            ("resume", worker),
        )
        worker.resume.clear()
        self._control.set()
        worker.resume.wait()
        if self._closing:
            raise _SessionAborted()
        return self._clock.now

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SchedulerStats:
        """Dispatch events in deterministic order until the queue is
        empty (or past *until*).  Raises the first session failure, if
        any, after winding down cleanly.  Returns :attr:`stats`."""
        if self._running:
            raise SchedulerError("run() re-entered")
        if self.in_session():
            raise SchedulerError("run() called from inside a session")
        self._running = True
        try:
            while self._heap and self._failure is None:
                when = self._heap[0][0]
                if until is not None and when > until:
                    break
                when, priority, tiebreak, _seq, payload = heapq.heappop(self._heap)
                self._clock._jump_to(when)
                kind = payload[0]
                if kind == "resume":
                    worker = payload[1]
                    self.stats.resumes += 1
                    self._record("resume", worker.session)
                    self._handoff(worker.resume)
                elif kind == "start":
                    self._admit(payload[1])
                elif kind == "call":
                    _, fn, label = payload
                    self.stats.timers += 1
                    self._record_label("timer", label)
                    fn()
                else:  # pragma: no cover - defensive
                    raise AssertionError(f"unknown event kind {kind!r}")
        finally:
            self._running = False
        if self._failure is not None:
            session, error = self._failure
            self._failure = None
            raise SchedulerError(
                f"session {session.label or '<unnamed>'!s} failed: {error!r}"
            ) from error
        return self.stats

    def _handoff(self, gate: threading.Event) -> None:
        """Wake one session thread and block until it suspends/finishes."""
        gate.set()
        self._control.wait()
        self._control.clear()

    def _admit(self, session: Session) -> None:
        if self._active >= self._max_concurrent:
            if (
                self._max_queue is not None
                and len(self._admission) >= self._max_queue
            ):
                session.done = True
                self.stats.rejected += 1
                self._record("rejected", session)
                if self._on_reject is not None:
                    self._on_reject(session)
                return
            self._admission.append(session)
            self.stats.queued += 1
            self.stats.peak_queue = max(self.stats.peak_queue, len(self._admission))
            self._record("queued", session)
            return
        self._activate(session)

    def _activate(self, session: Session) -> None:
        self._active += 1
        self.stats.peak_active = max(self.stats.peak_active, self._active)
        session.started_at = self._clock.now
        if self._idle:
            worker = self._idle.pop()
        else:
            worker = _Worker(self, len(self._workers))
            self._workers.append(worker)
            self.stats.threads_created += 1
            worker.start()
        worker.session = session
        self._record("start", session)
        self._handoff(worker.assigned)

    def _finish_session(self, worker: _Worker, session: Session) -> None:
        """Worker-side epilogue (still the single runnable thread):
        release the slot, requeue the worker, pull the next admission,
        then hand control back to the loop."""
        session.done = True
        session.finished_at = self._clock.now
        worker.session = None
        self._active -= 1
        self._idle.append(worker)
        self.stats.completed += 1
        if self._admission and self._failure is None:
            queued = self._admission.popleft()
            # Starts at the instant the slot freed: admission queueing
            # delay is modelled, not hidden.
            self._push(
                self._clock.now, Priority.DISPATCH, queued.tiebreak,
                ("start", queued),
            )
        self._control.set()

    def _note_failure(self, session: Session, error: BaseException) -> None:
        self.stats.failed += 1
        if self._failure is None:
            self._failure = (session, error)

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def _record(self, kind: str, session: Optional[Session]) -> None:
        if self.journal is not None:
            label = session.label if session is not None else ""
            self.journal.append((self._clock.now, kind, label))

    def _record_label(self, kind: str, label: str) -> None:
        if self.journal is not None:
            self.journal.append((self._clock.now, kind, label))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down the pool and unbind the clock.  Suspended sessions
        (possible only after a failed run) are aborted, not resumed."""
        if self._closing:
            return
        self._closing = True
        for worker in self._workers:
            worker.assigned.set()
            worker.resume.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers.clear()
        self._idle.clear()
        self._admission.clear()
        self._heap.clear()
        if self._clock.scheduler is self:
            self._clock.bind_scheduler(None)

    def __enter__(self) -> "EventScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventScheduler(t={self._clock.now:.6f}, "
            f"pending={self.pending()}, active={self._active})"
        )
