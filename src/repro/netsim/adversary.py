"""Seeded adversary personas riding the :class:`FaultPlan` tamper hooks.

PR 1 gave the network scripted *benign* faults plus a generic
response-rewriting hook; this module populates the hook with the four
byzantine archetypes the hardened resolver must survive:

* :class:`Spoofer` — an off-path Kaminsky attacker racing forged
  answers against the genuine response; it knows the question but must
  guess the 16-bit message id;
* :class:`Poisoner` — an on-path authoritative that piggybacks
  out-of-bailiwick glue and forged DS records for victim zones onto the
  referrals it legitimately serves;
* :class:`ReferralBomber` — NXNSAttack-style amplification: referrals
  fanning out to dozens of unresolvable out-of-zone NS hosts
  (``fanout`` mode) or pointing back up at the root so the resolver
  walks the delegation tree in circles (``loop`` mode);
* :class:`SigBomber` — KeyTrap-style validation blowup: responses
  inflated with many forged DNSKEYs × many forged RRSIGs so a
  budget-less validator performs quadratic signature checks.

Every persona is deterministic given its seed, is itself a
``TamperHook`` (install with :meth:`AdversaryPersona.deploy`), and
knows how to recognise its own poison (:meth:`is_poison`) so the
adversary matrix can count corrupted cache entries without guessing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..dnscore import (
    A,
    AAAA,
    Algorithm,
    DigestType,
    DNSKEY,
    DS,
    HeaderFlags,
    Message,
    Name,
    NS,
    RCode,
    ROOT,
    RRSIG,
    RRType,
    RRset,
)
from .faults import FaultPlan

#: Question types worth attacking: the terminal queries of a resolution.
_ADDRESS_TYPES = (RRType.A, RRType.AAAA)

#: TTL the adversaries stamp on forged records — long, so poison that
#: does land stays resident for the whole measurement window.
_FORGED_TTL = 86400


class AdversaryPersona:
    """Base class: a seeded, self-describing response tamperer.

    Subclasses implement :meth:`tamper`; the instance itself is the
    ``TamperHook`` callable the network applies, so deployment is::

        persona.deploy(plan, victim_server_address)
    """

    #: Display name used by reports; subclasses override.
    kind = "adversary"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        #: Responses this persona saw travel through its addresses.
        self.responses_seen = 0
        #: Responses it actually rewrote or replaced.
        self.responses_forged = 0

    # -- TamperHook protocol -------------------------------------------

    def __call__(self, response: Message) -> Message:
        self.responses_seen += 1
        forged = self.tamper(response)
        if forged is not response:
            self.responses_forged += 1
        return forged

    def tamper(self, response: Message) -> Message:
        raise NotImplementedError

    # -- deployment and accounting -------------------------------------

    def deploy(self, plan: FaultPlan, *addresses: str) -> "AdversaryPersona":
        """Install this persona as the tamper hook for *addresses*."""
        if not addresses:
            raise ValueError("deploy() needs at least one address")
        for address in addresses:
            plan.set_tamper(address, self)
        return self

    def is_poison(self, rrset: RRset) -> bool:
        """Is *rrset* (e.g. out of a resolver cache) this persona's
        fabrication?  Default: this persona does not poison, it only
        wastes work."""
        return False

    def describe(self) -> str:
        return f"{self.kind}(seed={self.seed})"

    def __repr__(self) -> str:
        return self.describe()


def _response_flags(rcode: RCode = RCode.NOERROR, aa: bool = True) -> HeaderFlags:
    return HeaderFlags(qr=True, aa=aa, ra=False, rcode=rcode)


class Spoofer(AdversaryPersona):
    """Off-path forger racing the genuine answer (Kaminsky model).

    The attacker observes which question is in flight (trivial for a
    shared-path observer) and fires a forged answer pointing the name at
    ``attacker_address``.  Being off-path it cannot read the query's
    message id, so the forgery carries a *guessed* id — the defence a
    hardened resolver gets for free by checking the echo.

    ``race_win_rate`` is the probability the forgery outruns the real
    response; when the race is lost the genuine answer goes through
    untouched.  Draws come from the persona's seeded RNG.
    """

    kind = "spoofer"

    def __init__(
        self,
        attacker_address: str = "203.0.113.66",
        attacker_address_v6: str = "2001:db8:bad::66",
        race_win_rate: float = 1.0,
        target: Optional[Name] = None,
        seed: int = 0,
    ):
        super().__init__(seed)
        self.attacker_address = attacker_address
        self.attacker_address_v6 = attacker_address_v6
        self.race_win_rate = race_win_rate
        self.target = target
        #: Forgeries delivered (the spoofer won the race).
        self.races_won = 0

    def tamper(self, response: Message) -> Message:
        question = response.question
        if question is None or question.rtype not in _ADDRESS_TYPES:
            return response
        if self.target is not None and not question.name.is_subdomain_of(
            self.target
        ):
            return response
        if self.rng.random() >= self.race_win_rate:
            return response
        self.races_won += 1
        if question.rtype is RRType.A:
            rdata = A(self.attacker_address)
        else:
            rdata = AAAA(self.attacker_address_v6)
        forged_answer = RRset(
            question.name, question.rtype, _FORGED_TTL, (rdata,)
        )
        return Message(
            # Off-path: the id is a guess, not a copy.
            message_id=self.rng.randrange(0x10000),
            flags=_response_flags(),
            question=question,
            answer=(forged_answer,),
            edns=response.edns,
        )

    def is_poison(self, rrset: RRset) -> bool:
        if rrset.rtype is RRType.A:
            return any(r.address == self.attacker_address for r in rrset)
        if rrset.rtype is RRType.AAAA:
            return any(r.address == self.attacker_address_v6 for r in rrset)
        return False


#: Digest prefix marking a Poisoner-forged DS record; detectable by
#: :meth:`Poisoner.is_poison` and impossible for the honest signer to
#: produce (real digests are SHA hashes of key material).
_POISON_DIGEST_PREFIX = b"poisoned-ds:"


class Poisoner(AdversaryPersona):
    """On-path authoritative injecting data for zones it does not own.

    Deployed on a server the resolver legitimately consults (say a
    TLD), it piggybacks two classic out-of-bailiwick payloads onto every
    referral it serves:

    * glue A records mapping each *victim* name to ``attacker_address``
      (the pre-bailiwick-scrubbing cache-poisoning vector);
    * forged DS RRsets for the victims, attempting to graft an
      attacker-controlled key into their chain of trust.

    The response id and question are genuine — this attacker is fully
    on-path — so only bailiwick discipline stops it.
    """

    kind = "poisoner"

    def __init__(
        self,
        victims: Sequence[Name],
        attacker_address: str = "203.0.113.99",
        seed: int = 0,
    ):
        super().__init__(seed)
        if not victims:
            raise ValueError("Poisoner needs at least one victim zone")
        self.victims: Tuple[Name, ...] = tuple(victims)
        self.attacker_address = attacker_address

    def _forged_ds(self, victim: Name) -> RRset:
        digest = _POISON_DIGEST_PREFIX + victim.to_text().encode("ascii")
        rdata = DS(
            key_tag=self.rng.randrange(0x10000),
            algorithm=Algorithm.RSASHA256,
            digest_type=DigestType.SHA256,
            digest=digest,
        )
        return RRset(victim, RRType.DS, _FORGED_TTL, (rdata,))

    def tamper(self, response: Message) -> Message:
        if not response.find_rrsets(RRType.NS, "authority"):
            # Not a referral: nothing the engine would cache from the
            # authority/additional sections anyway.
            return response
        question = response.question
        extra_glue: List[RRset] = []
        extra_ds: List[RRset] = []
        for victim in self.victims:
            if question is not None and question.name.is_subdomain_of(victim):
                # The referral is on the victim's own resolution path:
                # anything we inject would be *in* bailiwick, where the
                # parent is authoritative by design — that is delegation
                # control, not the out-of-bailiwick poisoning this
                # persona models.  Skip.
                continue
            extra_glue.append(
                RRset(victim, RRType.A, _FORGED_TTL, (A(self.attacker_address),))
            )
            extra_ds.append(self._forged_ds(victim))
        if not extra_glue and not extra_ds:
            return response
        return Message(
            message_id=response.message_id,
            flags=response.flags,
            question=response.question,
            answer=response.answer,
            authority=response.authority + tuple(extra_ds),
            additional=response.additional + tuple(extra_glue),
            edns=response.edns,
        )

    def is_poison(self, rrset: RRset) -> bool:
        if rrset.rtype in _ADDRESS_TYPES:
            return any(
                getattr(r, "address", None) == self.attacker_address
                for r in rrset
            )
        if rrset.rtype is RRType.DS:
            return any(
                r.digest.startswith(_POISON_DIGEST_PREFIX) for r in rrset
            )
        return False

    def describe(self) -> str:
        names = ",".join(v.to_text() for v in self.victims)
        return f"{self.kind}(victims={names})"


class ReferralBomber(AdversaryPersona):
    """Referral-based amplification (NXNSAttack / delegation loops).

    ``fanout`` mode answers address queries with a delegation of the
    query name itself to ``fanout`` nonexistent NS hosts scattered
    across ``.invalid`` — each one costs the resolver a fresh
    sub-resolution before the walk can fail.  The referral *direction*
    is legitimate (strictly downward, toward the qname), so only a work
    budget contains it.

    ``loop`` mode answers with an upward referral to the root (with
    genuine root glue), sending an undefended resolver around the
    delegation tree until its referral limit runs out.  A
    direction-checking resolver refuses the first such referral.
    """

    kind = "referral-bomber"

    def __init__(
        self,
        mode: str = "fanout",
        fanout: int = 40,
        loop_ns_host: Optional[Name] = None,
        loop_ns_address: str = "",
        seed: int = 0,
    ):
        super().__init__(seed)
        if mode not in ("fanout", "loop"):
            raise ValueError("mode must be 'fanout' or 'loop'")
        if mode == "loop" and not loop_ns_address:
            raise ValueError("loop mode needs the real root address as glue")
        self.mode = mode
        self.fanout = fanout
        self.loop_ns_host = loop_ns_host or Name.from_text("a.root-servers.net")
        self.loop_ns_address = loop_ns_address
        self._volley = 0

    def _bomb_targets(self) -> Tuple[NS, ...]:
        # Fresh host names per volley, NXNSAttack-style: negative caching
        # of an earlier volley's names must not defuse the next one.
        self._volley += 1
        return tuple(
            NS(Name([f"ns{i}", f"bomb{self._volley}x{i}", "invalid"]))
            for i in range(self.fanout)
        )

    def tamper(self, response: Message) -> Message:
        question = response.question
        if question is None or question.rtype not in _ADDRESS_TYPES:
            return response
        if self.mode == "fanout":
            authority = (
                RRset(question.name, RRType.NS, _FORGED_TTL, self._bomb_targets()),
            )
            additional: Tuple[RRset, ...] = ()
        else:
            authority = (
                RRset(ROOT, RRType.NS, _FORGED_TTL, (NS(self.loop_ns_host),)),
            )
            additional = (
                RRset(
                    self.loop_ns_host,
                    RRType.A,
                    _FORGED_TTL,
                    (A(self.loop_ns_address),),
                ),
            )
        return Message(
            message_id=response.message_id,
            flags=_response_flags(aa=False),
            question=question,
            authority=authority,
            additional=additional,
            edns=response.edns,
        )

    def describe(self) -> str:
        detail = f"fanout={self.fanout}" if self.mode == "fanout" else "loop"
        return f"{self.kind}({self.mode},{detail})"


class SigBomber(AdversaryPersona):
    """KeyTrap-style validation blowup (many keys × many signatures).

    Deployed on the server a signed zone lives on, it pads every DNSKEY
    RRset with ``key_count`` forged-but-well-formed RSA keys and every
    RRSIG RRset with ``sigs_per_key`` forged signatures per forged key.
    The KeyTrap trick is the *key-tag collision*: every forged key is
    padded so its RFC 4034 key tag equals the genuine key's, and every
    forged signature claims that same tag — so tag matching (the cheap
    filter a validator normally skips mismatches with) passes for every
    forged (key, sig) pair and a budget-less validator performs
    ``(keys+1) × (sigs+1)`` real verifications per RRset.
    """

    kind = "sig-bomber"

    def __init__(self, key_count: int = 12, sigs_per_key: int = 16, seed: int = 0):
        super().__init__(seed)
        self.key_count = key_count
        self.sigs_per_key = sigs_per_key
        #: Forged keysets per target tag (one victim zone ⇒ one tag).
        self._keysets: dict = {}

    @staticmethod
    def _tag_of_wire(wire: bytes) -> int:
        accumulator = 0
        for index, octet in enumerate(wire):
            accumulator += octet << 8 if index % 2 == 0 else octet
        accumulator += (accumulator >> 16) & 0xFFFF
        return accumulator & 0xFFFF

    def _collide_tag(self, key: DNSKEY, target: int) -> DNSKEY:
        """Pad the key's public-key field so ``key_tag() == target``.

        The tag is a 16-bit ones'-complement-style sum, so an appended
        big-endian word shifts it by a computable amount; one 65536-step
        scan per key finds the padding word.
        """
        public = key.public_key
        if (4 + len(public)) % 2 == 1:
            public += b"\x00"  # align the padding word on a 16-bit edge
        base = dataclasses.replace(key, public_key=public)
        prefix = base.to_wire()
        for word in range(0x10000):
            if self._tag_of_wire(prefix + word.to_bytes(2, "big")) == target:
                return dataclasses.replace(
                    key, public_key=public + word.to_bytes(2, "big")
                )
        raise AssertionError("unreachable: 16-bit tag scan must hit")

    def _keys_for_tag(self, target: int) -> Tuple[DNSKEY, ...]:
        keys = self._keysets.get(target)
        if keys is None:
            from ..crypto.rsa import RSAPublicKey

            forged = []
            for _ in range(self.key_count):
                # A syntactically valid RSA key with a random modulus:
                # parses fine, verifies nothing, costs a real modexp.
                modulus = self.rng.getrandbits(512) | (1 << 511) | 1
                public = RSAPublicKey(modulus=modulus, exponent=65537)
                key = DNSKEY(
                    flags=DNSKEY.KSK_FLAGS,
                    protocol=3,
                    algorithm=Algorithm.RSASHA256,
                    public_key=public.to_bytes(),
                )
                forged.append(self._collide_tag(key, target))
            keys = self._keysets[target] = tuple(forged)
        return keys

    @staticmethod
    def _target_tag(response: Message) -> Optional[int]:
        """The tag to collide with: the victim zone's own KSK tag (or
        any signing key's, read straight off the response)."""
        for rrset in response.find_rrsets(RRType.DNSKEY):
            for key in rrset:
                if key.is_ksk():  # type: ignore[attr-defined]
                    return key.key_tag()  # type: ignore[attr-defined]
        for rrset in response.find_rrsets(RRType.RRSIG):
            return rrset.first().key_tag  # type: ignore[attr-defined]
        return None

    def _forged_sigs(self, template: RRSIG, tag: int) -> Tuple[RRSIG, ...]:
        return tuple(
            RRSIG(
                type_covered=template.type_covered,
                algorithm=template.algorithm,
                labels=template.labels,
                original_ttl=template.original_ttl,
                expiration=template.expiration,
                inception=template.inception,
                key_tag=tag,
                signer=template.signer,
                signature=self.rng.getrandbits(512).to_bytes(64, "big"),
            )
            for _ in range(self.key_count * self.sigs_per_key)
        )

    def _inflate(self, section: Tuple[RRset, ...], tag: int) -> Tuple[RRset, ...]:
        out = []
        for rrset in section:
            if rrset.rtype is RRType.DNSKEY:
                out.append(
                    RRset(
                        rrset.name,
                        rrset.rtype,
                        rrset.ttl,
                        self._keys_for_tag(tag) + rrset.rdatas,
                    )
                )
            elif rrset.rtype is RRType.RRSIG:
                template = rrset.first()
                out.append(
                    RRset(
                        rrset.name,
                        rrset.rtype,
                        rrset.ttl,
                        self._forged_sigs(template, tag) + rrset.rdatas,  # type: ignore[arg-type]
                    )
                )
            else:
                out.append(rrset)
        return tuple(out)

    def tamper(self, response: Message) -> Message:
        tag = self._target_tag(response)
        if tag is None:
            return response
        return Message(
            message_id=response.message_id,
            flags=response.flags,
            question=response.question,
            answer=self._inflate(response.answer, tag),
            authority=self._inflate(response.authority, tag),
            additional=response.additional,
            edns=response.edns,
        )

    def describe(self) -> str:
        return (
            f"{self.kind}(keys={self.key_count},sigs/key={self.sigs_per_key})"
        )


def all_personas() -> Iterable[str]:
    """The persona kinds this module ships, for matrix iteration."""
    return ("spoofer", "poisoner", "referral-bomber", "sig-bomber")
