"""Simulated network: clock, latency, routing, and packet capture."""

from .capture import Capture, PacketRecord
from .clock import SimClock
from .latency import LatencyModel, ZeroLatency
from .network import DnsServer, Network, NetworkError, QueryTimeout

__all__ = [
    "Capture",
    "DnsServer",
    "LatencyModel",
    "Network",
    "NetworkError",
    "PacketRecord",
    "QueryTimeout",
    "SimClock",
    "ZeroLatency",
]
