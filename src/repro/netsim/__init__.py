"""Simulated network: clock, latency, routing, and packet capture."""

from .adversary import (
    AdversaryPersona,
    Poisoner,
    ReferralBomber,
    SigBomber,
    Spoofer,
)
from .capture import Capture, PacketRecord, StreamingCapture
from .clock import SimClock
from .faults import Brownout, FaultPlan, OutageWindow, TamperHook
from .latency import LatencyModel, ZeroLatency
from .network import DnsServer, Network, NetworkError, QueryTimeout
from .sched import (
    EventScheduler,
    Priority,
    SchedulerError,
    SchedulerStats,
    Session,
)

__all__ = [
    "AdversaryPersona",
    "Brownout",
    "Poisoner",
    "ReferralBomber",
    "SigBomber",
    "Spoofer",
    "Capture",
    "DnsServer",
    "EventScheduler",
    "FaultPlan",
    "LatencyModel",
    "Network",
    "NetworkError",
    "OutageWindow",
    "PacketRecord",
    "Priority",
    "QueryTimeout",
    "SchedulerError",
    "SchedulerStats",
    "Session",
    "SimClock",
    "StreamingCapture",
    "TamperHook",
    "ZeroLatency",
]
