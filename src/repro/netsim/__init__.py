"""Simulated network: clock, latency, routing, and packet capture."""

from .adversary import (
    AdversaryPersona,
    Poisoner,
    ReferralBomber,
    SigBomber,
    Spoofer,
)
from .capture import Capture, PacketRecord
from .clock import SimClock
from .faults import Brownout, FaultPlan, OutageWindow, TamperHook
from .latency import LatencyModel, ZeroLatency
from .network import DnsServer, Network, NetworkError, QueryTimeout

__all__ = [
    "AdversaryPersona",
    "Brownout",
    "Poisoner",
    "ReferralBomber",
    "SigBomber",
    "Spoofer",
    "Capture",
    "DnsServer",
    "FaultPlan",
    "LatencyModel",
    "Network",
    "NetworkError",
    "OutageWindow",
    "PacketRecord",
    "QueryTimeout",
    "SimClock",
    "TamperHook",
    "ZeroLatency",
]
