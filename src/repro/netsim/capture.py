"""Packet capture: the simulator's tcpdump.

Every query/response pair that crosses the simulated network is recorded
with timestamps, endpoints, the parsed message, and the uncompressed
wire size.  The paper's measurements are all capture post-processing:
"All DLV queries are extracted from the network traffic by filtering the
query type" (Section 5.1) — :meth:`Capture.queries_of_type` is exactly
that filter.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional

from ..dnscore import Message, Name, RRType


@dataclasses.dataclass(frozen=True)
class PacketRecord:
    """One captured packet (a query or a response).

    ``dropped`` marks packets lost in flight: they were *sent* (and so
    appear in a sender-side capture) but never reached the destination
    — the distinction matters when counting what an observer saw.
    """

    time: float
    src: str
    dst: str
    message: Message
    wire_size: int
    dropped: bool = False

    @property
    def is_query(self) -> bool:
        return not self.message.flags.qr

    @property
    def qname(self) -> Optional[Name]:
        question = self.message.question
        return question.name if question is not None else None

    @property
    def qtype(self) -> Optional[RRType]:
        question = self.message.question
        return question.rtype if question is not None else None


class Capture:
    """An append-only log of packets with analysis helpers."""

    def __init__(self):
        self._records: List[PacketRecord] = []

    def record(self, packet: PacketRecord) -> None:
        self._records.append(packet)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------

    def queries(self) -> List[PacketRecord]:
        return [record for record in self._records if record.is_query]

    def responses(self) -> List[PacketRecord]:
        return [record for record in self._records if not record.is_query]

    def queries_of_type(self, rtype: RRType) -> List[PacketRecord]:
        """The paper's traffic filter: all queries with a given qtype."""
        return [
            record
            for record in self._records
            if record.is_query and record.qtype is rtype
        ]

    def queries_to(self, address: str) -> List[PacketRecord]:
        return [
            record
            for record in self._records
            if record.is_query and record.dst == address
        ]

    def filter(self, predicate: Callable[[PacketRecord], bool]) -> List[PacketRecord]:
        return [record for record in self._records if predicate(record)]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total traffic volume in bytes (queries + responses)."""
        return sum(record.wire_size for record in self._records)

    def query_count(self) -> int:
        return sum(1 for record in self._records if record.is_query)

    def query_type_histogram(self) -> Dict[RRType, int]:
        """Counts per query type — the raw material of Table 4."""
        counter: Counter = Counter()
        for record in self._records:
            if record.is_query and record.qtype is not None:
                counter[record.qtype] += 1
        return dict(counter)

    def export_rows(self) -> List[Dict[str, object]]:
        """Flatten the capture into plain dict rows (timestamp, src,
        dst, direction, qname, qtype, rcode, size) for offline analysis
        or serialisation by downstream users."""
        rows: List[Dict[str, object]] = []
        for record in self._records:
            qname = record.qname
            qtype = record.qtype
            rows.append(
                {
                    "time": record.time,
                    "src": record.src,
                    "dst": record.dst,
                    "direction": "query" if record.is_query else "response",
                    "qname": qname.to_text() if qname is not None else None,
                    "qtype": qtype.name if qtype is not None else None,
                    "rcode": record.message.rcode.name,
                    "wire_size": record.wire_size,
                }
            )
        return rows

    def response_for(self, query: PacketRecord) -> Optional[PacketRecord]:
        """Find the response matching a captured query (same id, flipped
        endpoints, first match after the query's timestamp)."""
        for record in self._records:
            if (
                not record.is_query
                and record.message.message_id == query.message.message_id
                and record.src == query.dst
                and record.dst == query.src
                and record.time >= query.time
            ):
                return record
        return None


class StreamingCapture(Capture):
    """A constant-memory capture for population-scale replays.

    A list-based :class:`Capture` holding every packet of a million-query
    replay is exactly the memory blow-up streaming aggregation exists to
    avoid, so this subclass keeps **no per-packet records**: ``record``
    updates O(1) aggregate counters and forwards each
    :class:`PacketRecord` to an optional *observer* callback, then drops
    it.  The replay driver's observer does its leak classification (and
    anything else record-shaped) online, at the wire, the same place the
    paper's registry tap sits.

    Aggregate views stay correct (``len``, :meth:`total_bytes`,
    :meth:`query_count`, :meth:`query_type_histogram`); record-level
    helpers inherited from :class:`Capture` see an empty log — by
    design, there is nothing retained to filter.
    """

    def __init__(self, observer: Optional[Callable[[PacketRecord], None]] = None):
        super().__init__()
        self.observer = observer
        self.packets = 0
        self.queries_seen = 0
        self.responses_seen = 0
        self.bytes_seen = 0
        self.dropped_seen = 0
        self._qtype_histogram: Counter = Counter()

    def record(self, packet: PacketRecord) -> None:
        self.packets += 1
        self.bytes_seen += packet.wire_size
        if packet.dropped:
            self.dropped_seen += 1
        if packet.is_query:
            self.queries_seen += 1
            qtype = packet.qtype
            if qtype is not None:
                self._qtype_histogram[qtype] += 1
        else:
            self.responses_seen += 1
        if self.observer is not None:
            self.observer(packet)

    def clear(self) -> None:
        super().clear()
        self.packets = 0
        self.queries_seen = 0
        self.responses_seen = 0
        self.bytes_seen = 0
        self.dropped_seen = 0
        self._qtype_histogram.clear()

    def __len__(self) -> int:
        return self.packets

    def total_bytes(self) -> int:
        return self.bytes_seen

    def query_count(self) -> int:
        return self.queries_seen

    def query_type_histogram(self) -> Dict[RRType, int]:
        return dict(self._qtype_histogram)
