"""The simulated network: address routing, RTT accounting, capture.

Servers register under string addresses ("192.0.2.1"-style or symbolic).
A client calls :meth:`Network.query`; the network encodes the query to
wire form (accounting its size), hands it to the destination server's
``handle`` method, encodes the response, advances the shared clock by
one sampled round-trip time, and records both packets in the capture.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Protocol

from ..dnscore import Message, decode_message, encode_message
from .capture import Capture, PacketRecord
from .clock import SimClock
from .latency import LatencyModel


class DnsServer(Protocol):
    """Anything that can answer a DNS message."""

    def handle(self, query: Message) -> Message:  # pragma: no cover - protocol
        ...


class NetworkError(RuntimeError):
    """Raised when a destination address has no registered server."""


class QueryTimeout(NetworkError):
    """Raised when a query or its response is lost in flight."""


class Network:
    """Routes messages between simulated hosts."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        capture: Optional[Capture] = None,
        verify_wire_roundtrip: bool = False,
        loss_rate: float = 0.0,
        loss_seed: int = 0x105E,
        loss_timeout: float = 1.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel()
        self.capture = capture or Capture()
        self._servers: Dict[str, DnsServer] = {}
        #: When set, every message is decoded back from its wire form and
        #: the decoded message is what gets delivered — a continuous codec
        #: self-check.  Off by default for speed.
        self._verify_wire_roundtrip = verify_wire_roundtrip
        #: Probability that one exchange loses a packet (query or
        #: response, chosen uniformly).  The sender times out and may
        #: retry; a lost packet is still captured with dropped=True on
        #: the leg it travelled.
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.loss_timeout = loss_timeout

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register(self, address: str, server: DnsServer) -> None:
        if address in self._servers:
            raise ValueError(f"address {address} already registered")
        self._servers[address] = server

    def replace(self, address: str, server: DnsServer) -> DnsServer:
        """Swap the server behind an address (e.g. to interpose an
        attacker proxy or simulate an outage).  Returns the old server."""
        if address not in self._servers:
            raise NetworkError(f"no server at {address}")
        old = self._servers[address]
        self._servers[address] = server
        return old

    def server_at(self, address: str) -> DnsServer:
        try:
            return self._servers[address]
        except KeyError as exc:
            raise NetworkError(f"no server at {address}") from exc

    def addresses(self):
        return tuple(self._servers)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def query(self, src: str, dst: str, message: Message) -> Message:
        """Send *message* from *src* to *dst* and return the response.

        Advances the clock by one sampled RTT and logs both directions to
        the capture with their uncompressed wire sizes.
        """
        server = self.server_at(dst)
        if self._verify_wire_roundtrip:
            query_wire = encode_message(message)
            message = decode_message(query_wire)
            query_size = len(query_wire)
        else:
            # wire_size() computes the exact encoded length arithmetically;
            # the equivalence is enforced by a property test on the codec.
            query_size = message.wire_size()
        lose_query = lose_response = False
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            if self._loss_rng.random() < 0.5:
                lose_query = True
            else:
                lose_response = True
        send_time = self.clock.now
        self.capture.record(
            PacketRecord(
                time=send_time,
                src=src,
                dst=dst,
                message=message,
                wire_size=query_size,
                dropped=lose_query,
            )
        )
        if lose_query:
            self.clock.advance(self.loss_timeout)
            raise QueryTimeout(f"query to {dst} lost")
        response = server.handle(message)
        if self._verify_wire_roundtrip:
            response_wire = encode_message(response)
            response = decode_message(response_wire)
            response_size = len(response_wire)
        else:
            response_size = response.wire_size()
        rtt = self.latency.sample(dst)
        arrival = self.clock.advance(rtt)
        self.capture.record(
            PacketRecord(
                time=arrival,
                src=dst,
                dst=src,
                message=response,
                wire_size=response_size,
                dropped=lose_response,
            )
        )
        if lose_response:
            self.clock.advance(self.loss_timeout)
            raise QueryTimeout(f"response from {dst} lost")
        return response
