"""The simulated network: address routing, RTT accounting, capture.

Servers register under string addresses ("192.0.2.1"-style or symbolic).
A client calls :meth:`Network.query`; the network encodes the query to
wire form (accounting its size), hands it to the destination server's
``handle`` method, encodes the response, advances the shared clock by
one sampled round-trip time, and records both packets in the capture.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..dnscore import Message, decode_message, encode_message
from .capture import Capture, PacketRecord
from .clock import SimClock
from .faults import FaultPlan
from .latency import LatencyModel
from .sched import Priority


class DnsServer(Protocol):
    """Anything that can answer a DNS message."""

    def handle(self, query: Message) -> Message:  # pragma: no cover - protocol
        ...


class NetworkError(RuntimeError):
    """Raised when a destination address has no registered server."""


class QueryTimeout(NetworkError):
    """Raised when a query or its response is lost in flight."""


class Network:
    """Routes messages between simulated hosts."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        capture: Optional[Capture] = None,
        verify_wire_roundtrip: bool = False,
        loss_rate: float = 0.0,
        loss_seed: int = 0x105E,
        loss_timeout: float = 1.0,
        faults: Optional[FaultPlan] = None,
        tracer=None,
        metrics=None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.clock = clock or SimClock()
        #: Optional telemetry sinks (duck-typed, ``None``-guarded; see
        #: :mod:`repro.core.tracing`).  Mutable so a tracer can be
        #: attached after construction (``Universe.attach_telemetry``);
        #: sharing one tracer with the resolver makes fault events nest
        #: under the exchange span that suffered them.
        self.tracer = tracer
        self.metrics = metrics
        self.latency = latency or LatencyModel()
        self.capture = capture or Capture()
        self._servers: Dict[str, DnsServer] = {}
        #: When set, every message is decoded back from its wire form and
        #: the decoded message is what gets delivered — a continuous codec
        #: self-check.  Off by default for speed.
        self._verify_wire_roundtrip = verify_wire_roundtrip
        #: All loss, outage, brownout, and tampering behaviour lives in
        #: the fault plan; the legacy ``loss_rate``/``loss_seed`` pair
        #: configures the plan's uniform default loss.
        self.faults = faults if faults is not None else FaultPlan(
            seed=loss_seed, default_loss_rate=loss_rate
        )
        self.loss_timeout = loss_timeout

    @property
    def loss_rate(self) -> float:
        """Network-wide default loss probability (per exchange, one
        packet, direction chosen uniformly — see :class:`FaultPlan`)."""
        return self.faults.default_loss_rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        self.faults.default_loss_rate = rate

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register(self, address: str, server: DnsServer) -> None:
        if address in self._servers:
            raise ValueError(f"address {address} already registered")
        self._servers[address] = server

    def replace(self, address: str, server: DnsServer) -> DnsServer:
        """Swap the server behind an address (e.g. to interpose an
        attacker proxy or simulate an outage).  Returns the old server."""
        if address not in self._servers:
            raise NetworkError(f"no server at {address}")
        old = self._servers[address]
        self._servers[address] = server
        return old

    def server_at(self, address: str) -> DnsServer:
        try:
            return self._servers[address]
        except KeyError as exc:
            raise NetworkError(f"no server at {address}") from exc

    def addresses(self):
        return tuple(self._servers)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def query(self, src: str, dst: str, message: Message) -> Message:
        """Send *message* from *src* to *dst* and return the response.

        Advances the clock by one sampled RTT and logs both directions to
        the capture with their uncompressed wire sizes.  Consults the
        fault plan for scripted outages, loss, brownouts, and tampering.

        Timeout accounting lives here and only here: every lost exchange
        (dropped query, dropped response, black-holed outage) costs the
        sender exactly ``loss_timeout`` measured from the send time —
        callers add only their own retry backoff on top.
        """
        server = self.server_at(dst)
        if self._verify_wire_roundtrip:
            query_wire = encode_message(message)
            message = decode_message(query_wire)
            query_size = len(query_wire)
        else:
            # wire_size() computes the exact encoded length arithmetically;
            # the equivalence is enforced by a property test on the codec.
            query_size = message.wire_size()
        send_time = self.clock.now
        tracer = self.tracer
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("net.exchanges")
        outage = self.faults.active_outage(dst, send_time)
        if outage is not None and outage.rcode is None:
            # Black hole: the query leaves the sender but never arrives.
            self.capture.record(
                PacketRecord(
                    time=send_time,
                    src=src,
                    dst=dst,
                    message=message,
                    wire_size=query_size,
                    dropped=True,
                )
            )
            if tracer is not None:
                tracer.event("fault", kind="outage_blackhole", server=dst)
            self.clock.advance(self.loss_timeout, priority=Priority.TIMEOUT)
            raise QueryTimeout(f"query to {dst} lost (outage)")
        lose_query, lose_response = self.faults.roll_loss(dst)
        self.capture.record(
            PacketRecord(
                time=send_time,
                src=src,
                dst=dst,
                message=message,
                wire_size=query_size,
                dropped=lose_query,
            )
        )
        if lose_query:
            if tracer is not None:
                tracer.event("fault", kind="loss", direction="query",
                             server=dst)
            self.clock.advance(self.loss_timeout, priority=Priority.TIMEOUT)
            raise QueryTimeout(f"query to {dst} lost")
        if outage is not None:
            # The host is reachable but the service is broken: every
            # query earns the scripted error (the DLV registry outage
            # mode of paper Section 8.4).
            if tracer is not None:
                tracer.event("fault", kind="outage_rcode", server=dst,
                             rcode=outage.rcode.name)
            response = message.make_response(rcode=outage.rcode)
        else:
            response = server.handle(message)
        delivered = self.faults.tamper_response(dst, response)
        if delivered is not response:
            if tracer is not None:
                tracer.event("fault", kind="tamper", server=dst)
            if metrics is not None:
                metrics.inc("faults.responses_tampered")
        response = delivered
        if self._verify_wire_roundtrip:
            response_wire = encode_message(response)
            response = decode_message(response_wire)
            response_size = len(response_wire)
        else:
            response_size = response.wire_size()
        brownout_extra = self.faults.extra_latency(dst, send_time)
        if brownout_extra > 0 and tracer is not None:
            tracer.event("fault", kind="brownout", server=dst,
                         extra=brownout_extra)
        # A delivery outranks a same-instant timeout (Priority.DELIVERY):
        # under the event scheduler, a response landing exactly when
        # another session's loss timer fires is answered first.
        rtt = self.latency.sample(dst) + brownout_extra
        arrival = self.clock.advance(rtt, priority=Priority.DELIVERY)
        if metrics is not None:
            metrics.observe("net.rtt", rtt)
            metrics.inc("net.bytes", query_size + response_size)
        self.capture.record(
            PacketRecord(
                time=arrival,
                src=dst,
                dst=src,
                message=response,
                wire_size=response_size,
                dropped=lose_response,
            )
        )
        if lose_response:
            if tracer is not None:
                tracer.event("fault", kind="loss", direction="response",
                             server=dst)
            # The sender's timer started at send time; the RTT already
            # elapsed counts toward its timeout (fixing the historical
            # rtt + full-timeout double penalty).
            self.clock.advance(max(0.0, self.loss_timeout - rtt),
                               priority=Priority.TIMEOUT)
            raise QueryTimeout(f"response from {dst} lost")
        return response
