"""Deterministic fault injection: scripted outages, loss, brownouts.

A :class:`FaultPlan` attached to a :class:`~repro.netsim.network.Network`
scripts per-destination faults on the simulated clock:

* **loss** — a per-address drop probability (plus a network-wide
  default, subsuming the old single global ``loss_rate``);
* **outage windows** — ``[start, end)`` intervals during which an
  address either black-holes traffic (``rcode=None``: the query is
  sent but never answered, the sender times out) or answers every
  query with a fixed error (``rcode=SERVFAIL`` / ``REFUSED`` — the
  host is up but the service is broken, the mode of the DLV registry
  outages the paper's Section 8.4 documents);
* **brownouts** — ``[start, end)`` intervals adding latency to every
  exchange with an address (an overloaded or distant-failover server);
* **tamper hooks** — a callable rewriting responses from an address
  (the network-layer generalisation of
  :class:`~repro.core.attacks.TamperingProxy`).

Everything is seeded: loss draws come from a per-address RNG derived
from ``(seed, address)``, so the same plan over the same traffic
produces byte-identical captures — the property the chaos benchmarks
and the determinism tests rely on.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from ..dnscore import Message, RCode

#: A response-rewriting hook: receives the response a server produced
#: and returns the (possibly modified) response actually delivered.
TamperHook = Callable[[Message], Message]


@dataclasses.dataclass(frozen=True)
class OutageWindow:
    """One scripted outage of a destination address.

    ``rcode=None`` models a black hole (packets vanish, senders time
    out); a concrete :class:`RCode` models a server that is reachable
    but answers every query with that error.
    """

    start: float
    end: float
    rcode: Optional[RCode] = None

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("outage window must satisfy start < end")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclasses.dataclass(frozen=True)
class Brownout:
    """Added one-way service degradation: extra RTT inside a window."""

    start: float
    end: float
    extra_latency: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("brownout window must satisfy start < end")
        if self.extra_latency < 0:
            raise ValueError("brownout latency must be non-negative")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclasses.dataclass
class _AddressFaults:
    """Faults scripted for one destination address."""

    loss_rate: Optional[float] = None
    outages: List[OutageWindow] = dataclasses.field(default_factory=list)
    brownouts: List[Brownout] = dataclasses.field(default_factory=list)
    tamper: Optional[TamperHook] = None


def _validate_rate(rate: float) -> float:
    if not 0.0 <= rate < 1.0:
        raise ValueError("loss rate must be in [0, 1)")
    return rate


class FaultPlan:
    """A reproducible, clock-scripted fault schedule for a network.

    Builder methods return ``self`` so plans read as one chained
    expression::

        plan = (
            FaultPlan(seed=7)
            .add_outage("10.0.0.1", start=10.0, end=40.0)          # black hole
            .add_outage("10.0.0.2", start=0.0, rcode=RCode.SERVFAIL)
            .add_brownout("10.0.0.3", start=5.0, end=25.0, extra_latency=0.5)
            .set_loss("10.0.0.4", 0.2)
        )
    """

    def __init__(self, seed: int = 0x105E, default_loss_rate: float = 0.0):
        self.seed = seed
        self._default_loss_rate = _validate_rate(default_loss_rate)
        self._faults: Dict[str, _AddressFaults] = {}
        self._rngs: Dict[str, random.Random] = {}
        #: Observability counters for reports and tests.
        self.drops_injected = 0
        self.outage_hits = 0
        #: Optional metrics registry (duck-typed, ``None``-guarded; see
        #: :mod:`repro.core.metrics`).  Mirrors the int counters above
        #: into the shared registry so fault activity shows up in
        #: experiment snapshots next to resolver counters.
        self.metrics = None

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    @property
    def default_loss_rate(self) -> float:
        return self._default_loss_rate

    @default_loss_rate.setter
    def default_loss_rate(self, rate: float) -> None:
        self._default_loss_rate = _validate_rate(rate)

    def _entry(self, address: str) -> _AddressFaults:
        if address not in self._faults:
            self._faults[address] = _AddressFaults()
        return self._faults[address]

    def set_loss(self, address: str, rate: float) -> "FaultPlan":
        """Per-destination loss probability, overriding the default."""
        self._entry(address).loss_rate = _validate_rate(rate)
        return self

    def add_outage(
        self,
        address: str,
        start: float = 0.0,
        end: float = float("inf"),
        rcode: Optional[RCode] = None,
    ) -> "FaultPlan":
        """Script an outage of *address* during ``[start, end)``."""
        self._entry(address).outages.append(OutageWindow(start, end, rcode))
        return self

    def add_brownout(
        self, address: str, start: float, end: float, extra_latency: float
    ) -> "FaultPlan":
        """Script added latency toward *address* during ``[start, end)``."""
        self._entry(address).brownouts.append(Brownout(start, end, extra_latency))
        return self

    def set_tamper(self, address: str, hook: Optional[TamperHook]) -> "FaultPlan":
        """Install (or clear) a response-rewriting hook for *address*."""
        self._entry(address).tamper = hook
        return self

    def clear(self, address: str) -> "FaultPlan":
        """Drop every scripted fault for *address* (loss reverts to the
        network default)."""
        self._faults.pop(address, None)
        return self

    # ------------------------------------------------------------------
    # Queried by the network on every exchange
    # ------------------------------------------------------------------

    def active_outage(self, address: str, now: float) -> Optional[OutageWindow]:
        entry = self._faults.get(address)
        if entry is None:
            return None
        for window in entry.outages:
            if window.active(now):
                self.outage_hits += 1
                if self.metrics is not None:
                    self.metrics.inc("faults.outage_hits")
                return window
        return None

    def roll_loss(self, address: str) -> Tuple[bool, bool]:
        """One loss draw for an exchange with *address*.

        Returns ``(lose_query, lose_response)``; at most one is true
        (the lost packet's direction is a second coin flip, matching
        the legacy global loss model).
        """
        entry = self._faults.get(address)
        rate = (
            entry.loss_rate
            if entry is not None and entry.loss_rate is not None
            else self._default_loss_rate
        )
        if rate <= 0.0:
            return False, False
        rng = self._rng(address)
        if rng.random() >= rate:
            return False, False
        self.drops_injected += 1
        if self.metrics is not None:
            self.metrics.inc("faults.drops_injected")
        if rng.random() < 0.5:
            return True, False
        return False, True

    def extra_latency(self, address: str, now: float) -> float:
        entry = self._faults.get(address)
        if entry is None:
            return 0.0
        return sum(
            brownout.extra_latency
            for brownout in entry.brownouts
            if brownout.active(now)
        )

    def tamper_response(self, address: str, response: Message) -> Message:
        entry = self._faults.get(address)
        if entry is None or entry.tamper is None:
            return response
        return entry.tamper(response)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _rng(self, address: str) -> random.Random:
        """Per-address RNG: loss draws for one destination do not
        depend on traffic to any other, making plans composable
        without perturbing each other's schedules."""
        rng = self._rngs.get(address)
        if rng is None:
            rng = random.Random(self.seed ^ zlib.crc32(address.encode("utf-8")))
            self._rngs[address] = rng
        return rng

    def faulted_addresses(self) -> Tuple[str, ...]:
        return tuple(self._faults)

    def outage_windows(self) -> Tuple[Tuple[str, OutageWindow], ...]:
        """Every scripted outage as ``(address, window)`` pairs, in
        insertion order.  The chaos-replay driver derives its
        during/after fault bounds from this without reaching into the
        plan's private schedule."""
        return tuple(
            (address, window)
            for address, entry in self._faults.items()
            for window in entry.outages
        )

    def describe(self) -> str:
        parts: List[str] = []
        if self._default_loss_rate > 0:
            parts.append(f"loss={self._default_loss_rate:.3f}")
        for address, entry in self._faults.items():
            clauses: List[str] = []
            if entry.loss_rate is not None:
                clauses.append(f"loss={entry.loss_rate:.3f}")
            for window in entry.outages:
                mode = window.rcode.name if window.rcode is not None else "timeout"
                clauses.append(f"outage[{window.start:g},{window.end:g})={mode}")
            for brownout in entry.brownouts:
                clauses.append(
                    f"brownout[{brownout.start:g},{brownout.end:g})"
                    f"=+{brownout.extra_latency:g}s"
                )
            if entry.tamper is not None:
                clauses.append("tamper")
            if clauses:
                parts.append(f"{address}:{'+'.join(clauses)}")
        return " ".join(parts) if parts else "no faults"

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()})"
