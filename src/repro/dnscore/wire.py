"""Wire-format codec for DNS messages (RFC 1035 section 4).

Two encoding modes:

* **uncompressed** (default): every name in full.  This is what the
  simulator's fast-path size accounting models (``Message.wire_size``),
  applied uniformly to baselines and remedies so relative overheads are
  unaffected.
* **compressed** (``encode_message(..., compress=True)``): RFC 1035
  section 4.1.4 name-compression pointers for the question name, owner
  names, and the name fields of NS/CNAME/PTR/MX/SOA rdata (the types
  compression is permitted in).  Available to callers who want
  realistic absolute sizes; the byte-accuracy tests exercise it.

The decoder transparently handles both (pointers are followed with a
loop guard against malicious cycles).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .. import perf
from .constants import RCode, RRClass, RRType
from .flags import Edns, HeaderFlags
from .message import Message, Question
from .names import Name, NameError_
from .rdata import (
    CNAME,
    MX,
    NS,
    PTR,
    Rdata,
    RdataError,
    SOA,
    _encode_name,
    rdata_class_for,
)
from .rrset import RRset

#: RR type code of the EDNS0 OPT pseudo-record (RFC 6891).
_OPT_TYPE = 41

#: Pointer marker bits in a label length octet (RFC 1035 4.1.4).
_POINTER_MASK = 0xC0

#: Maximum pointer hops while decoding one name (cycle guard).
_MAX_POINTER_HOPS = 64


class WireError(ValueError):
    """Raised when a message cannot be decoded."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


class _Compressor:
    """Name writer with an RFC 1035 compression-pointer table."""

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def write_name(self, out: bytearray, name: Name) -> None:
        labels = name.labels
        if not self.enabled:
            out.extend(_encode_name(name))
            return
        for index in range(len(labels)):
            suffix = labels[index:]
            known = self._offsets.get(suffix)
            if known is not None and known < 0x4000:
                out.extend(struct.pack("!H", _POINTER_MASK << 8 | known))
                return
            if len(out) < 0x4000:
                self._offsets[suffix] = len(out)
            raw = labels[index].encode("ascii")
            out.append(len(raw))
            out.extend(raw)
        out.append(0)


def _encode_rdata(out: bytearray, rdata: Rdata, compressor: _Compressor) -> None:
    """Append rdata, compressing name fields where the RFC permits."""
    if isinstance(rdata, (NS, CNAME, PTR)):
        compressor.write_name(out, rdata.target)
        return
    if isinstance(rdata, MX):
        out.extend(struct.pack("!H", rdata.preference))
        compressor.write_name(out, rdata.exchange)
        return
    if isinstance(rdata, SOA):
        compressor.write_name(out, rdata.mname)
        compressor.write_name(out, rdata.rname)
        out.extend(
            struct.pack(
                "!IIIII",
                rdata.serial,
                rdata.refresh,
                rdata.retry,
                rdata.expire,
                rdata.minimum,
            )
        )
        return
    out.extend(rdata.to_wire())


def encode_message(message: Message, compress: bool = False) -> bytes:
    """Serialise *message* to RFC 1035 wire format."""
    if not compress and perf.ENABLED:
        return _encode_uncompressed(message)
    compressor = _Compressor(enabled=compress)
    out = bytearray()
    question_count = 1 if message.question is not None else 0
    answer = list(_iter_records(message.answer))
    authority = list(_iter_records(message.authority))
    additional = list(_iter_records(message.additional))
    additional_count = len(additional) + (1 if message.edns else 0)
    out.extend(
        struct.pack(
            "!HHHHHH",
            message.message_id,
            message.flags.to_wire(),
            question_count,
            len(answer),
            len(authority),
            additional_count,
        )
    )
    if message.question is not None:
        compressor.write_name(out, message.question.name)
        out.extend(
            struct.pack(
                "!HH", int(message.question.rtype), int(message.question.rclass)
            )
        )
    for name, rtype, rclass, ttl, rdata in answer + authority + additional:
        compressor.write_name(out, name)
        out.extend(struct.pack("!HHI", int(rtype), int(rclass), ttl))
        length_at = len(out)
        out.extend(b"\x00\x00")
        _encode_rdata(out, rdata, compressor)
        rdlength = len(out) - length_at - 2
        struct.pack_into("!H", out, length_at, rdlength)
    if message.edns is not None:
        out.extend(_encode_opt(message.edns))
    return bytes(out)


def _encode_uncompressed(message: Message) -> bytes:
    """Pointer-free encoding assembled from the per-RRset wire caches.

    Byte-for-byte identical to the generic path with ``compress=False``
    (uncompressed, every rdata encodes as its own ``to_wire``); kept as
    a separate path so immutable signed RRsets serialize once.
    """
    out = bytearray()
    question_count = 1 if message.question is not None else 0
    answer_count = sum(len(rrset) for rrset in message.answer)
    authority_count = sum(len(rrset) for rrset in message.authority)
    additional_count = sum(len(rrset) for rrset in message.additional) + (
        1 if message.edns else 0
    )
    out.extend(
        struct.pack(
            "!HHHHHH",
            message.message_id,
            message.flags.to_wire(),
            question_count,
            answer_count,
            authority_count,
            additional_count,
        )
    )
    if message.question is not None:
        out.extend(_encode_name(message.question.name))
        out.extend(
            struct.pack(
                "!HH", int(message.question.rtype), int(message.question.rclass)
            )
        )
    for section in (message.answer, message.authority, message.additional):
        for rrset in section:
            out.extend(rrset.records_wire())
    if message.edns is not None:
        out.extend(_encode_opt(message.edns))
    return bytes(out)


def _iter_records(section: Tuple[RRset, ...]):
    for rrset in section:
        for rdata in rrset.rdatas:
            yield (rrset.name, rrset.rtype, rrset.rclass, rrset.ttl, rdata)


def _encode_opt(edns: Edns) -> bytes:
    return b"\x00" + struct.pack(
        "!HHIH", _OPT_TYPE, edns.udp_payload_size, edns.ttl_field(), 0
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _decode_name_at(data: bytes, offset: int) -> Tuple[Name, int]:
    """Decode a (possibly compressed) name against the whole message.

    Returns the name and the offset just past its *in-place* encoding
    (pointers count as two octets).
    """
    labels: List[str] = []
    cursor = offset
    end: Optional[int] = None
    hops = 0
    while True:
        if cursor >= len(data):
            raise WireError("truncated name")
        length = data[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= len(data):
                raise WireError("truncated compression pointer")
            target = ((length & ~_POINTER_MASK) << 8) | data[cursor + 1]
            if end is None:
                end = cursor + 2
            if target >= cursor:
                raise WireError("forward compression pointer")
            cursor = target
            hops += 1
            if hops > _MAX_POINTER_HOPS:
                raise WireError("compression pointer loop")
            continue
        if length & _POINTER_MASK:
            raise WireError("reserved label type")
        cursor += 1
        if length == 0:
            break
        if cursor + length > len(data):
            raise WireError("truncated label")
        try:
            labels.append(data[cursor : cursor + length].decode("ascii"))
        except UnicodeDecodeError as exc:
            raise WireError("non-ascii bytes in label") from exc
        cursor += length
    if end is None:
        end = cursor
    try:
        return Name(labels), end
    except NameError_ as exc:
        raise WireError(str(exc)) from exc


def _decode_rdata(
    data: bytes, rdata_start: int, rdlength: int, rtype: RRType
) -> Rdata:
    """Decode rdata, following message-context pointers for the types
    that may carry compressed names."""
    rdata_end = rdata_start + rdlength
    if rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        target, offset = _decode_name_at(data, rdata_start)
        if offset != rdata_end:
            raise WireError(f"trailing bytes in {rtype.name} rdata")
        return rdata_class_for(rtype)(target)  # type: ignore[call-arg]
    if rtype is RRType.MX:
        if rdlength < 3:
            raise WireError("truncated MX rdata")
        (preference,) = struct.unpack_from("!H", data, rdata_start)
        exchange, offset = _decode_name_at(data, rdata_start + 2)
        if offset != rdata_end:
            raise WireError("trailing bytes in MX rdata")
        return MX(preference, exchange)
    if rtype is RRType.SOA:
        mname, offset = _decode_name_at(data, rdata_start)
        rname, offset = _decode_name_at(data, offset)
        if rdata_end - offset != 20:
            raise WireError("SOA fixed fields must be 20 octets")
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            "!IIIII", data, offset
        )
        return SOA(mname, rname, serial, refresh, retry, expire, minimum)
    try:
        return rdata_class_for(rtype).from_wire(data[rdata_start:rdata_end])
    except WireError:
        raise
    except ValueError as exc:
        # RdataError, enum lookups inside type bitmaps, unicode and
        # address parsing all surface as ValueError subclasses; attacker
        # bytes must map to WireError, nothing rawer.
        raise WireError(f"bad rdata for {rtype.name}: {exc}") from exc


_RawRecord = Tuple[Name, RRType, RRClass, int, Rdata]


def _decode_record(data: bytes, offset: int) -> Tuple[_RawRecord, int]:
    name, offset = _decode_name_at(data, offset)
    if offset + 10 > len(data):
        raise WireError("truncated record header")
    rtype_value, rclass_value, ttl, rdlength = struct.unpack_from(
        "!HHIH", data, offset
    )
    offset += 10
    if offset + rdlength > len(data):
        raise WireError("truncated rdata")
    try:
        rtype = RRType.from_value(rtype_value)
        rclass = RRClass(rclass_value)
    except ValueError as exc:
        raise WireError(str(exc)) from exc
    rdata = _decode_rdata(data, offset, rdlength, rtype)
    return (name, rtype, rclass, ttl, rdata), offset + rdlength


def decode_message(data: bytes) -> Message:
    """Parse wire bytes (compressed or not) into a Message."""
    if len(data) < Message.HEADER_SIZE:
        raise WireError("message shorter than header")
    (
        message_id,
        flags_word,
        question_count,
        answer_count,
        authority_count,
        additional_count,
    ) = struct.unpack_from("!HHHHHH", data, 0)
    offset = Message.HEADER_SIZE
    if question_count > 1:
        raise WireError("multi-question messages are not supported")
    question = None
    if question_count == 1:
        qname, offset = _decode_name_at(data, offset)
        if offset + 4 > len(data):
            raise WireError("truncated question")
        qtype_value, qclass_value = struct.unpack_from("!HH", data, offset)
        offset += 4
        try:
            question = Question(
                qname, RRType.from_value(qtype_value), RRClass(qclass_value)
            )
        except ValueError as exc:
            raise WireError(str(exc)) from exc

    answer, offset = _decode_section(data, offset, answer_count)
    authority, offset = _decode_section(data, offset, authority_count)
    additional_raw, offset, edns = _decode_additional(data, offset, additional_count)
    if offset != len(data):
        raise WireError("trailing bytes after message")
    try:
        flags = HeaderFlags.from_wire(flags_word)
    except ValueError as exc:
        raise WireError(str(exc)) from exc
    return Message(
        message_id=message_id,
        flags=flags,
        question=question,
        answer=_group(answer),
        authority=_group(authority),
        additional=_group(additional_raw),
        edns=edns,
    )


def _decode_section(
    data: bytes, offset: int, count: int
) -> Tuple[List[_RawRecord], int]:
    records: List[_RawRecord] = []
    for _ in range(count):
        record, offset = _decode_record(data, offset)
        records.append(record)
    return records, offset


def _decode_additional(data: bytes, offset: int, count: int):
    """Decode the additional section, separating out the OPT record."""
    records: List[_RawRecord] = []
    edns = None
    for _ in range(count):
        # Peek: an OPT record has the root owner name and type 41.
        name, after_name = _decode_name_at(data, offset)
        if after_name + 10 <= len(data):
            rtype_value, rclass_value, ttl, rdlength = struct.unpack_from(
                "!HHIH", data, after_name
            )
            if rtype_value == _OPT_TYPE:
                if not name.is_root():
                    raise WireError("OPT record owner must be the root")
                if after_name + 10 + rdlength > len(data):
                    raise WireError("truncated OPT record")
                offset = after_name + 10 + rdlength
                edns = Edns.from_ttl_field(rclass_value, ttl)
                continue
        record, offset = _decode_record(data, offset)
        records.append(record)
    return records, offset, edns


def _group(records: List[_RawRecord]) -> Tuple[RRset, ...]:
    """Re-group flat records into RRsets preserving first-seen order."""
    grouped = {}
    order = []
    for name, rtype, rclass, ttl, rdata in records:
        key = (name, rtype, rclass)
        if key not in grouped:
            grouped[key] = (ttl, [])
            order.append(key)
        grouped[key][1].append(rdata)
    rrsets = []
    for key in order:
        name, rtype, rclass = key
        ttl, rdatas = grouped[key]
        rrsets.append(RRset(name, rtype, ttl, tuple(rdatas), rclass))
    return tuple(rrsets)
