"""Resource-record data (RDATA) types with RFC-faithful wire encodings.

Every rdata class implements ``to_wire`` / ``from_wire`` so that message
sizes measured by the network simulator reflect real DNS payloads, and a
stable canonical form used as signing input by the DNSSEC signer.

The DLV record (RFC 4431) has exactly the DS wire format, so it is
modelled as a subclass of :class:`DS`.
"""

from __future__ import annotations

import dataclasses
import ipaddress
import struct
from typing import ClassVar, Dict, FrozenSet, Iterable, List, Tuple, Type

from .. import perf
from .constants import Algorithm, DigestType, RRType
from .names import Name


class RdataError(ValueError):
    """Raised for malformed rdata."""


def _encode_name(name: Name) -> bytes:
    out = bytearray()
    for label in name.labels:
        raw = label.encode("ascii")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def _decode_name(data: bytes, offset: int) -> Tuple[Name, int]:
    labels: List[str] = []
    while True:
        if offset >= len(data):
            raise RdataError("truncated name")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length > 63:
            raise RdataError("label length exceeds 63 (compression unsupported)")
        if offset + length > len(data):
            raise RdataError("truncated label")
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return Name(labels), offset


def encode_type_bitmap(types: Iterable[RRType]) -> bytes:
    """Encode an NSEC/NSEC3 type bitmap (RFC 4034 section 4.1.2)."""
    windows: Dict[int, bytearray] = {}
    for rtype in sorted(int(t) for t in types):
        window, low = divmod(rtype, 256)
        bitmap = windows.setdefault(window, bytearray(32))
        bitmap[low // 8] |= 0x80 >> (low % 8)
    out = bytearray()
    for window in sorted(windows):
        bitmap = windows[window]
        length = 32
        while length > 0 and bitmap[length - 1] == 0:
            length -= 1
        if length == 0:
            continue
        out.append(window)
        out.append(length)
        out.extend(bitmap[:length])
    return bytes(out)


def decode_type_bitmap(data: bytes) -> FrozenSet[RRType]:
    types: List[RRType] = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise RdataError("truncated type bitmap header")
        window = data[offset]
        length = data[offset + 1]
        offset += 2
        if length == 0 or length > 32 or offset + length > len(data):
            raise RdataError("malformed type bitmap window")
        for index in range(length):
            octet = data[offset + index]
            for bit in range(8):
                if octet & (0x80 >> bit):
                    value = window * 256 + index * 8 + bit
                    types.append(RRType.from_value(value))
        offset += length
    return frozenset(types)


class Rdata:
    """Base class for all rdata types."""

    rtype: ClassVar[RRType]

    def to_wire(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, data: bytes) -> "Rdata":
        raise NotImplementedError

    def cached_wire(self) -> bytes:
        """``to_wire()``, memoized per instance while the hot-path
        caches are on.  All rdata classes are frozen dataclasses, so the
        encoding never changes after construction; the cache lives in
        the instance dict, invisible to dataclass eq/hash/repr."""
        if not perf.ENABLED:
            return self.to_wire()
        wire = self.__dict__.get("_wire_cache")
        if wire is None:
            wire = self.to_wire()
            object.__setattr__(self, "_wire_cache", wire)
        return wire

    def canonical_form(self) -> bytes:
        """Byte string used as signing input; wire form by default."""
        return self.cached_wire()


#: Address strings already validated by A/AAAA ``__post_init__`` —
#: universes rebuild records for the same few hundred server addresses
#: over and over, and :mod:`ipaddress` parsing is the dominant cost of
#: constructing them.  Keyed by family so an IPv6 literal can never
#: satisfy IPv4 validation.  Only *valid* addresses are remembered, so a
#: hit can never let a malformed address through.
_VALIDATED_ADDRESSES: set = set()
_VALIDATED_ADDRESSES_CAP = 8192

perf.register_cache(
    "dnscore.address_validation",
    _VALIDATED_ADDRESSES.clear,
    lambda: {"size": len(_VALIDATED_ADDRESSES)},
)


def _check_address(family: str, address: str, parser) -> None:
    if perf.ENABLED and (family, address) in _VALIDATED_ADDRESSES:
        return
    parser(address)
    if perf.ENABLED and len(_VALIDATED_ADDRESSES) < _VALIDATED_ADDRESSES_CAP:
        _VALIDATED_ADDRESSES.add((family, address))


_REGISTRY: Dict[RRType, Type[Rdata]] = {}


def _register(cls: Type[Rdata]) -> Type[Rdata]:
    _REGISTRY[cls.rtype] = cls
    return cls


def rdata_class_for(rtype: RRType) -> Type[Rdata]:
    try:
        return _REGISTRY[rtype]
    except KeyError as exc:
        raise RdataError(f"no rdata class registered for {rtype!r}") from exc


@_register
@dataclasses.dataclass(frozen=True)
class A(Rdata):
    """IPv4 address record."""

    rtype: ClassVar[RRType] = RRType.A
    address: str

    def __post_init__(self) -> None:
        _check_address("v4", self.address, ipaddress.IPv4Address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "A":
        if len(data) != 4:
            raise RdataError("A rdata must be 4 octets")
        return cls(str(ipaddress.IPv4Address(data)))


@_register
@dataclasses.dataclass(frozen=True)
class AAAA(Rdata):
    """IPv6 address record."""

    rtype: ClassVar[RRType] = RRType.AAAA
    address: str

    def __post_init__(self) -> None:
        _check_address("v6", self.address, ipaddress.IPv6Address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "AAAA":
        if len(data) != 16:
            raise RdataError("AAAA rdata must be 16 octets")
        return cls(str(ipaddress.IPv6Address(data)))


@_register
@dataclasses.dataclass(frozen=True)
class NS(Rdata):
    """Name server record."""

    rtype: ClassVar[RRType] = RRType.NS
    target: Name

    def to_wire(self) -> bytes:
        return _encode_name(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "NS":
        target, offset = _decode_name(data, 0)
        if offset != len(data):
            raise RdataError("trailing bytes in NS rdata")
        return cls(target)


@_register
@dataclasses.dataclass(frozen=True)
class CNAME(Rdata):
    """Canonical-name alias record."""

    rtype: ClassVar[RRType] = RRType.CNAME
    target: Name

    def to_wire(self) -> bytes:
        return _encode_name(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "CNAME":
        target, offset = _decode_name(data, 0)
        if offset != len(data):
            raise RdataError("trailing bytes in CNAME rdata")
        return cls(target)


@_register
@dataclasses.dataclass(frozen=True)
class PTR(Rdata):
    """Reverse-lookup pointer record."""

    rtype: ClassVar[RRType] = RRType.PTR
    target: Name

    def to_wire(self) -> bytes:
        return _encode_name(self.target)

    @classmethod
    def from_wire(cls, data: bytes) -> "PTR":
        target, offset = _decode_name(data, 0)
        if offset != len(data):
            raise RdataError("trailing bytes in PTR rdata")
        return cls(target)


@_register
@dataclasses.dataclass(frozen=True)
class MX(Rdata):
    """Mail exchanger record."""

    rtype: ClassVar[RRType] = RRType.MX
    preference: int
    exchange: Name

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + _encode_name(self.exchange)

    @classmethod
    def from_wire(cls, data: bytes) -> "MX":
        if len(data) < 3:
            raise RdataError("truncated MX rdata")
        (preference,) = struct.unpack("!H", data[:2])
        exchange, offset = _decode_name(data, 2)
        if offset != len(data):
            raise RdataError("trailing bytes in MX rdata")
        return cls(preference, exchange)


@_register
@dataclasses.dataclass(frozen=True)
class SOA(Rdata):
    """Start-of-authority record."""

    rtype: ClassVar[RRType] = RRType.SOA
    mname: Name
    rname: Name
    serial: int
    refresh: int = 7200
    retry: int = 3600
    expire: int = 1209600
    minimum: int = 3600

    def to_wire(self) -> bytes:
        return (
            _encode_name(self.mname)
            + _encode_name(self.rname)
            + struct.pack(
                "!IIIII",
                self.serial,
                self.refresh,
                self.retry,
                self.expire,
                self.minimum,
            )
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "SOA":
        mname, offset = _decode_name(data, 0)
        rname, offset = _decode_name(data, offset)
        if len(data) - offset != 20:
            raise RdataError("SOA fixed fields must be 20 octets")
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", data[offset:]
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@_register
@dataclasses.dataclass(frozen=True)
class TXT(Rdata):
    """Text record.

    The paper's first remedy rides on TXT: a registrant publishes
    ``dlv=1`` (or ``dlv=0``) to tell resolvers whether a DLV record was
    deposited for the zone (Section 6.2.1, "Using TXT Record").
    """

    rtype: ClassVar[RRType] = RRType.TXT
    strings: Tuple[str, ...]

    def __post_init__(self) -> None:
        for string in self.strings:
            if len(string.encode("ascii")) > 255:
                raise RdataError("TXT character-string exceeds 255 octets")

    def to_wire(self) -> bytes:
        out = bytearray()
        for string in self.strings:
            raw = string.encode("ascii")
            out.append(len(raw))
            out.extend(raw)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes) -> "TXT":
        strings: List[str] = []
        offset = 0
        while offset < len(data):
            length = data[offset]
            offset += 1
            if offset + length > len(data):
                raise RdataError("truncated TXT character-string")
            strings.append(data[offset : offset + length].decode("ascii"))
            offset += length
        return cls(tuple(strings))

    def dlv_signal(self) -> "int | None":
        """Parse the paper's ``dlv=0/1`` signalling convention.

        Returns 1, 0, or ``None`` when no ``dlv=`` string is present.
        """
        for string in self.strings:
            if string.lower().startswith("dlv="):
                value = string[4:]
                if value in ("0", "1"):
                    return int(value)
        return None


@_register
@dataclasses.dataclass(frozen=True)
class DS(Rdata):
    """Delegation signer record (RFC 4034 section 5)."""

    rtype: ClassVar[RRType] = RRType.DS
    key_tag: int
    algorithm: Algorithm
    digest_type: DigestType
    digest: bytes

    def to_wire(self) -> bytes:
        return (
            struct.pack("!HBB", self.key_tag, int(self.algorithm), int(self.digest_type))
            + self.digest
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "DS":
        if len(data) < 4:
            raise RdataError("truncated DS rdata")
        key_tag, algorithm, digest_type = struct.unpack("!HBB", data[:4])
        return cls(key_tag, Algorithm(algorithm), DigestType(digest_type), data[4:])


@_register
@dataclasses.dataclass(frozen=True)
class DLV(DS):
    """DNSSEC Look-aside Validation record (RFC 4431).

    Wire-identical to DS; only the type code differs.  A zone owner
    deposits these in a DLV registry to delegate a trust anchor outside
    the normal DNS delegation chain.
    """

    rtype: ClassVar[RRType] = RRType.DLV

    @classmethod
    def from_ds(cls, ds: DS) -> "DLV":
        return cls(ds.key_tag, ds.algorithm, ds.digest_type, ds.digest)

    @classmethod
    def from_wire(cls, data: bytes) -> "DLV":
        ds = DS.from_wire(data)
        return cls.from_ds(ds)


@_register
@dataclasses.dataclass(frozen=True)
class DNSKEY(Rdata):
    """DNS public key record (RFC 4034 section 2).

    ``flags`` bit 7 (value 256) marks a zone key; bit 15 (value 1,
    combined: 257) marks the secure entry point / key-signing key.
    """

    rtype: ClassVar[RRType] = RRType.DNSKEY
    flags: int
    protocol: int
    algorithm: Algorithm
    public_key: bytes

    ZONE_KEY_FLAGS: ClassVar[int] = 256
    KSK_FLAGS: ClassVar[int] = 257

    def to_wire(self) -> bytes:
        return (
            struct.pack("!HBB", self.flags, self.protocol, int(self.algorithm))
            + self.public_key
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "DNSKEY":
        if len(data) < 4:
            raise RdataError("truncated DNSKEY rdata")
        flags, protocol, algorithm = struct.unpack("!HBB", data[:4])
        return cls(flags, protocol, Algorithm(algorithm), data[4:])

    def is_ksk(self) -> bool:
        return self.flags & 1 == 1

    def key_tag(self) -> int:
        """RFC 4034 appendix B key-tag computation."""
        if perf.ENABLED:
            cached = self.__dict__.get("_key_tag_cache")
            if cached is not None:
                return cached
        wire = self.to_wire()
        accumulator = 0
        for index, octet in enumerate(wire):
            if index % 2 == 0:
                accumulator += octet << 8
            else:
                accumulator += octet
        accumulator += (accumulator >> 16) & 0xFFFF
        tag = accumulator & 0xFFFF
        if perf.ENABLED:
            object.__setattr__(self, "_key_tag_cache", tag)
        return tag


@_register
@dataclasses.dataclass(frozen=True)
class RRSIG(Rdata):
    """Resource record signature (RFC 4034 section 3)."""

    rtype: ClassVar[RRType] = RRType.RRSIG
    type_covered: RRType
    algorithm: Algorithm
    labels: int
    original_ttl: int
    expiration: int
    inception: int
    key_tag: int
    signer: Name
    signature: bytes

    def to_wire(self) -> bytes:
        return (
            struct.pack(
                "!HBBIIIH",
                int(self.type_covered),
                int(self.algorithm),
                self.labels,
                self.original_ttl,
                self.expiration,
                self.inception,
                self.key_tag,
            )
            + _encode_name(self.signer)
            + self.signature
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "RRSIG":
        if len(data) < 18:
            raise RdataError("truncated RRSIG rdata")
        (
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
        ) = struct.unpack("!HBBIIIH", data[:18])
        signer, offset = _decode_name(data, 18)
        return cls(
            RRType.from_value(type_covered),
            Algorithm(algorithm),
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            data[offset:],
        )

    def signed_fields_wire(self) -> bytes:
        """The RRSIG RDATA with the signature field excluded — the prefix
        of the signing input (RFC 4034 section 3.1.8.1)."""
        return (
            struct.pack(
                "!HBBIIIH",
                int(self.type_covered),
                int(self.algorithm),
                self.labels,
                self.original_ttl,
                self.expiration,
                self.inception,
                self.key_tag,
            )
            + _encode_name(self.signer)
        )


@_register
@dataclasses.dataclass(frozen=True)
class NSEC(Rdata):
    """Next-secure record (RFC 4034 section 4).

    NSEC is what makes the paper's "aggressive negative caching"
    observation work: a single validated NSEC proves the non-existence of
    every name in canonical order between its owner and ``next_name``,
    letting the resolver suppress future DLV queries in that span.
    """

    rtype: ClassVar[RRType] = RRType.NSEC
    next_name: Name
    types: FrozenSet[RRType]

    def to_wire(self) -> bytes:
        return _encode_name(self.next_name) + encode_type_bitmap(self.types)

    @classmethod
    def from_wire(cls, data: bytes) -> "NSEC":
        next_name, offset = _decode_name(data, 0)
        return cls(next_name, decode_type_bitmap(data[offset:]))


@_register
@dataclasses.dataclass(frozen=True)
class NSEC3(Rdata):
    """Hashed next-secure record (RFC 5155).

    The paper notes (Section 7.3) that NSEC3 defeats aggressive negative
    caching, so a DLV registry using NSEC3 would leak *every* query.
    """

    rtype: ClassVar[RRType] = RRType.NSEC3
    hash_algorithm: int
    flags: int
    iterations: int
    salt: bytes
    next_hashed: bytes
    types: FrozenSet[RRType]

    def to_wire(self) -> bytes:
        return (
            struct.pack("!BBH", self.hash_algorithm, self.flags, self.iterations)
            + bytes([len(self.salt)])
            + self.salt
            + bytes([len(self.next_hashed)])
            + self.next_hashed
            + encode_type_bitmap(self.types)
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "NSEC3":
        if len(data) < 5:
            raise RdataError("truncated NSEC3 rdata")
        hash_algorithm, flags, iterations = struct.unpack("!BBH", data[:4])
        offset = 4
        salt_length = data[offset]
        offset += 1
        salt = data[offset : offset + salt_length]
        offset += salt_length
        hash_length = data[offset]
        offset += 1
        next_hashed = data[offset : offset + hash_length]
        offset += hash_length
        return cls(
            hash_algorithm,
            flags,
            iterations,
            salt,
            next_hashed,
            decode_type_bitmap(data[offset:]),
        )


@_register
@dataclasses.dataclass(frozen=True)
class NSEC3PARAM(Rdata):
    """NSEC3 parameters advertised at the zone apex (RFC 5155 section 4)."""

    rtype: ClassVar[RRType] = RRType.NSEC3PARAM
    hash_algorithm: int
    flags: int
    iterations: int
    salt: bytes

    def to_wire(self) -> bytes:
        return (
            struct.pack("!BBH", self.hash_algorithm, self.flags, self.iterations)
            + bytes([len(self.salt)])
            + self.salt
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "NSEC3PARAM":
        if len(data) < 5:
            raise RdataError("truncated NSEC3PARAM rdata")
        hash_algorithm, flags, iterations = struct.unpack("!BBH", data[:4])
        salt_length = data[4]
        salt = data[5 : 5 + salt_length]
        if len(salt) != salt_length:
            raise RdataError("truncated NSEC3PARAM salt")
        return cls(hash_algorithm, flags, iterations, salt)
