"""DNS header flags and the EDNS0 pseudo-record.

The header layout (RFC 1035 section 4.1.1, RFC 2535 for AD/CD)::

      0  1  2  3  4  5  6  7  8  9  0  1  2  3  4  5
    +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+
    |QR|   Opcode  |AA|TC|RD|RA| Z|AD|CD|   RCODE   |
    +--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+--+

The single remaining reserved bit ``Z`` is the one the paper proposes to
repurpose for DLV signalling (Section 6.2.1, "Using Z Bit").
"""

from __future__ import annotations

import dataclasses

from .constants import Opcode, RCode

# Bit masks within the 16-bit flags word.
QR = 0x8000
AA = 0x0400
TC = 0x0200
RD = 0x0100
RA = 0x0080
Z = 0x0040
AD = 0x0020
CD = 0x0010

_OPCODE_SHIFT = 11
_OPCODE_MASK = 0x7800
_RCODE_MASK = 0x000F

#: EDNS0 flag: DNSSEC OK (RFC 3225), carried in the OPT record TTL field.
EDNS_DO = 0x8000


@dataclasses.dataclass(frozen=True)
class HeaderFlags:
    """Decoded header flags.

    ``z`` is the reserved bit repurposed by the paper's second DLV-aware
    signalling remedy: an authoritative server sets it in responses for
    zones that have a DLV record deposited.
    """

    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = False
    ra: bool = False
    z: bool = False
    ad: bool = False
    cd: bool = False
    rcode: RCode = RCode.NOERROR

    def to_wire(self) -> int:
        word = (int(self.opcode) << _OPCODE_SHIFT) & _OPCODE_MASK
        word |= int(self.rcode) & _RCODE_MASK
        for flag, mask in (
            (self.qr, QR),
            (self.aa, AA),
            (self.tc, TC),
            (self.rd, RD),
            (self.ra, RA),
            (self.z, Z),
            (self.ad, AD),
            (self.cd, CD),
        ):
            if flag:
                word |= mask
        return word

    @classmethod
    def from_wire(cls, word: int) -> "HeaderFlags":
        return cls(
            qr=bool(word & QR),
            opcode=Opcode((word & _OPCODE_MASK) >> _OPCODE_SHIFT),
            aa=bool(word & AA),
            tc=bool(word & TC),
            rd=bool(word & RD),
            ra=bool(word & RA),
            z=bool(word & Z),
            ad=bool(word & AD),
            cd=bool(word & CD),
            rcode=RCode(word & _RCODE_MASK),
        )

    def replace(self, **changes) -> "HeaderFlags":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class Edns:
    """EDNS0 OPT pseudo-record state (RFC 6891).

    Only the pieces the experiments need: the advertised UDP payload size
    and the DO ("DNSSEC OK", RFC 3225) bit that security-aware resolvers
    set on their queries.
    """

    udp_payload_size: int = 4096
    dnssec_ok: bool = False

    #: Wire size of an OPT RR with empty RDATA: root owner name (1) +
    #: type (2) + class (2) + ttl (4) + rdlength (2).
    WIRE_SIZE = 11

    def ttl_field(self) -> int:
        return EDNS_DO if self.dnssec_ok else 0

    @classmethod
    def from_ttl_field(cls, udp_payload_size: int, ttl: int) -> "Edns":
        return cls(udp_payload_size=udp_payload_size, dnssec_ok=bool(ttl & EDNS_DO))
