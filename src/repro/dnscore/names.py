"""Domain names: parsing, relations, and DNSSEC canonical ordering.

A :class:`Name` is an immutable sequence of labels in wire order (left to
right, most specific label first).  The root name has zero labels.  Labels are
stored lowercase because DNS names compare case-insensitively (RFC 1035
section 2.3.3) and DNSSEC canonical form lowercases names (RFC 4034
section 6.2).
"""

from __future__ import annotations

import functools
import weakref
from typing import Iterable, Iterator, Optional, Tuple

from .. import perf

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Raised for malformed domain names."""


@functools.total_ordering
class Name:
    """An absolute domain name.

    Instances are immutable, hashable, and ordered by DNSSEC canonical
    ordering (RFC 4034 section 6.1): names sort by their labels compared
    right to left, with shorter names (ancestors) sorting first.

    While the hot-path caches are enabled (:mod:`repro.perf`), names are
    *interned*: constructing a name whose normalized labels match a live
    instance returns that instance, so equality in cache and validator
    dicts short-circuits on identity.  Interning only dedupes objects —
    values, hashes, and ordering are identical either way.
    """

    __slots__ = (
        "_labels",
        "_hash",
        "_wire_length",
        "_canonical_key",
        "_ancestors",
        "__weakref__",
    )

    _interned: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, labels: Iterable[str] = ()):
        normalized = tuple(label.lower() for label in labels)
        if perf.ENABLED:
            cached = cls._interned.get(normalized)
            if cached is not None:
                return cached
        for label in normalized:
            if not label:
                raise NameError_("empty label in name")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {label!r}")
        wire_length = sum(len(label) + 1 for label in normalized) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_("name exceeds 255 wire octets")
        self = object.__new__(cls)
        self._labels = normalized
        self._hash = hash(normalized)
        self._wire_length = wire_length
        self._canonical_key: Optional[Tuple[bytes, ...]] = None
        self._ancestors: Optional[Tuple["Name", ...]] = None
        if perf.ENABLED:
            cls._interned[normalized] = self
        return self

    def __init__(self, labels: Iterable[str] = ()):
        # All construction happens in __new__ so interned hits skip
        # re-validation entirely.
        pass

    def __reduce__(self):
        # Re-enter __new__ on unpickle so names from fork workers
        # re-intern instead of carrying duplicate instances.
        return (Name, (self._labels,))

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a dotted name.  A trailing dot is optional; ``.`` and the
        empty string both denote the root."""
        text = text.strip()
        if text in (".", ""):
            return ROOT
        if text.endswith("."):
            text = text[:-1]
        labels = text.split(".")
        return cls(labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        return self._labels

    @property
    def label_count(self) -> int:
        return len(self._labels)

    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels) + "."

    def wire_length(self) -> int:
        """Length of this name in uncompressed wire form."""
        return self._wire_length

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def parent(self) -> "Name":
        """The name with the leading (leftmost) label removed.

        Raises :class:`NameError_` for the root, which has no parent.
        """
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def strip_left(self, count: int = 1) -> "Name":
        """Remove ``count`` leading labels (used by DLV label stripping)."""
        if count > len(self._labels):
            raise NameError_("cannot strip more labels than the name has")
        return Name(self._labels[count:])

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if *self* is *other* or lies below it in the tree."""
        offset = len(self._labels) - len(other._labels)
        if offset < 0:
            return False
        return self._labels[offset:] == other._labels

    def relativize(self, origin: "Name") -> Tuple[str, ...]:
        """Labels of *self* below *origin*.  ``()`` if self == origin."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self.to_text()} is not under {origin.to_text()}")
        keep = len(self._labels) - len(origin._labels)
        return self._labels[:keep]

    def concatenate(self, suffix: "Name") -> "Name":
        """Return ``self.labels + suffix.labels`` as one name."""
        return Name(self._labels + suffix._labels)

    def prepend(self, *labels: str) -> "Name":
        """Return a new name with labels added on the left."""
        return Name(tuple(labels) + self._labels)

    def ancestors(self) -> Iterator["Name"]:
        """Yield self, then each ancestor up to and including the root."""
        chain = self._ancestors
        if chain is None:
            chain = tuple(
                Name(self._labels[start:])
                for start in range(len(self._labels) + 1)
            )
            if perf.ENABLED:
                self._ancestors = chain
        return iter(chain)

    def common_ancestor(self, other: "Name") -> "Name":
        """Deepest name that is an ancestor of both self and other."""
        mine = tuple(reversed(self._labels))
        theirs = tuple(reversed(other._labels))
        shared = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            shared += 1
        if shared == 0:
            return ROOT
        return Name(tuple(reversed(mine[:shared])))

    # ------------------------------------------------------------------
    # Ordering (RFC 4034 section 6.1 canonical ordering)
    # ------------------------------------------------------------------

    def canonical_key(self) -> Tuple[bytes, ...]:
        """Sort key implementing DNSSEC canonical name order."""
        key = self._canonical_key
        if key is None:
            key = tuple(
                label.encode("ascii") for label in reversed(self._labels)
            )
            if perf.ENABLED:
                self._canonical_key = key
        return key

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self.canonical_key() < other.canonical_key()

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Name):
            return NotImplemented
        return self._hash == other._hash and self._labels == other._labels

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    def __len__(self) -> int:
        return len(self._labels)


#: The root of the DNS namespace.
ROOT = Name(())

perf.register_cache(
    "dnscore.name_intern",
    Name._interned.clear,
    lambda: {"size": len(Name._interned)},
)


def name_between(name: Name, lower: Name, upper: Name) -> bool:
    """True if *name* falls strictly between *lower* and *upper* in
    canonical order, treating the interval as circular at the zone apex
    (RFC 4034 section 6.1 / NSEC semantics).

    When ``lower == upper`` the single NSEC record covers the whole zone
    and everything except the owner itself is "between".
    """
    if lower == upper:
        return name != lower
    if lower < upper:
        return lower < name < upper
    # Wrapped interval: the NSEC from the last name back to the apex.
    return name > lower or name < upper


def canonical_sort(names: Iterable[Name]) -> list:
    """Sort names into DNSSEC canonical order."""
    return sorted(names, key=Name.canonical_key)
