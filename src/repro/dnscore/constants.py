"""Protocol constants: record types, classes, rcodes, opcodes.

Values follow the IANA DNS parameter registries.  ``RRType.DLV`` is the
DNSSEC Look-aside Validation type from RFC 4431 (the paper quotes the
value 32769 used on the wire).
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record types used by the simulator."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    NSEC3 = 50
    NSEC3PARAM = 51
    DLV = 32769

    @classmethod
    def from_value(cls, value: int) -> "RRType":
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(f"unsupported RR type {value}") from exc


class RRClass(enum.IntEnum):
    """Resource record classes (only IN is used in practice)."""

    IN = 1
    CH = 3
    ANY = 255


class RCode(enum.IntEnum):
    """Response codes (RFC 1035 section 4.1.1, RFC 2136)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    def describe(self) -> str:
        """The human-readable phrasing the paper uses for DLV responses."""
        if self is RCode.NOERROR:
            return "No error"
        if self is RCode.NXDOMAIN:
            return "No such name"
        return self.name


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


#: DNSSEC algorithm numbers (RFC 4034 appendix A.1).  We implement a
#: textbook RSA/SHA-256 pair and register it under the real RSASHA256
#: code point so DS/RRSIG records carry realistic field values.
class Algorithm(enum.IntEnum):
    RSASHA256 = 8


class DigestType(enum.IntEnum):
    """DS record digest types (RFC 4034 appendix A.2 / RFC 4509)."""

    SHA1 = 1
    SHA256 = 2
