"""DNS messages: header, question, and the three record sections."""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple

from .. import perf
from .constants import RCode, RRClass, RRType
from .flags import Edns, HeaderFlags
from .names import Name
from .rrset import RRset


@dataclasses.dataclass(frozen=True)
class Question:
    """The question section entry of a query or response."""

    name: Name
    rtype: RRType
    rclass: RRClass = RRClass.IN

    def wire_size(self) -> int:
        return self.name.wire_length() + 4

    def __repr__(self) -> str:
        return f"Question({self.name.to_text()} {self.rtype.name})"


@dataclasses.dataclass(frozen=True)
class Message:
    """A DNS message.

    Sections hold :class:`RRset` objects rather than individual records;
    the wire codec flattens them.  ``edns`` carries the OPT pseudo-record
    (None means no EDNS0, as in pre-DNSSEC queries).
    """

    message_id: int
    flags: HeaderFlags
    question: Optional[Question]
    answer: Tuple[RRset, ...] = ()
    authority: Tuple[RRset, ...] = ()
    additional: Tuple[RRset, ...] = ()
    edns: Optional[Edns] = None

    HEADER_SIZE = 12

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def make_query(
        cls,
        message_id: int,
        name: Name,
        rtype: RRType,
        recursion_desired: bool = True,
        dnssec_ok: bool = False,
        checking_disabled: bool = False,
    ) -> "Message":
        flags = HeaderFlags(rd=recursion_desired, cd=checking_disabled)
        edns = Edns(dnssec_ok=True) if dnssec_ok else None
        return cls(
            message_id=message_id,
            flags=flags,
            question=Question(name, rtype),
            edns=edns,
        )

    def make_response(
        self,
        rcode: RCode = RCode.NOERROR,
        answer: Tuple[RRset, ...] = (),
        authority: Tuple[RRset, ...] = (),
        additional: Tuple[RRset, ...] = (),
        authoritative: bool = False,
        authenticated_data: bool = False,
        z_bit: bool = False,
    ) -> "Message":
        """Build a response mirroring this query's id/question/EDNS."""
        flags = HeaderFlags(
            qr=True,
            aa=authoritative,
            rd=self.flags.rd,
            ra=True,
            ad=authenticated_data,
            cd=self.flags.cd,
            z=z_bit,
            rcode=rcode,
        )
        return Message(
            message_id=self.message_id,
            flags=flags,
            question=self.question,
            answer=answer,
            authority=authority,
            additional=additional,
            edns=self.edns,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def rcode(self) -> RCode:
        return self.flags.rcode

    def is_response(self) -> bool:
        return self.flags.qr

    def dnssec_ok(self) -> bool:
        return self.edns is not None and self.edns.dnssec_ok

    def all_rrsets(self) -> Iterator[RRset]:
        for section in (self.answer, self.authority, self.additional):
            yield from section

    def find_rrsets(self, rtype: RRType, section: Optional[str] = None):
        """All RRsets of a given type, optionally restricted to a section."""
        sections = {
            "answer": self.answer,
            "authority": self.authority,
            "additional": self.additional,
        }
        if section is None:
            pool: Iterator[RRset] = self.all_rrsets()
        else:
            pool = iter(sections[section])
        return [rrset for rrset in pool if rrset.rtype is rtype]

    def get_rrset(self, name: Name, rtype: RRType) -> Optional[RRset]:
        for rrset in self.all_rrsets():
            if rrset.name == name and rrset.rtype is rtype:
                return rrset
        return None

    def wire_size(self) -> int:
        """Size of this message in uncompressed wire form, without
        round-tripping through the codec.  Capture accounting asks for
        each message's size several times (per-observer traffic, the
        overhead report), so the sum is memoized on the instance —
        messages are frozen, the cache lives in the instance dict."""
        if perf.ENABLED:
            size = self.__dict__.get("_wire_size_cache")
            if size is not None:
                return size
        size = self.HEADER_SIZE
        if self.question is not None:
            size += self.question.wire_size()
        for rrset in self.all_rrsets():
            size += rrset.wire_size()
        if self.edns is not None:
            size += Edns.WIRE_SIZE
        if perf.ENABLED:
            object.__setattr__(self, "_wire_size_cache", size)
        return size

    def __repr__(self) -> str:
        kind = "response" if self.flags.qr else "query"
        return (
            f"Message({kind} id={self.message_id} q={self.question!r} "
            f"rcode={self.rcode.name} an={len(self.answer)} "
            f"au={len(self.authority)} ad={len(self.additional)})"
        )
