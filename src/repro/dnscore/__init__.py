"""DNS data model and wire format.

This package is the bottom layer of the simulator: domain names with
DNSSEC canonical ordering, resource-record data types (including the
DNSSEC family and the DLV type from RFC 4431), messages, header flags
(including the spare Z bit the paper repurposes), EDNS0 with the DO bit,
and an RFC 1035 wire codec used for byte-accurate traffic accounting.
"""

from .constants import Algorithm, DigestType, Opcode, RCode, RRClass, RRType
from .flags import Edns, HeaderFlags
from .message import Message, Question
from .names import ROOT, Name, NameError_, canonical_sort, name_between
from .rdata import (
    A,
    AAAA,
    CNAME,
    DLV,
    DNSKEY,
    DS,
    MX,
    NS,
    NSEC,
    NSEC3,
    NSEC3PARAM,
    PTR,
    RRSIG,
    SOA,
    TXT,
    Rdata,
    RdataError,
    decode_type_bitmap,
    encode_type_bitmap,
)
from .rrset import RRset
from .wire import WireError, decode_message, encode_message

__all__ = [
    "A",
    "AAAA",
    "Algorithm",
    "CNAME",
    "DigestType",
    "DLV",
    "DNSKEY",
    "DS",
    "Edns",
    "HeaderFlags",
    "Message",
    "MX",
    "Name",
    "NameError_",
    "NS",
    "NSEC",
    "NSEC3",
    "NSEC3PARAM",
    "Opcode",
    "PTR",
    "Question",
    "RCode",
    "ROOT",
    "RRClass",
    "RRset",
    "RRSIG",
    "RRType",
    "Rdata",
    "RdataError",
    "SOA",
    "TXT",
    "WireError",
    "canonical_sort",
    "decode_message",
    "decode_type_bitmap",
    "encode_message",
    "encode_type_bitmap",
    "name_between",
]
