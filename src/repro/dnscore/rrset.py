"""RRsets: a name/type/class group of records sharing a TTL.

DNSSEC signs whole RRsets, so the canonical signing input
(RFC 4034 section 3.1.8.1) is produced here.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Iterator, Tuple

from .constants import RRClass, RRType
from .names import Name
from .rdata import Rdata, _encode_name


@dataclasses.dataclass(frozen=True)
class RRset:
    """An immutable set of records with a common (name, type, class, TTL)."""

    name: Name
    rtype: RRType
    ttl: int
    rdatas: Tuple[Rdata, ...]
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if not self.rdatas:
            raise ValueError("an RRset must contain at least one rdata")
        for rdata in self.rdatas:
            if rdata.rtype is not self.rtype:
                raise ValueError(
                    f"rdata type {rdata.rtype!r} does not match RRset type "
                    f"{self.rtype!r}"
                )

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self.rdatas)

    def __len__(self) -> int:
        return len(self.rdatas)

    def first(self) -> Rdata:
        return self.rdatas[0]

    def with_ttl(self, ttl: int) -> "RRset":
        return dataclasses.replace(self, ttl=ttl)

    def wire_size(self) -> int:
        """Total uncompressed wire size of all records in the set."""
        per_record_overhead = self.name.wire_length() + 10  # type+class+ttl+rdlength
        return sum(per_record_overhead + len(r.to_wire()) for r in self.rdatas)

    def canonical_signing_input(self, original_ttl: int) -> bytes:
        """RR(i) section of the RFC 4034 signing input: each record in
        canonical form (owner lowercased, original TTL), sorted by rdata
        wire form."""
        owner = _encode_name(self.name)
        header = struct.pack("!HHI", int(self.rtype), int(self.rclass), original_ttl)
        pieces = []
        for rdata_wire in sorted(r.canonical_form() for r in self.rdatas):
            pieces.append(
                owner + header + struct.pack("!H", len(rdata_wire)) + rdata_wire
            )
        return b"".join(pieces)

    def __repr__(self) -> str:
        return (
            f"RRset({self.name.to_text()} {self.ttl} {self.rtype.name} "
            f"x{len(self.rdatas)})"
        )
