"""RRsets: a name/type/class group of records sharing a TTL.

DNSSEC signs whole RRsets, so the canonical signing input
(RFC 4034 section 3.1.8.1) is produced here.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Iterator, Tuple

from .. import perf
from .constants import RRClass, RRType
from .names import Name
from .rdata import Rdata, _encode_name


@dataclasses.dataclass(frozen=True)
class RRset:
    """An immutable set of records with a common (name, type, class, TTL)."""

    name: Name
    rtype: RRType
    ttl: int
    rdatas: Tuple[Rdata, ...]
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if not self.rdatas:
            raise ValueError("an RRset must contain at least one rdata")
        for rdata in self.rdatas:
            if rdata.rtype is not self.rtype:
                raise ValueError(
                    f"rdata type {rdata.rtype!r} does not match RRset type "
                    f"{self.rtype!r}"
                )

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self.rdatas)

    def __len__(self) -> int:
        return len(self.rdatas)

    def first(self) -> Rdata:
        return self.rdatas[0]

    def with_ttl(self, ttl: int) -> "RRset":
        return dataclasses.replace(self, ttl=ttl)

    def wire_size(self) -> int:
        """Total uncompressed wire size of all records in the set."""
        if perf.ENABLED:
            cached = self.__dict__.get("_wire_size_cache")
            if cached is not None:
                return cached
        per_record_overhead = self.name.wire_length() + 10  # type+class+ttl+rdlength
        size = sum(
            per_record_overhead + len(r.cached_wire()) for r in self.rdatas
        )
        if perf.ENABLED:
            object.__setattr__(self, "_wire_size_cache", size)
        return size

    def records_wire(self) -> bytes:
        """Uncompressed wire form of every record in the set, owner and
        header included — the bytes :func:`~repro.dnscore.wire.encode_message`
        emits for this set when compression is off, memoized so servers
        stop re-serializing immutable signed RRsets."""
        if perf.ENABLED:
            cached = self.__dict__.get("_records_wire_cache")
            if cached is not None:
                return cached
        owner = _encode_name(self.name)
        header = struct.pack("!HHI", int(self.rtype), int(self.rclass), self.ttl)
        pieces = []
        for rdata in self.rdatas:
            wire = rdata.cached_wire()
            pieces.append(
                owner + header + struct.pack("!H", len(wire)) + wire
            )
        encoded = b"".join(pieces)
        if perf.ENABLED:
            object.__setattr__(self, "_records_wire_cache", encoded)
        return encoded

    def canonical_signing_input(self, original_ttl: int) -> bytes:
        """RR(i) section of the RFC 4034 signing input: each record in
        canonical form (owner lowercased, original TTL), sorted by rdata
        wire form."""
        if perf.ENABLED:
            cached = self.__dict__.get("_signing_input_cache")
            if cached is not None and cached[0] == original_ttl:
                return cached[1]
        owner = _encode_name(self.name)
        header = struct.pack("!HHI", int(self.rtype), int(self.rclass), original_ttl)
        pieces = []
        for rdata_wire in sorted(r.canonical_form() for r in self.rdatas):
            pieces.append(
                owner + header + struct.pack("!H", len(rdata_wire)) + rdata_wire
            )
        encoded = b"".join(pieces)
        if perf.ENABLED:
            object.__setattr__(
                self, "_signing_input_cache", (original_ttl, encoded)
            )
        return encoded

    def __repr__(self) -> str:
        return (
            f"RRset({self.name.to_text()} {self.ttl} {self.rtype.name} "
            f"x{len(self.rdatas)})"
        )
