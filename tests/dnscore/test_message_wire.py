"""Tests for messages and the wire codec, including the size-accounting
equivalence the network simulator relies on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnscore import (
    A,
    DLV,
    Edns,
    HeaderFlags,
    Message,
    Name,
    NS,
    NSEC,
    Question,
    RCode,
    RRType,
    RRset,
    SOA,
    TXT,
    WireError,
    decode_message,
    encode_message,
)


def n(text):
    return Name.from_text(text)


def make_rrset(name="example.com", rtype=RRType.A, ttl=300):
    if rtype is RRType.A:
        rdatas = (A("192.0.2.10"), A("192.0.2.11"))
    elif rtype is RRType.NS:
        rdatas = (NS(n("ns1.example.com")),)
    else:
        raise AssertionError(rtype)
    return RRset(n(name), rtype, ttl, rdatas)


class TestHeaderFlags:
    def test_roundtrip_all_set(self):
        flags = HeaderFlags(
            qr=True, aa=True, tc=True, rd=True, ra=True, z=True, ad=True,
            cd=True, rcode=RCode.NXDOMAIN,
        )
        assert HeaderFlags.from_wire(flags.to_wire()) == flags

    def test_z_bit_is_independent(self):
        plain = HeaderFlags()
        with_z = plain.replace(z=True)
        assert plain.to_wire() ^ with_z.to_wire() == 0x0040

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_from_wire_total(self, word):
        # Mask to fields we model: opcode 0/4/5 and rcode 0-5 only.
        word &= ~0x7800
        word = (word & ~0x000F) | (word % 6)
        flags = HeaderFlags.from_wire(word)
        assert flags.to_wire() == word


class TestMessageConstruction:
    def test_make_query_sets_do_bit_via_edns(self):
        query = Message.make_query(1, n("example.com"), RRType.A, dnssec_ok=True)
        assert query.dnssec_ok()
        assert query.edns is not None

    def test_make_query_without_dnssec_has_no_edns(self):
        query = Message.make_query(1, n("example.com"), RRType.A)
        assert query.edns is None
        assert not query.dnssec_ok()

    def test_make_response_mirrors_query(self):
        query = Message.make_query(42, n("example.com"), RRType.A, dnssec_ok=True)
        response = query.make_response(
            rcode=RCode.NXDOMAIN, authoritative=True, z_bit=True
        )
        assert response.message_id == 42
        assert response.question == query.question
        assert response.flags.qr and response.flags.aa and response.flags.z
        assert response.rcode is RCode.NXDOMAIN
        assert response.edns == query.edns

    def test_find_rrsets_by_section(self):
        query = Message.make_query(1, n("example.com"), RRType.A)
        response = query.make_response(
            answer=(make_rrset(),),
            authority=(make_rrset(rtype=RRType.NS),),
        )
        assert len(response.find_rrsets(RRType.A)) == 1
        assert response.find_rrsets(RRType.A, section="authority") == []
        assert len(response.find_rrsets(RRType.NS, section="authority")) == 1

    def test_get_rrset(self):
        query = Message.make_query(1, n("example.com"), RRType.A)
        response = query.make_response(answer=(make_rrset(),))
        assert response.get_rrset(n("example.com"), RRType.A) is not None
        assert response.get_rrset(n("other.com"), RRType.A) is None


class TestWireCodec:
    def test_query_roundtrip(self):
        query = Message.make_query(7, n("www.example.com"), RRType.A, dnssec_ok=True)
        assert decode_message(encode_message(query)) == query

    def test_response_roundtrip_with_all_sections(self):
        query = Message.make_query(9, n("example.com"), RRType.A, dnssec_ok=True)
        soa = RRset(
            n("com"),
            RRType.SOA,
            900,
            (SOA(n("a.gtld-servers.net"), n("nstld.verisign-grs.com"), 1),),
        )
        nsec = RRset(
            n("example.com"),
            RRType.NSEC,
            900,
            (NSEC(n("examplf.com"), frozenset({RRType.NS, RRType.NSEC})),),
        )
        response = query.make_response(
            rcode=RCode.NXDOMAIN,
            answer=(),
            authority=(soa, nsec),
            additional=(make_rrset("ns1.example.com"),),
            authoritative=True,
        )
        assert decode_message(encode_message(response)) == response

    def test_dlv_query_roundtrip(self):
        query = Message.make_query(
            3, n("example.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        decoded = decode_message(encode_message(query))
        assert decoded.question.rtype is RRType.DLV

    def test_wire_size_matches_encoding_simple(self):
        query = Message.make_query(7, n("example.com"), RRType.A, dnssec_ok=True)
        assert query.wire_size() == len(encode_message(query))

    def test_truncated_rejected(self):
        query = Message.make_query(7, n("example.com"), RRType.A)
        wire = encode_message(query)
        with pytest.raises(WireError):
            decode_message(wire[:-3])

    def test_trailing_garbage_rejected(self):
        query = Message.make_query(7, n("example.com"), RRType.A)
        with pytest.raises(WireError):
            decode_message(encode_message(query) + b"\x00")

    def test_txt_dlv_signal_survives_wire(self):
        query = Message.make_query(5, n("example.com"), RRType.TXT)
        txt = RRset(n("example.com"), RRType.TXT, 300, (TXT(("dlv=1",)),))
        response = query.make_response(answer=(txt,))
        decoded = decode_message(encode_message(response))
        assert decoded.answer[0].first().dlv_signal() == 1


_LABEL = st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789"), min_size=1, max_size=8)
_NAMES = st.lists(_LABEL, min_size=0, max_size=4).map(Name)


@st.composite
def messages(draw):
    qname = draw(_NAMES)
    rtype = draw(st.sampled_from([RRType.A, RRType.TXT, RRType.DS, RRType.DLV, RRType.DNSKEY]))
    query = Message.make_query(
        draw(st.integers(0, 0xFFFF)),
        qname,
        rtype,
        dnssec_ok=draw(st.booleans()),
    )
    if draw(st.booleans()):
        return query
    answer = []
    if draw(st.booleans()):
        owner = draw(_NAMES)
        count = draw(st.integers(1, 3))
        answer.append(
            RRset(
                owner,
                RRType.A,
                draw(st.integers(0, 86400)),
                tuple(A(f"10.0.{i}.{draw(st.integers(0, 255))}") for i in range(count)),
            )
        )
    return query.make_response(
        rcode=draw(st.sampled_from([RCode.NOERROR, RCode.NXDOMAIN, RCode.SERVFAIL])),
        answer=tuple(answer),
        authoritative=draw(st.booleans()),
        z_bit=draw(st.booleans()),
    )


class TestWireProperties:
    @settings(max_examples=200)
    @given(messages())
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    @settings(max_examples=200)
    @given(messages())
    def test_wire_size_equals_encoded_length(self, message):
        """The network's fast-path size accounting must be byte-exact."""
        assert message.wire_size() == len(encode_message(message))
