"""Fuzz-style robustness tests for the wire codec.

A resolver parses attacker-controlled bytes; the codec must fail
*cleanly* (WireError / RdataError, both ValueError) on anything it
cannot parse, and mutated valid messages must never crash the decoder.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnscore import (
    A,
    Message,
    Name,
    NSEC,
    RCode,
    RRType,
    RRset,
    SOA,
    WireError,
    decode_message,
    encode_message,
)


def n(text):
    return Name.from_text(text)


def sample_message():
    query = Message.make_query(77, n("example.com"), RRType.A, dnssec_ok=True)
    soa = RRset(
        n("com"), RRType.SOA, 900,
        (SOA(n("ns1.com"), n("hostmaster.com"), 1),),
    )
    nsec = RRset(
        n("example.com"), RRType.NSEC, 900,
        (NSEC(n("examplf.com"), frozenset({RRType.NS})),),
    )
    return query.make_response(
        rcode=RCode.NXDOMAIN, authority=(soa, nsec), authoritative=True
    )


class TestRandomBytes:
    @settings(max_examples=300)
    @given(st.binary(min_size=0, max_size=120))
    def test_random_bytes_fail_cleanly(self, data):
        try:
            message = decode_message(data)
        except ValueError:
            return
        # If it decoded, it must re-encode without crashing.
        encode_message(message)

    @settings(max_examples=200)
    @given(st.binary(min_size=12, max_size=12))
    def test_bare_headers(self, header):
        try:
            decode_message(header)
        except ValueError:
            pass


class TestMutatedMessages:
    @settings(max_examples=300)
    @given(st.data())
    def test_single_byte_mutation_never_crashes(self, data):
        wire = bytearray(encode_message(sample_message()))
        index = data.draw(st.integers(0, len(wire) - 1))
        value = data.draw(st.integers(0, 255))
        wire[index] = value
        try:
            message = decode_message(bytes(wire))
        except ValueError:
            return
        encode_message(message)

    @settings(max_examples=100)
    @given(st.integers(0, 200))
    def test_truncation_never_crashes(self, cut):
        wire = encode_message(sample_message())
        truncated = wire[: min(cut, len(wire))]
        if truncated == wire:
            return
        with pytest.raises(ValueError):
            decode_message(truncated)

    @settings(max_examples=100)
    @given(st.binary(min_size=1, max_size=30))
    def test_trailing_garbage_rejected(self, garbage):
        wire = encode_message(sample_message())
        with pytest.raises(ValueError):
            decode_message(wire + garbage)


class TestDecodeEncodeStability:
    @settings(max_examples=100)
    @given(st.binary(min_size=0, max_size=200))
    def test_decoded_messages_are_fixpoints(self, data):
        """decode(encode(decode(x))) == decode(x) whenever x decodes."""
        try:
            first = decode_message(data)
        except ValueError:
            return
        wire = encode_message(first)
        assert decode_message(wire) == first
