"""Tests for repro.dnscore.names."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore import ROOT, Name, NameError_, canonical_sort, name_between


def n(text: str) -> Name:
    return Name.from_text(text)


class TestParsing:
    def test_from_text_basic(self):
        name = n("www.Example.COM")
        assert name.labels == ("www", "example", "com")

    def test_trailing_dot_optional(self):
        assert n("example.com.") == n("example.com")

    def test_root_spellings(self):
        assert n(".") is ROOT or n(".") == ROOT
        assert n("") == ROOT
        assert ROOT.is_root()

    def test_to_text_roundtrip(self):
        assert n("a.b.c").to_text() == "a.b.c."
        assert ROOT.to_text() == "."

    def test_rejects_empty_label(self):
        with pytest.raises(NameError_):
            Name(["a", "", "b"])

    def test_rejects_oversized_label(self):
        with pytest.raises(NameError_):
            Name(["x" * 64])

    def test_rejects_oversized_name(self):
        labels = ["x" * 63] * 4
        with pytest.raises(NameError_):
            Name(labels)

    def test_case_insensitive_equality(self):
        assert Name(["WWW", "Example", "Com"]) == n("www.example.com")


class TestRelations:
    def test_parent(self):
        assert n("www.example.com").parent() == n("example.com")
        assert n("com").parent() == ROOT

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_strip_left(self):
        assert n("a.b.c").strip_left(2) == n("c")
        with pytest.raises(NameError_):
            n("a.b").strip_left(3)

    def test_is_subdomain_of(self):
        assert n("www.example.com").is_subdomain_of(n("example.com"))
        assert n("example.com").is_subdomain_of(n("example.com"))
        assert n("example.com").is_subdomain_of(ROOT)
        assert not n("example.com").is_subdomain_of(n("example.org"))
        assert not n("badexample.com").is_subdomain_of(n("example.com"))

    def test_relativize(self):
        assert n("a.b.example.com").relativize(n("example.com")) == ("a", "b")
        assert n("example.com").relativize(n("example.com")) == ()
        with pytest.raises(NameError_):
            n("example.org").relativize(n("example.com"))

    def test_concatenate_and_prepend(self):
        assert n("example").concatenate(n("com")) == n("example.com")
        assert n("example.com").prepend("www") == n("www.example.com")

    def test_ancestors(self):
        chain = list(n("a.b.c").ancestors())
        assert chain == [n("a.b.c"), n("b.c"), n("c"), ROOT]

    def test_common_ancestor(self):
        assert n("a.x.com").common_ancestor(n("b.x.com")) == n("x.com")
        assert n("a.com").common_ancestor(n("a.org")) == ROOT


class TestCanonicalOrdering:
    def test_rfc4034_example_order(self):
        # The ordering example from RFC 4034 section 6.1.
        ordered = [
            n("example"),
            n("a.example"),
            n("yljkjljk.a.example"),
            n("z.a.example"),
            n("zabc.a.example"),
            n("z.example"),
        ]
        shuffled = list(reversed(ordered))
        assert canonical_sort(shuffled) == ordered

    def test_ancestor_sorts_first(self):
        assert n("example.com") < n("a.example.com")

    def test_name_between_simple(self):
        assert name_between(n("b.com"), n("a.com"), n("c.com"))
        assert not name_between(n("a.com"), n("a.com"), n("c.com"))
        assert not name_between(n("d.com"), n("a.com"), n("c.com"))

    def test_name_between_wrapped(self):
        # NSEC from the canonically-last name wraps to the apex.
        assert name_between(n("zz.com"), n("y.com"), n("com"))
        assert not name_between(n("x.com"), n("y.com"), n("com"))

    def test_name_between_self_loop_covers_everything_else(self):
        assert name_between(n("anything.com"), n("com"), n("com"))
        assert not name_between(n("com"), n("com"), n("com"))


_LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=10,
).filter(lambda s: not s.startswith("-"))


@st.composite
def names(draw):
    labels = draw(st.lists(_LABEL, min_size=0, max_size=5))
    return Name(labels)


class TestNameProperties:
    @given(names())
    def test_text_roundtrip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(names())
    def test_wire_length_matches_definition(self, name):
        assert name.wire_length() == sum(len(l) + 1 for l in name.labels) + 1

    @given(names(), names())
    def test_ordering_total_and_consistent(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(names())
    def test_subdomain_of_all_ancestors(self, name):
        for ancestor in name.ancestors():
            assert name.is_subdomain_of(ancestor)

    @given(names(), names())
    def test_concatenate_is_subdomain(self, a, b):
        try:
            combined = a.concatenate(b)
        except NameError_:
            return  # exceeded the 255-octet cap; nothing to check
        assert combined.is_subdomain_of(b)
