"""Property-based round-trip tests for the wire codec.

Complements ``test_wire_fuzz.py`` (which feeds the decoder garbage) from
the other direction: *any* structurally valid message the data model can
express must survive ``decode(encode(m)) == m`` exactly — names, flags,
EDNS state, section order, and rdata bytes all intact.  A resolver
hardened against byzantine responses leans on this: question-echo
comparison and bailiwick scrubbing only work if the codec neither loses
nor invents information.

The garbage-direction properties here are stricter than the fuzz file's:
failures must be :class:`WireError` (or its :class:`RdataError` sibling)
specifically — never ``IndexError``, ``struct.error``, or a hang — since
the resolver's error handling only catches ``ValueError``.
"""

import ipaddress
import struct

from hypothesis import given, settings, strategies as st

from repro.dnscore import (
    A,
    AAAA,
    CNAME,
    DNSKEY,
    DS,
    Edns,
    HeaderFlags,
    Message,
    NS,
    NSEC,
    Name,
    Opcode,
    Question,
    RCode,
    RRType,
    RRset,
    RdataError,
    SOA,
    TXT,
    WireError,
    decode_message,
    encode_message,
)
from repro.dnscore.constants import Algorithm, DigestType

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"

labels = st.text(_LABEL_ALPHABET, min_size=1, max_size=12)
names = st.lists(labels, min_size=1, max_size=4).map(Name)

# str(IPv4Address/IPv6Address) is the canonical text form the decoder
# produces, so addresses must be canonicalised for exact round-trips.
ipv4s = st.integers(0, 2**32 - 1).map(lambda p: str(ipaddress.IPv4Address(p)))
ipv6s = st.integers(0, 2**128 - 1).map(lambda p: str(ipaddress.IPv6Address(p)))

rdatas = st.one_of(
    ipv4s.map(A),
    ipv6s.map(AAAA),
    names.map(NS),
    names.map(CNAME),
    st.builds(
        SOA,
        mname=names,
        rname=names,
        serial=st.integers(0, 2**32 - 1),
    ),
    st.lists(
        st.text(_LABEL_ALPHABET, max_size=40), min_size=1, max_size=3
    ).map(lambda strings: TXT(tuple(strings))),
    st.builds(
        DS,
        key_tag=st.integers(0, 0xFFFF),
        algorithm=st.just(Algorithm.RSASHA256),
        digest_type=st.just(DigestType.SHA256),
        digest=st.binary(min_size=1, max_size=32),
    ),
    st.builds(
        DNSKEY,
        flags=st.sampled_from([DNSKEY.ZONE_KEY_FLAGS, DNSKEY.KSK_FLAGS]),
        protocol=st.just(3),
        algorithm=st.just(Algorithm.RSASHA256),
        public_key=st.binary(min_size=1, max_size=64),
    ),
    st.builds(
        NSEC,
        next_name=names,
        types=st.frozensets(
            st.sampled_from([RRType.A, RRType.NS, RRType.SOA, RRType.TXT]),
            min_size=1,
            max_size=4,
        ),
    ),
)


def _rrset_at(name):
    return st.builds(
        lambda rtyped, ttl: RRset(name, rtyped[0], ttl, rtyped[1]),
        rdatas.map(lambda rdata: (rdata.rtype, (rdata,))),
        st.integers(0, 2**31 - 1),
    )


@st.composite
def sections(draw, max_rrsets=2):
    """A message section whose RRsets all have distinct owner names, so
    the decoder cannot legitimately merge them (wire order is the only
    grouping information a DNS message carries)."""
    count = draw(st.integers(0, max_rrsets))
    owners = draw(
        st.lists(names, min_size=count, max_size=count, unique_by=lambda n: n.labels)
    )
    return tuple(draw(_rrset_at(owner)) for owner in owners)


flags_strategy = st.builds(
    HeaderFlags,
    qr=st.booleans(),
    opcode=st.sampled_from(list(Opcode)),
    aa=st.booleans(),
    tc=st.booleans(),
    rd=st.booleans(),
    ra=st.booleans(),
    z=st.booleans(),
    ad=st.booleans(),
    cd=st.booleans(),
    rcode=st.sampled_from([r for r in RCode if int(r) < 16]),
)

messages = st.builds(
    Message,
    message_id=st.integers(0, 0xFFFF),
    flags=flags_strategy,
    question=st.one_of(st.none(), st.builds(Question, names, st.just(RRType.A))),
    answer=sections(),
    authority=sections(),
    additional=sections(),
    edns=st.one_of(
        st.none(),
        st.builds(
            Edns,
            udp_payload_size=st.integers(512, 0xFFFF),
            dnssec_ok=st.booleans(),
        ),
    ),
)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=300)
    @given(messages)
    def test_encode_decode_is_identity(self, message):
        assert decode_message(encode_message(message)) == message

    @settings(max_examples=100)
    @given(messages)
    def test_reencode_is_stable(self, message):
        """Encoding is deterministic: the same message always produces
        the same bytes (compression choices included)."""
        wire = encode_message(message)
        assert encode_message(decode_message(wire)) == wire

    @settings(max_examples=100)
    @given(names, st.integers(0, 0xFFFF))
    def test_query_question_survives(self, name, message_id):
        query = Message.make_query(message_id, name, RRType.A, dnssec_ok=True)
        decoded = decode_message(encode_message(query))
        assert decoded.question == query.question
        assert decoded.edns is not None and decoded.edns.dnssec_ok


# ----------------------------------------------------------------------
# Garbage must fail with WireError — nothing else
# ----------------------------------------------------------------------


class TestGarbageFailsTyped:
    @settings(max_examples=400, deadline=1000)
    @given(st.binary(min_size=0, max_size=160))
    def test_garbage_raises_wire_error_only(self, data):
        try:
            decode_message(data)
        except (WireError, RdataError):
            return
        except (IndexError, struct.error, RecursionError) as leak:
            raise AssertionError(
                f"decoder leaked internal exception {type(leak).__name__} "
                f"on {data!r}"
            )

    @settings(max_examples=200, deadline=1000)
    @given(messages, st.data())
    def test_mutated_message_raises_wire_error_only(self, message, data):
        wire = bytearray(encode_message(message))
        if not wire:
            return
        for _ in range(data.draw(st.integers(1, 4))):
            index = data.draw(st.integers(0, len(wire) - 1))
            wire[index] = data.draw(st.integers(0, 255))
        try:
            decode_message(bytes(wire))
        except (WireError, RdataError):
            return
        except (IndexError, struct.error, RecursionError) as leak:
            raise AssertionError(
                f"decoder leaked internal exception {type(leak).__name__}"
            )

    @settings(max_examples=150, deadline=1000)
    @given(messages, st.integers(0, 400))
    def test_truncation_raises_wire_error_only(self, message, cut):
        wire = encode_message(message)
        truncated = wire[: min(cut, len(wire))]
        if truncated == wire:
            return
        try:
            decode_message(truncated)
        except (WireError, RdataError):
            return
        except (IndexError, struct.error, RecursionError) as leak:
            raise AssertionError(
                f"decoder leaked internal exception {type(leak).__name__}"
            )
        raise AssertionError("truncated message decoded successfully")
