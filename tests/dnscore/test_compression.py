"""Tests for RFC 1035 name compression in the wire codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnscore import (
    A,
    CNAME,
    Message,
    MX,
    Name,
    NS,
    RCode,
    RRType,
    RRset,
    SOA,
    WireError,
    decode_message,
    encode_message,
)


def n(text):
    return Name.from_text(text)


def referral_response():
    """A referral is where compression shines: repeated owner names."""
    query = Message.make_query(5, n("www.example.com"), RRType.A, dnssec_ok=True)
    ns = RRset(
        n("example.com"),
        RRType.NS,
        86400,
        (NS(n("ns1.example.com")), NS(n("ns2.example.com"))),
    )
    glue = RRset(n("ns1.example.com"), RRType.A, 86400, (A("192.0.2.53"),))
    return query.make_response(authority=(ns,), additional=(glue,))


def soa_response():
    query = Message.make_query(6, n("missing.example.com"), RRType.A)
    soa = RRset(
        n("example.com"),
        RRType.SOA,
        900,
        (SOA(n("ns1.example.com"), n("hostmaster.example.com"), 7),),
    )
    return query.make_response(rcode=RCode.NXDOMAIN, authority=(soa,))


class TestCompressedRoundtrip:
    @pytest.mark.parametrize(
        "message", [referral_response(), soa_response()], ids=["referral", "soa"]
    )
    def test_roundtrip(self, message):
        wire = encode_message(message, compress=True)
        assert decode_message(wire) == message

    def test_compression_shrinks_referrals(self):
        message = referral_response()
        plain = encode_message(message, compress=False)
        packed = encode_message(message, compress=True)
        assert len(packed) < len(plain)
        # A realistic referral compresses by a decent margin.
        assert len(packed) <= 0.85 * len(plain)

    def test_compressed_mx_and_cname(self):
        query = Message.make_query(9, n("example.com"), RRType.MX)
        mx = RRset(
            n("example.com"),
            RRType.MX,
            3600,
            (MX(10, n("mail.example.com")), MX(20, n("backup.example.com"))),
        )
        cname = RRset(
            n("alias.example.com"),
            RRType.CNAME,
            3600,
            (CNAME(n("example.com")),),
        )
        response = query.make_response(answer=(mx, cname))
        wire = encode_message(response, compress=True)
        assert decode_message(wire) == response

    def test_uncompressed_unchanged_by_flag(self):
        message = referral_response()
        assert encode_message(message) == encode_message(message, compress=False)

    def test_wire_size_matches_uncompressed_mode(self):
        message = referral_response()
        assert message.wire_size() == len(encode_message(message, compress=False))


class TestPointerDecoding:
    def test_pointer_to_question_name(self):
        """Hand-crafted message: answer owner is a pointer to offset 12
        (the question name)."""
        query = Message.make_query(3, n("x.test"), RRType.A)
        wire = bytearray(encode_message(query))
        # Patch header: qr=1, ancount=1.
        wire[2] |= 0x80
        wire[7] = 1
        record = (
            b"\xc0\x0c"  # pointer to offset 12
            + b"\x00\x01\x00\x01\x00\x00\x01\x2c\x00\x04"  # A IN ttl=300 len=4
            + bytes([192, 0, 2, 1])
        )
        message = decode_message(bytes(wire) + record)
        assert message.answer[0].name == n("x.test")
        assert message.answer[0].first().address == "192.0.2.1"

    def test_forward_pointer_rejected(self):
        query = Message.make_query(3, n("x.test"), RRType.A)
        wire = bytearray(encode_message(query))
        wire[2] |= 0x80
        wire[7] = 1
        # Pointer to its own offset (forward/self): invalid.
        self_offset = len(wire)
        record = (
            struct_pack_pointer(self_offset)
            + b"\x00\x01\x00\x01\x00\x00\x01\x2c\x00\x04"
            + bytes([192, 0, 2, 1])
        )
        with pytest.raises(WireError):
            decode_message(bytes(wire) + record)

    def test_truncated_pointer_rejected(self):
        query = Message.make_query(3, n("x.test"), RRType.A)
        wire = bytearray(encode_message(query))
        with pytest.raises(WireError):
            decode_message(bytes(wire[:-5]) + b"\xc0")


def struct_pack_pointer(offset):
    return bytes([0xC0 | (offset >> 8), offset & 0xFF])


_LABEL = st.text(alphabet="abcdef", min_size=1, max_size=6)


@st.composite
def multi_name_messages(draw):
    base = draw(st.lists(_LABEL, min_size=1, max_size=3))
    query = Message.make_query(
        draw(st.integers(0, 0xFFFF)), Name(base), RRType.NS
    )
    rrsets = []
    seen_owners = set()
    for index in range(draw(st.integers(1, 3))):
        owner_labels = draw(st.lists(_LABEL, min_size=0, max_size=2)) + base
        owner = Name(owner_labels)
        if owner in seen_owners:
            continue  # the decoder merges same-(owner,type) records
        seen_owners.add(owner)
        target = Name([draw(_LABEL)] + base)
        rrsets.append(RRset(owner, RRType.NS, 300, (NS(target),)))
    return query.make_response(authority=tuple(rrsets))


class TestCompressionProperties:
    @settings(max_examples=150)
    @given(multi_name_messages())
    def test_compressed_roundtrip(self, message):
        wire = encode_message(message, compress=True)
        assert decode_message(wire) == message

    @settings(max_examples=150)
    @given(multi_name_messages())
    def test_compression_never_grows(self, message):
        plain = encode_message(message, compress=False)
        packed = encode_message(message, compress=True)
        assert len(packed) <= len(plain)
