"""Tests for rdata wire encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore import (
    A,
    AAAA,
    CNAME,
    DLV,
    DNSKEY,
    DS,
    MX,
    NS,
    NSEC,
    NSEC3,
    NSEC3PARAM,
    PTR,
    RRSIG,
    SOA,
    TXT,
    Algorithm,
    DigestType,
    Name,
    RdataError,
    RRType,
    decode_type_bitmap,
    encode_type_bitmap,
)
from repro.dnscore.rdata import rdata_class_for


def n(text):
    return Name.from_text(text)


SAMPLES = [
    A("192.0.2.1"),
    AAAA("2001:db8::1"),
    NS(n("ns1.example.com")),
    CNAME(n("target.example.net")),
    PTR(n("host.example.com")),
    MX(10, n("mail.example.com")),
    SOA(n("ns1.example.com"), n("hostmaster.example.com"), 2024010101),
    TXT(("dlv=1", "hello world")),
    DS(12345, Algorithm.RSASHA256, DigestType.SHA256, b"\x01" * 32),
    DLV(12345, Algorithm.RSASHA256, DigestType.SHA256, b"\x02" * 32),
    DNSKEY(257, 3, Algorithm.RSASHA256, b"\x03" * 65),
    RRSIG(
        RRType.A,
        Algorithm.RSASHA256,
        2,
        3600,
        2**31 - 1,
        0,
        54321,
        n("example.com"),
        b"\x04" * 64,
    ),
    NSEC(n("b.example.com"), frozenset({RRType.A, RRType.NS, RRType.DLV})),
    NSEC3(1, 0, 10, b"\xab\xcd", b"\x05" * 20, frozenset({RRType.DS})),
    NSEC3PARAM(1, 0, 10, b"\xab\xcd"),
]


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_wire_roundtrip(rdata):
    cls = type(rdata)
    assert cls.from_wire(rdata.to_wire()) == rdata


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_registry_maps_type_to_class(rdata):
    assert rdata_class_for(rdata.rtype) is type(rdata)


class TestTypeBitmap:
    def test_empty(self):
        assert decode_type_bitmap(encode_type_bitmap([])) == frozenset()

    def test_dlv_lives_in_high_window(self):
        wire = encode_type_bitmap([RRType.DLV])
        assert wire[0] == 128  # window 128 for type 32769
        assert decode_type_bitmap(wire) == frozenset({RRType.DLV})

    def test_mixed_windows(self):
        types = frozenset({RRType.A, RRType.NSEC, RRType.DLV})
        assert decode_type_bitmap(encode_type_bitmap(types)) == types

    def test_truncated_bitmap_rejected(self):
        with pytest.raises(RdataError):
            decode_type_bitmap(b"\x00\x05\x01")

    @given(
        st.frozensets(
            st.sampled_from(sorted(RRType, key=int)), min_size=0, max_size=8
        )
    )
    def test_roundtrip_property(self, types):
        assert decode_type_bitmap(encode_type_bitmap(types)) == types


class TestValidation:
    def test_a_rejects_bad_address(self):
        with pytest.raises(ValueError):
            A("999.0.0.1")

    def test_a_rejects_wrong_wire_length(self):
        with pytest.raises(RdataError):
            A.from_wire(b"\x01\x02\x03")

    def test_txt_rejects_oversized_string(self):
        with pytest.raises(RdataError):
            TXT(("x" * 256,))

    def test_soa_rejects_short_fixed_fields(self):
        with pytest.raises(RdataError):
            SOA.from_wire(b"\x00\x00" + b"\x00" * 10)


class TestDnskey:
    def test_ksk_flag(self):
        assert DNSKEY(257, 3, Algorithm.RSASHA256, b"k").is_ksk()
        assert not DNSKEY(256, 3, Algorithm.RSASHA256, b"k").is_ksk()

    def test_key_tag_is_stable_16bit(self):
        key = DNSKEY(257, 3, Algorithm.RSASHA256, b"\x10\x20\x30")
        tag = key.key_tag()
        assert 0 <= tag <= 0xFFFF
        assert key.key_tag() == tag

    def test_key_tag_depends_on_material(self):
        a = DNSKEY(257, 3, Algorithm.RSASHA256, b"\x01" * 32)
        b = DNSKEY(257, 3, Algorithm.RSASHA256, b"\x02" * 32)
        assert a.key_tag() != b.key_tag()


class TestTxtDlvSignal:
    def test_signal_one(self):
        assert TXT(("dlv=1",)).dlv_signal() == 1

    def test_signal_zero(self):
        assert TXT(("other", "dlv=0")).dlv_signal() == 0

    def test_no_signal(self):
        assert TXT(("v=spf1 -all",)).dlv_signal() is None

    def test_malformed_signal_ignored(self):
        assert TXT(("dlv=yes",)).dlv_signal() is None


class TestDlvIsDsShaped:
    def test_from_ds(self):
        ds = DS(7, Algorithm.RSASHA256, DigestType.SHA256, b"\xaa" * 32)
        dlv = DLV.from_ds(ds)
        assert dlv.rtype is RRType.DLV
        assert dlv.to_wire() == ds.to_wire()
