"""Property-based end-to-end invariants over random small universes."""

from hypothesis import given, settings, strategies as st

from repro.core import LeakageCase, LeakageExperiment
from repro.dnscore import RCode, RRType
from repro.resolver import ValidationStatus, correct_bind_config
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


@st.composite
def small_runs(draw):
    seed = draw(st.integers(0, 2**16))
    count = draw(st.integers(5, 18))
    workload = AlexaWorkload(count, WorkloadParams(seed=seed))
    universe = Universe(
        workload.domains,
        UniverseParams(
            modulus_bits=256,
            seed=seed,
            registry_filler=tuple(workload.registry_filler(150)),
        ),
    )
    experiment = LeakageExperiment(universe, correct_bind_config(), ptr_fraction=0.0)
    result = experiment.run(workload.names(count))
    return workload, universe, experiment, result


class TestEndToEndInvariants:
    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_every_domain_resolves(self, run):
        workload, universe, experiment, result = run
        assert result.rcode_counts == {"NOERROR": len(workload)}

    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_leakage_cases_partition_registry_traffic(self, run):
        workload, universe, experiment, result = run
        classified = experiment.classifier.classify_queries(result.capture)
        case1 = [c for c in classified if c.case is LeakageCase.CASE1]
        case2 = [c for c in classified if c.case is LeakageCase.CASE2]
        assert len(case1) + len(case2) == len(classified)
        # Case-1 queries name a deposited owner; Case-2 never do.
        for item in case1:
            assert universe.registry_zone.has_owner(item.record.qname)
        for item in case2:
            assert not universe.registry_zone.has_owner(item.record.qname)

    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_secure_domains_never_leak(self, run):
        """A domain with a full chain of trust validates on-path and
        must never appear in the leaked set."""
        workload, universe, experiment, result = run
        secure_names = {
            s.name for s in workload.domains if s.signed and s.ds_in_parent
        }
        assert secure_names.isdisjoint(result.leakage.leaked_domains)

    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_deposited_islands_validate(self, run):
        workload, universe, experiment, result = run
        memo = experiment.resolver.validator._zone_security
        for spec in workload.domains:
            if spec.is_island_of_security() and spec.dlv_deposited:
                security = memo.get(spec.name)
                assert security is not None
                assert security.status is ValidationStatus.SECURE

    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_leaked_plus_served_bounded_by_population(self, run):
        workload, universe, experiment, result = run
        leak = result.leakage
        assert leak.leaked_count + len(leak.served_domains) <= len(workload)
        assert leak.leaked_domains.isdisjoint(leak.served_domains)

    @settings(max_examples=12, deadline=None)
    @given(small_runs())
    def test_answers_match_universe_addresses(self, run):
        workload, universe, experiment, result = run
        resolver = experiment.resolver
        for spec in workload.domains[:5]:
            outcome = resolver.resolve(spec.name, RRType.A)
            assert outcome.rcode is RCode.NOERROR
            a_rrsets = [r for r in outcome.answer if r.rtype is RRType.A]
            assert a_rrsets[0].first().address == universe.apex_address(spec.name)
