"""Unbound parity and leak recurrence over negative-TTL windows."""

import pytest

from repro.configs import UnboundInstall, config_from_unbound_install
from repro.core import LeakageExperiment
from repro.dnscore import RRType
from repro.resolver import correct_bind_config
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


def build_world(count=40, seed=121, filler=800):
    workload = AlexaWorkload(count, WorkloadParams(seed=seed))
    universe = Universe(
        workload.domains,
        UniverseParams(
            modulus_bits=256,
            registry_filler=tuple(workload.registry_filler(filler)),
        ),
    )
    return workload, universe


class TestUnboundParity:
    """Section 5: 'the measurements, results, and findings are the same
    for both resolver software packages' — once DLV is actually
    enabled, Unbound leaks exactly like BIND."""

    def test_configured_unbound_leaks_like_bind(self):
        workload, bind_universe = build_world()
        _, unbound_universe = build_world()
        bind_run = LeakageExperiment(
            bind_universe, correct_bind_config(), ptr_fraction=0.0
        ).run(workload.names(40))
        unbound_config = config_from_unbound_install(
            UnboundInstall.MANUAL_CONFIGURED
        )
        unbound_run = LeakageExperiment(
            unbound_universe, unbound_config, ptr_fraction=0.0
        ).run(workload.names(40))
        assert unbound_run.leakage.leaked_count == bind_run.leakage.leaked_count
        assert unbound_run.leakage.leaked_domains == bind_run.leakage.leaked_domains

    def test_package_unbound_never_contacts_registry(self):
        workload, universe = build_world()
        config = config_from_unbound_install(UnboundInstall.PACKAGE)
        run = LeakageExperiment(universe, config, ptr_fraction=0.0).run(
            workload.names(40)
        )
        assert run.leakage.dlv_queries == 0

    def test_unconfigured_unbound_does_nothing_dnssec(self):
        workload, universe = build_world()
        config = config_from_unbound_install(UnboundInstall.MANUAL_DEFAULT)
        run = LeakageExperiment(universe, config, ptr_fraction=0.0).run(
            workload.names(40)
        )
        assert run.leakage.dlv_queries == 0
        assert run.status_counts == {}


class TestLeakRecurrence:
    """The leak is not one-shot: once the aggressive cache's NSEC TTLs
    expire, re-querying the same domains leaks them again — why ISC's
    'empty zone' phase-out kept collecting traffic indefinitely."""

    def test_requery_within_ttl_is_silent(self):
        workload, universe = build_world()
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        experiment.run(workload.names(20))
        second = experiment.run(workload.names(20))
        assert second.leakage.dlv_queries == 0

    def test_requery_after_ttl_leaks_again(self):
        workload, universe = build_world()
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        first = experiment.run(workload.names(20))
        assert first.leakage.leaked_count > 0
        # Let every cache (positive, negative, security memos) expire.
        universe.clock.sleep_until(universe.clock.now + 100_000)
        second = experiment.run(workload.names(20))
        assert second.leakage.leaked_count > 0

    def test_capture_export_rows(self):
        workload, universe = build_world(count=5, filler=50)
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        experiment.run(workload.names(5))
        rows = universe.capture.export_rows()
        assert rows
        first = rows[0]
        assert set(first) == {
            "time", "src", "dst", "direction", "qname", "qtype", "rcode",
            "wire_size",
        }
        assert any(row["qtype"] == "DLV" for row in rows)
