"""Integration tests: the paper's headline findings at reduced scale.

These are the acceptance tests of the reproduction — each asserts the
*shape* of a published result (who leaks, what decays, which remedy is
free), at sizes small enough for CI.
"""

import pytest

from repro.core import (
    LeakageExperiment,
    Remedy,
    run_remedy,
    standard_experiment,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RRType
from repro.resolver import broken_anchor_bind_config, correct_bind_config
from repro.servers import DenialMode
from repro.workloads import Universe, UniverseParams, secured_domains


FILLER = 20000


class TestSection51PopularDomains:
    """Section 5.1: most popular domains leak; proportion decays."""

    @pytest.fixture(scope="class")
    def sweep(self):
        workload = standard_workload(1000)
        universe = standard_universe(workload, filler_count=FILLER)
        experiment = LeakageExperiment(universe, correct_bind_config())
        first = experiment.run(workload.names(100))
        second = experiment.run(workload.names(1000)[100:])
        return first, second

    def test_top100_leak_in_paper_range(self, sweep):
        first, _ = sweep
        # Paper: 84 % (82/84/77 across shuffle trials).
        assert 0.70 <= first.leakage.leaked_proportion <= 0.95

    def test_proportion_decays_with_n(self, sweep):
        first, second = sweep
        cumulative = first.leakage.leaked_count + second.leakage.leaked_count
        assert cumulative / 1000 < first.leakage.leaked_proportion

    def test_leak_count_still_grows(self, sweep):
        first, second = sweep
        assert second.leakage.leaked_count > 0

    def test_most_dlv_queries_are_case2(self, sweep):
        first, _ = sweep
        assert first.leakage.case2_fraction > 0.9


class TestSection51OrderMatters:
    """Section 5.1: query order changes *which* domains leak, because
    only the first name in a shared NSEC range is sent to the registry.

    In the live measurement this also perturbed the counts (82/84/77);
    in the deterministic simulator the count is exactly the number of
    touched NSEC ranges plus deposits — an order-*invariant* — while the
    leaked set is order-dependent.  We assert the sharper property (see
    EXPERIMENTS.md, "Order matters").
    """

    @pytest.fixture(scope="class")
    def trials(self):
        workload = standard_workload(100)
        results = []
        for trial in range(3):
            universe = standard_universe(workload, filler_count=FILLER)
            experiment = LeakageExperiment(universe, correct_bind_config())
            names = workload.shuffled_names(100, trial_seed=trial)
            results.append(experiment.run(names))
        return results

    def test_leaked_sets_differ_across_shuffles(self, trials):
        sets = [frozenset(r.leakage.leaked_domains) for r in trials]
        assert len(set(sets)) > 1

    def test_leaked_count_is_order_invariant(self, trials):
        counts = {r.leakage.leaked_count for r in trials}
        assert len(counts) == 1

    def test_counts_in_paper_range(self, trials):
        assert all(60 <= r.leakage.leaked_count <= 95 for r in trials)


class TestSection52SecuredDomains:
    def test_correct_config_leaks_only_islands(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        experiment = LeakageExperiment(universe, correct_bind_config(), ptr_fraction=0.0)
        result = experiment.run([s.name for s in specs])
        assert result.leakage.leaked_count == 0
        assert len(result.leakage.served_domains) == 5
        assert result.authenticated_answers == 45

    def test_broken_anchor_floods_dlv_with_secured_domains(self):
        specs = secured_domains()
        workload = standard_workload(10)
        universe = Universe(
            specs,
            UniverseParams(
                modulus_bits=256,
                registry_filler=tuple(workload.registry_filler(5000)),
            ),
        )
        experiment = LeakageExperiment(
            universe, broken_anchor_bind_config(), ptr_fraction=0.0
        )
        result = experiment.run([s.name for s in specs])
        assert result.leakage.leaked_count > 20
        assert result.authenticated_answers == 5  # islands via DLV only


class TestSection53Utility:
    def test_validation_utility_is_tiny(self):
        result = standard_experiment(400, filler_count=FILLER).run(
            standard_workload(400).names(400)
        )
        # Paper: <1.2 % of DLV queries receive "No error".
        assert result.leakage.utility_fraction < 0.05


class TestSection73Nsec3:
    def test_nsec3_registry_leaks_every_fresh_name(self):
        """Section 7.3: without NSEC, aggressive caching dies and every
        unique name reaches the registry."""
        workload = standard_workload(150)
        nsec_universe = standard_universe(workload, filler_count=5000)
        nsec3_universe = standard_universe(
            workload, filler_count=5000, registry_denial=DenialMode.NSEC3
        )
        nsec_result = LeakageExperiment(nsec_universe, correct_bind_config()).run(
            workload.names(150)
        )
        nsec3_result = LeakageExperiment(nsec3_universe, correct_bind_config()).run(
            workload.names(150)
        )
        assert nsec3_result.leakage.leaked_count > nsec_result.leakage.leaked_count
        # With NSEC3 denial, every domain that consults the registry at
        # all (i.e. everything not secure on-path and not deposited)
        # leaks.
        exempt = sum(
            1
            for s in workload.domains
            if s.dlv_deposited or (s.signed and s.ds_in_parent)
        )
        assert nsec3_result.leakage.leaked_count == 150 - exempt


class TestSection732Phaseout:
    def test_empty_registry_makes_all_queries_case2(self):
        workload = standard_workload(100)
        universe = standard_universe(workload, filler_count=0, registry_empty=True)
        experiment = LeakageExperiment(universe, correct_bind_config())
        result = experiment.run(workload.names(100))
        assert result.leakage.case1_queries == 0
        assert result.leakage.dlv_queries > 0
        assert result.leakage.case2_fraction == 1.0


class TestRemediesEndToEnd:
    def test_remedies_kill_leakage_keep_validation(self):
        workload = standard_workload(80)
        base = UniverseParams(
            modulus_bits=256,
            registry_filler=tuple(workload.registry_filler(2000)),
        )
        baseline = run_remedy(
            Remedy.NONE, workload.domains, workload.names(80),
            correct_bind_config(), base,
        ).result
        assert baseline.leakage.leaked_count > 0
        for remedy in (Remedy.TXT, Remedy.ZBIT):
            run = run_remedy(
                remedy, workload.domains, workload.names(80),
                correct_bind_config(), base,
            ).result
            assert run.leakage.leaked_count == 0
            assert run.authenticated_answers == baseline.authenticated_answers
