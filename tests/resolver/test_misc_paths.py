"""Remaining small paths: probe construction, handle() edges, stub
retry fallback."""

import pytest

from repro.dnscore import Message, Name, RCode, ROOT, RRType
from repro.netsim import Network, ZeroLatency
from repro.resolver import StubClient, correct_bind_config
from repro.resolver.engine import IterativeEngine
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


def n(text):
    return Name.from_text(text)


class TestMinimizedProbe:
    probe = staticmethod(IterativeEngine._minimized_probe)

    def test_one_label_past_cut(self):
        assert self.probe(n("a.b.example.com"), n("com"), None) == n("example.com")

    def test_explicit_count(self):
        assert self.probe(n("a.b.example.com"), n("com"), 3) == n("b.example.com")

    def test_clamped_to_full_name(self):
        assert self.probe(n("example.com"), n("example.com"), 99) == n("example.com")

    def test_from_root(self):
        assert self.probe(n("example.com"), ROOT, None) == n("com")


class TestHandleEdges:
    @pytest.fixture(scope="class")
    def resolver(self):
        workload = AlexaWorkload(5, WorkloadParams(seed=211))
        universe = Universe(workload.domains, UniverseParams(modulus_bits=256))
        return universe.make_resolver(correct_bind_config())

    def test_response_message_rejected(self, resolver):
        query = Message.make_query(1, n("x.com"), RRType.A)
        bounced = resolver.handle(query.make_response())
        assert bounced.rcode is RCode.FORMERR

    def test_recursion_available_flag(self, resolver):
        query = Message.make_query(2, n("no-such-name-at-all.com"), RRType.A)
        response = resolver.handle(query)
        assert response.flags.ra
        assert response.flags.qr


class TestStubFallback:
    def test_persistent_loss_yields_local_servfail(self):
        network = Network(latency=ZeroLatency(), loss_rate=0.999, loss_seed=3)

        class Silent:
            def handle(self, query):
                return query.make_response()

        network.register("resolver", Silent())
        stub = StubClient(network, "stub", "resolver")
        response = stub.query(n("example.com"))
        assert response.rcode is RCode.SERVFAIL

    def test_stub_ids_increment(self):
        network = Network(latency=ZeroLatency())

        class Echo:
            def handle(self, query):
                return query.make_response()

        network.register("resolver", Echo())
        stub = StubClient(network, "stub", "resolver")
        first = stub.query(n("a.com"))
        second = stub.query(n("b.com"))
        assert first.message_id != second.message_id
