"""Exhaustive conformance checks over the resolver-config space."""

import itertools

import pytest

from repro.resolver import (
    LookasideSetting,
    ResolverConfig,
    ResolverFlavor,
    ValidationSetting,
)


def all_bind_configs():
    for enable, validation, lookaside, anchor, dlv_anchor in itertools.product(
        (True, False),
        ValidationSetting,
        LookasideSetting,
        (True, False),
        (True, False),
    ):
        yield ResolverConfig(
            flavor=ResolverFlavor.BIND,
            dnssec_enable=enable,
            dnssec_validation=validation,
            dnssec_lookaside=lookaside,
            trust_anchor_included=anchor,
            dlv_anchor_included=dlv_anchor,
        )


def all_unbound_configs():
    for anchor, dlv_anchor in itertools.product((True, False), (True, False)):
        yield ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=anchor,
            dlv_anchor_included=dlv_anchor,
        )


class TestConfigInvariants:
    """Invariants over the whole configuration space."""

    def test_lookaside_implies_validation_machinery(self):
        for config in itertools.chain(all_bind_configs(), all_unbound_configs()):
            if config.lookaside_enabled:
                assert config.validation_machinery_active

    def test_anchor_availability_implies_machinery(self):
        for config in itertools.chain(all_bind_configs(), all_unbound_configs()):
            if config.root_anchor_available:
                assert config.validation_machinery_active

    def test_lookaside_requires_dlv_anchor(self):
        for config in itertools.chain(all_bind_configs(), all_unbound_configs()):
            if config.lookaside_enabled:
                assert config.dlv_anchor_included

    def test_dnssec_disable_kills_everything_in_bind(self):
        for config in all_bind_configs():
            if not config.dnssec_enable:
                assert not config.validation_machinery_active
                assert not config.lookaside_enabled

    def test_unintentional_flood_class_is_bind_only(self):
        """The paper's Section 4.4 claim, sharpened: the *unintentional*
        state "configured for root-anchored validation but the anchor
        material is missing" exists only in BIND's configuration space.
        (Unbound can still be pointed at DLV *deliberately* — an
        explicit dlv-anchor-file — but validating-without-material is
        unrepresentable because the anchor file IS the switch.)"""
        from repro.resolver import ValidationSetting

        bind_trap = [
            config
            for config in all_bind_configs()
            if config.validation_machinery_active
            and config.dnssec_validation is ValidationSetting.YES
            and not config.root_anchor_available
        ]
        assert bind_trap
        for config in all_unbound_configs():
            if config.validation_machinery_active:
                # Whatever Unbound validates with, its material exists.
                assert config.trust_anchor_included or config.dlv_anchor_included

    def test_describe_total(self):
        for config in itertools.chain(all_bind_configs(), all_unbound_configs()):
            text = config.describe()
            assert config.flavor.value in text

    def test_configs_hashable_and_comparable(self):
        configs = list(all_bind_configs())
        assert len(set(configs)) == len(configs)
