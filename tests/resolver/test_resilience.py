"""Resolver resilience: retry budgets, backoff, NS failover, the lame
cache, and RFC 8767 serve-stale."""

import pytest

from repro.dnscore import Name, RCode, RRType
from repro.netsim import Network, ZeroLatency
from repro.resolver import (
    IterativeEngine,
    NegativeCache,
    ResolutionError,
    RRsetCache,
    ServerHealth,
)
from repro.servers import AuthoritativeServer
from repro.zones import ZoneBuilder, standard_ns_hosts

ROOT_ADDR = "10.3.0.0"
COM_ADDR = "10.3.0.1"
NS1_ADDR = "10.3.0.11"
NS2_ADDR = "10.3.0.12"


def n(text):
    return Name.from_text(text)


def build_world(lame_ttl=0.0, serve_stale=False, stale_window=86400.0, leaf_ttl=3600):
    """Root -> com -> example.com served on TWO addresses."""
    network = Network(latency=ZeroLatency())

    example = ZoneBuilder(n("example.com"), default_ttl=leaf_ttl)
    example.with_ns(
        [
            (n("ns1.example.com"), NS1_ADDR),
            (n("ns2.example.com"), NS2_ADDR),
        ]
    )
    example.with_address(n("www.example.com"), ipv4="10.3.0.80")
    example_zone = example.build()

    com = ZoneBuilder(n("com"))
    com.with_ns(standard_ns_hosts(n("com"), [COM_ADDR]))
    com.delegate(
        n("example.com"),
        [
            (n("ns1.example.com"), NS1_ADDR),
            (n("ns2.example.com"), NS2_ADDR),
        ],
    )

    root = ZoneBuilder(Name(()))
    root.with_ns([(n("ns1.rootsrv.net"), ROOT_ADDR)])
    root.delegate(n("com"), standard_ns_hosts(n("com"), [COM_ADDR]))

    network.register(ROOT_ADDR, AuthoritativeServer([root.build()]))
    network.register(COM_ADDR, AuthoritativeServer([com.build()]))
    leaf_server = AuthoritativeServer([example_zone])
    network.register(NS1_ADDR, leaf_server)
    network.register(NS2_ADDR, leaf_server)
    engine = IterativeEngine(
        network=network,
        address="10.3.0.100",
        cache=RRsetCache(
            network.clock, serve_stale=serve_stale, stale_window=stale_window
        ),
        negcache=NegativeCache(network.clock),
        root_hints=[ROOT_ADDR],
        sld_ns_requery_fraction=0.0,
        ns_address_lookups=False,
        tld_priming=False,
        health=ServerHealth(network.clock, lame_ttl=lame_ttl),
        serve_stale=serve_stale,
    )
    return network, engine


class TestRetriesAndBackoff:
    def test_retry_exhaustion_raises_resolution_error(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR)  # black hole
        with pytest.raises(ResolutionError):
            engine.send_query(NS1_ADDR, n("www.example.com"), RRType.A)
        assert engine.timeouts == 3  # _MAX_RETRIES sends, all lost

    def test_backoff_waits_between_retries(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR)
        before = network.clock.now
        with pytest.raises(ResolutionError):
            engine.send_query(NS1_ADDR, n("www.example.com"), RRType.A)
        # 3 timeouts (1s each from the network) + backoff 0.4 + 0.8
        # between attempts; no backoff after the final one.
        assert network.clock.now == pytest.approx(before + 3.0 + 0.4 + 0.8)

    def test_backoff_delay_grows_and_caps(self):
        _, engine = build_world()
        delays = [engine.health.backoff_delay(a) for a in range(6)]
        assert delays[0] == pytest.approx(0.4)
        assert delays[1] == pytest.approx(0.8)
        assert delays == sorted(delays)
        assert engine.health.backoff_delay(30) == pytest.approx(8.0)


class TestFailover:
    def test_failover_to_second_ns_on_black_hole(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR)
        response = engine.query_cut(
            [NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A
        )
        assert response.rcode is RCode.NOERROR
        assert engine.failovers == 1
        assert engine.health.stats(NS1_ADDR).consecutive_failures >= 3

    def test_failover_on_lame_rcode(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR, rcode=RCode.SERVFAIL)
        response = engine.query_cut(
            [NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A
        )
        assert response.rcode is RCode.NOERROR
        assert engine.failovers == 1

    def test_end_to_end_resolution_survives_one_dead_ns(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR, rcode=RCode.REFUSED)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert outcome.answer

    def test_health_ordering_demotes_failing_server(self):
        network, engine = build_world()
        network.faults.add_outage(NS1_ADDR)
        engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A)
        # After the recorded failures, the healthy server sorts first.
        assert engine.health.order([NS1_ADDR, NS2_ADDR])[0] == NS2_ADDR


class TestLameCache:
    def test_lame_server_skipped_while_held_down(self):
        network, engine = build_world(lame_ttl=60.0)
        network.faults.add_outage(NS1_ADDR, rcode=RCode.SERVFAIL)
        engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A)
        assert engine.health.is_lame(NS1_ADDR)
        sent_before = engine.queries_sent
        engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.AAAA)
        # The lame address was filtered out: one wire query, no retry.
        assert engine.queries_sent == sent_before + 1

    def test_lame_marking_expires(self):
        network, engine = build_world(lame_ttl=60.0)
        network.faults.add_outage(NS1_ADDR, rcode=RCode.SERVFAIL, end=30.0)
        engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A)
        assert engine.health.is_lame(NS1_ADDR)
        network.clock.advance(61.0)
        assert not engine.health.is_lame(NS1_ADDR)

    def test_every_server_lame_fails_fast(self):
        network, engine = build_world(lame_ttl=60.0)
        network.faults.add_outage(NS1_ADDR, rcode=RCode.SERVFAIL)
        network.faults.add_outage(NS2_ADDR, rcode=RCode.SERVFAIL)
        with pytest.raises(ResolutionError):
            engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A)
        with pytest.raises(ResolutionError):
            engine.query_cut([NS1_ADDR, NS2_ADDR], n("www.example.com"), RRType.A)
        assert engine.lame_skips == 1


class TestServeStale:
    def _expire_and_black_hole(self, network, engine, advance):
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR and not outcome.stale
        network.clock.advance(advance)
        for address in (ROOT_ADDR, COM_ADDR, NS1_ADDR, NS2_ADDR):
            network.faults.add_outage(address)

    def test_stale_answer_served_when_upstreams_dead(self):
        network, engine = build_world(serve_stale=True)
        self._expire_and_black_hole(network, engine, advance=4000.0)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert outcome.stale and outcome.from_cache
        assert engine.stale_served == 1

    def test_no_stale_service_by_default(self):
        network, engine = build_world(serve_stale=False)
        self._expire_and_black_hole(network, engine, advance=4000.0)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)

    def test_stale_window_bounds_service(self):
        network, engine = build_world(serve_stale=True, stale_window=100.0)
        # Expired 4000 - 3600 = 400s ago: outside the 100s window.
        self._expire_and_black_hole(network, engine, advance=4000.0)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)

    def test_fresh_entries_unaffected_by_stale_mode(self):
        network, engine = build_world(serve_stale=True)
        engine.resolve(n("www.example.com"), RRType.A)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.from_cache and not outcome.stale
