"""Tests for ResolverConfig semantics and trust-anchor stores."""

import random

import pytest

from repro.crypto import generate_keypair, make_ds, make_zone_key
from repro.dnscore import Name, ROOT
from repro.resolver import (
    LookasideSetting,
    ResolverConfig,
    ResolverFlavor,
    TrustAnchor,
    TrustAnchorStore,
    ValidationSetting,
    broken_anchor_bind_config,
    correct_bind_config,
)


def n(text):
    return Name.from_text(text)


class TestBindConfigSemantics:
    def test_correct_config_is_fully_enabled(self):
        config = correct_bind_config()
        assert config.validation_machinery_active
        assert config.root_anchor_available
        assert config.lookaside_enabled

    def test_broken_anchor_still_validates_and_looks_aside(self):
        """The paper's central misconfiguration: machinery runs, anchor
        unusable, DLV flooded."""
        config = broken_anchor_bind_config()
        assert config.validation_machinery_active
        assert not config.root_anchor_available
        assert config.lookaside_enabled

    def test_validation_auto_uses_builtin_anchor(self):
        config = ResolverConfig(
            dnssec_validation=ValidationSetting.AUTO,
            trust_anchor_included=False,
        )
        assert config.root_anchor_available

    def test_validation_yes_needs_include(self):
        config = ResolverConfig(
            dnssec_validation=ValidationSetting.YES,
            trust_anchor_included=False,
        )
        assert not config.root_anchor_available

    def test_validation_no_disables_everything(self):
        config = ResolverConfig(
            dnssec_validation=ValidationSetting.NO,
            dnssec_lookaside=LookasideSetting.AUTO,
        )
        assert not config.validation_machinery_active
        assert not config.lookaside_enabled

    def test_dnssec_disable_kills_lookaside(self):
        config = ResolverConfig(
            dnssec_enable=False, dnssec_lookaside=LookasideSetting.AUTO
        )
        assert not config.lookaside_enabled

    def test_lookaside_needs_dlv_anchor(self):
        config = ResolverConfig(
            dnssec_lookaside=LookasideSetting.AUTO, dlv_anchor_included=False
        )
        assert not config.lookaside_enabled


class TestUnboundConfigSemantics:
    def test_anchor_file_is_the_switch(self):
        with_anchor = ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=True,
            dlv_anchor_included=False,
        )
        without = ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=False,
            dlv_anchor_included=False,
        )
        assert with_anchor.validation_machinery_active
        assert not without.validation_machinery_active

    def test_unbound_cannot_validate_without_usable_anchor(self):
        """The unrepresentable-misconfiguration property: if Unbound
        validates at all, an anchor is present."""
        for anchor in (True, False):
            for dlv in (True, False):
                config = ResolverConfig(
                    flavor=ResolverFlavor.UNBOUND,
                    trust_anchor_included=anchor,
                    dlv_anchor_included=dlv,
                )
                if config.root_anchor_available:
                    assert config.trust_anchor_included

    def test_dlv_anchor_enables_lookaside(self):
        config = ResolverConfig(
            flavor=ResolverFlavor.UNBOUND,
            trust_anchor_included=True,
            dlv_anchor_included=True,
        )
        assert config.lookaside_enabled


class TestDescribe:
    def test_describe_mentions_remedies(self):
        config = correct_bind_config(txt_signaling=True)
        assert "txt" in config.describe()

    def test_describe_plain(self):
        text = broken_anchor_bind_config().describe()
        assert "anchor=no" in text


class TestTrustAnchors:
    @pytest.fixture(scope="class")
    def ksk(self):
        return make_zone_key(generate_keypair(random.Random(8), 256), ksk=True)

    def test_anchor_requires_exactly_one_form(self, ksk):
        with pytest.raises(ValueError):
            TrustAnchor(zone=ROOT)
        with pytest.raises(ValueError):
            TrustAnchor(
                zone=ROOT, dnskey=ksk.dnskey, ds=make_ds(ROOT, ksk.dnskey)
            )

    def test_ds_anchor_matches_key(self, ksk):
        anchor = TrustAnchor(zone=ROOT, ds=make_ds(ROOT, ksk.dnskey))
        assert anchor.matches_key(ksk.dnskey)

    def test_dnskey_anchor_matches_exact_key(self, ksk):
        anchor = TrustAnchor(zone=ROOT, dnskey=ksk.dnskey)
        assert anchor.matches_key(ksk.dnskey)

    def test_closest_enclosing(self, ksk):
        store = TrustAnchorStore()
        store.add(TrustAnchor(zone=ROOT, dnskey=ksk.dnskey))
        store.add(TrustAnchor(zone=n("dlv.isc.org"), dnskey=ksk.dnskey))
        assert store.closest_enclosing(n("x.dlv.isc.org")).zone == n("dlv.isc.org")
        assert store.closest_enclosing(n("example.com")).zone == ROOT

    def test_anchor_for_zone_is_exact(self, ksk):
        store = TrustAnchorStore()
        store.add(TrustAnchor(zone=ROOT, dnskey=ksk.dnskey))
        assert store.anchor_for_zone(n("com")) is None
        assert store.anchor_for_zone(ROOT) is not None

    def test_remove(self, ksk):
        store = TrustAnchorStore()
        store.add(TrustAnchor(zone=ROOT, dnskey=ksk.dnskey))
        store.remove(ROOT)
        assert not store.has_any()
