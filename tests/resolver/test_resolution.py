"""Resolver behaviour tests against a small simulated universe."""

import pytest

from repro.dnscore import Name, RCode, RRType
from repro.resolver import (
    ResolverConfig,
    TrustAnchor,
    TrustAnchorStore,
    ValidationStatus,
    broken_anchor_bind_config,
    correct_bind_config,
)
from repro.workloads import (
    AlexaWorkload,
    Universe,
    UniverseParams,
    WorkloadParams,
    secured_domains,
)


def n(text):
    return Name.from_text(text)


def small_universe(**overrides):
    workload = AlexaWorkload(30, WorkloadParams(seed=99))
    params = UniverseParams(
        modulus_bits=256,
        registry_filler=tuple(workload.registry_filler(500)),
        **overrides,
    )
    return workload, Universe(workload.domains, params)


@pytest.fixture(scope="module")
def world():
    return small_universe()


class TestBasicResolution:
    def test_a_answer(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        result = resolver.resolve(workload.names(1)[0], RRType.A)
        assert result.rcode is RCode.NOERROR
        assert result.answer[0].rtype is RRType.A

    def test_answer_address_matches_universe(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        name = workload.names(2)[1]
        result = resolver.resolve(name, RRType.A)
        assert result.answer[0].first().address == universe.apex_address(name)

    def test_nxdomain_for_unregistered_name(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        result = resolver.resolve(n("no-such-domain-here.com"), RRType.A)
        assert result.rcode is RCode.NXDOMAIN

    def test_second_query_served_from_cache(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        name = workload.names(3)[2]
        resolver.resolve(name, RRType.A)
        before = len(universe.capture)
        result = resolver.resolve(name, RRType.A)
        assert result.rcode is RCode.NOERROR
        assert len(universe.capture) == before  # no new packets

    def test_out_of_bailiwick_ns_resolvable(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        oob = [s for s in workload.domains if s.out_of_bailiwick_ns]
        assert oob, "workload should contain OOB domains"
        result = resolver.resolve(oob[0].name, RRType.A)
        assert result.rcode is RCode.NOERROR

    def test_ptr_resolution_through_reverse_tree(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        name = workload.names(1)[0]
        resolver.resolve(name, RRType.A)
        octets = universe.apex_address(name).split(".")
        reverse = Name(list(reversed(octets)) + ["in-addr", "arpa"])
        result = resolver.resolve(reverse, RRType.PTR)
        assert result.rcode is RCode.NOERROR
        assert result.answer[0].rtype is RRType.PTR


class TestValidationStatuses:
    def test_unsigned_domain_is_insecure(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        unsigned = next(s for s in workload.domains if not s.signed)
        result = resolver.resolve(unsigned.name, RRType.A)
        assert result.status is ValidationStatus.INSECURE
        assert not result.authenticated

    def test_secured_domain_is_secure(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        resolver = universe.make_resolver(correct_bind_config())
        anchored = next(s for s in specs if s.ds_in_parent)
        result = resolver.resolve(anchored.name, RRType.A)
        assert result.status is ValidationStatus.SECURE
        assert result.authenticated

    def test_island_secured_via_dlv(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        resolver = universe.make_resolver(correct_bind_config())
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.status is ValidationStatus.SECURE
        assert result.lookaside is not None
        assert result.lookaside.anchored_at == island.name

    def test_island_without_dlv_stays_insecure(self):
        specs = secured_domains(dlv_deposited_islands=False)
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        resolver = universe.make_resolver(correct_bind_config())
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.status is ValidationStatus.INSECURE

    def test_missing_anchor_makes_everything_indeterminate(self, world):
        workload, universe = world
        resolver = universe.make_resolver(broken_anchor_bind_config())
        result = resolver.resolve(workload.names(1)[0], RRType.A)
        assert result.status is ValidationStatus.INDETERMINATE
        assert result.rcode is RCode.NOERROR  # answers still flow

    def test_wrong_anchor_is_bogus_servfail(self, world):
        workload, universe = world
        wrong = universe.keys.fresh_keyset()
        resolver = universe.make_resolver(correct_bind_config())
        resolver.anchors.remove(Name(()))
        resolver.anchors.add(TrustAnchor(zone=Name(()), dnskey=wrong.ksk.dnskey))
        result = resolver.resolve(workload.names(5)[4], RRType.A)
        assert result.status is ValidationStatus.BOGUS
        assert result.rcode is RCode.SERVFAIL

    def test_validation_disabled_has_no_status(self, world):
        workload, universe = world
        from repro.resolver import ValidationSetting

        config = ResolverConfig(dnssec_validation=ValidationSetting.NO)
        resolver = universe.make_resolver(config)
        result = resolver.resolve(workload.names(4)[3], RRType.A)
        assert result.status is None
        assert result.rcode is RCode.NOERROR


class TestLookasideBehaviour:
    def test_no_lookaside_when_disabled(self, world):
        workload, universe = world
        from repro.resolver import LookasideSetting

        config = correct_bind_config(dnssec_lookaside=LookasideSetting.NO)
        resolver = universe.make_resolver(config)
        before = len(universe.capture.queries_of_type(RRType.DLV))
        resolver.resolve(workload.names(6)[5], RRType.A)
        after = len(universe.capture.queries_of_type(RRType.DLV))
        assert before == after

    def test_label_stripping_order(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        candidates = resolver.lookaside.candidates(n("bbs.sub1.example.com"))
        assert candidates == [
            n("bbs.sub1.example.com"),
            n("sub1.example.com"),
            n("example.com"),
            n("com"),
        ]

    def test_dlv_query_name_construction(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        assert resolver.lookaside.dlv_query_name(n("example.com")) == n(
            "example.com.dlv.isc.org"
        )

    def test_aggressive_cache_suppresses_repeat_ranges(self, world):
        """Two unsigned domains in a TLD with no registry entries: the
        first leaks, the second is suppressed by the cached NSEC."""
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        tail = [
            s.name
            for s in workload.domains
            if s.name.labels[-1] == "ru" and not s.signed
        ]
        if len(tail) < 2:
            tail = [
                s.name
                for s in workload.domains
                if s.name.labels[-1] == "cn" and not s.signed
            ]
        if len(tail) < 2:
            pytest.skip("workload has too few tail-TLD domains")
        resolver.resolve(tail[0], RRType.A)
        first = resolver.lookaside.total_queries_sent
        resolver.resolve(tail[1], RRType.A)
        assert resolver.lookaside.total_queries_sent == first
        assert resolver.lookaside.total_queries_suppressed > 0

    def test_exact_negative_cache_suppresses_repeat_name(self, world):
        workload, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        unsigned = next(s for s in workload.domains if not s.signed)
        resolver.resolve(unsigned.name, RRType.A)
        resolver.validator.invalidate_below(unsigned.name)
        sent_before = resolver.lookaside.total_queries_sent
        resolver.lookaside.try_lookaside(unsigned.name)
        assert resolver.lookaside.total_queries_sent == sent_before


class TestRemedyGating:
    def make_world(self, **universe_overrides):
        return small_universe(**universe_overrides)

    def test_txt_gate_blocks_dlv_for_undeposited(self):
        workload, universe = self.make_world(deploy_txt_signal=True)
        config = correct_bind_config(txt_signaling=True)
        resolver = universe.make_resolver(config)
        unsigned = next(s for s in workload.domains if not s.signed)
        result = resolver.resolve(unsigned.name, RRType.A)
        assert result.lookaside_vetoed
        assert result.lookaside is None
        assert not universe.capture.queries_to(universe.registry_address)

    def test_zbit_gate_blocks_dlv_for_undeposited(self):
        workload, universe = self.make_world(deploy_zbit_signal=True)
        config = correct_bind_config(zbit_signaling=True)
        resolver = universe.make_resolver(config)
        unsigned = next(s for s in workload.domains if not s.signed)
        result = resolver.resolve(unsigned.name, RRType.A)
        assert result.lookaside_vetoed
        assert not universe.capture.queries_to(universe.registry_address)

    def test_txt_gate_admits_deposited_island(self):
        specs = secured_domains()
        universe = Universe(
            specs,
            UniverseParams(modulus_bits=256, deploy_txt_signal=True),
        )
        config = correct_bind_config(txt_signaling=True)
        resolver = universe.make_resolver(config)
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert not result.lookaside_vetoed
        assert result.status is ValidationStatus.SECURE

    def test_hashed_dlv_sends_digest_labels(self):
        workload, universe = self.make_world(registry_hashed=True)
        config = correct_bind_config(hashed_dlv=True)
        resolver = universe.make_resolver(config)
        unsigned = next(s for s in workload.domains if not s.signed)
        resolver.resolve(unsigned.name, RRType.A)
        dlv_queries = [
            q
            for q in universe.capture.queries_of_type(RRType.DLV)
            if q.dst == universe.registry_address
        ]
        assert dlv_queries
        for q in dlv_queries:
            label = q.qname.labels[0]
            assert all(c in "0123456789abcdef" for c in label)
            assert unsigned.name.labels[0] not in q.qname.labels

    def test_hashed_island_still_validates(self):
        specs = secured_domains()
        universe = Universe(
            specs, UniverseParams(modulus_bits=256, registry_hashed=True)
        )
        config = correct_bind_config(hashed_dlv=True)
        resolver = universe.make_resolver(config)
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.status is ValidationStatus.SECURE
