"""Tests for the positive cache and the negative/aggressive caches."""

from hypothesis import given, settings, strategies as st

from repro.dnscore import A, NSEC, Name, RRType, RRset, canonical_sort
from repro.netsim import SimClock
from repro.resolver import NegativeCache, RRsetCache


def n(text):
    return Name.from_text(text)


def a_rrset(name="example.com", ttl=300):
    return RRset(n(name), RRType.A, ttl, (A("192.0.2.1"),))


def nsec_rrset(owner, next_name, ttl=600):
    return RRset(
        n(owner),
        RRType.NSEC,
        ttl,
        (NSEC(n(next_name), frozenset({RRType.DLV})),),
    )


class TestRRsetCache:
    def test_put_get(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset())
        assert cache.get(n("example.com"), RRType.A).rrset == a_rrset()

    def test_expires_with_clock(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset(ttl=10))
        clock.advance(11)
        assert cache.get(n("example.com"), RRType.A) is None

    def test_fresh_just_before_expiry(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset(ttl=10))
        clock.advance(9.5)
        assert cache.get(n("example.com"), RRType.A) is not None

    def test_max_ttl_cap(self):
        clock = SimClock()
        cache = RRsetCache(clock, max_ttl=100)
        cache.put(a_rrset(ttl=10_000))
        clock.advance(101)
        assert cache.get(n("example.com"), RRType.A) is None

    def test_hit_miss_counters(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.get(n("example.com"), RRType.A)
        cache.put(a_rrset())
        cache.get(n("example.com"), RRType.A)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_status_annotation(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset(), status="secure")
        assert cache.get(n("example.com"), RRType.A).status == "secure"

    def test_set_status_on_existing(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset())
        cache.set_status(n("example.com"), RRType.A, "insecure")
        assert cache.get(n("example.com"), RRType.A).status == "insecure"

    def test_flush(self):
        clock = SimClock()
        cache = RRsetCache(clock)
        cache.put(a_rrset())
        cache.flush()
        assert len(cache) == 0


class TestClassicNegativeCache:
    def test_nxdomain(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.put_nxdomain(n("gone.com"), 60)
        assert cache.is_nxdomain(n("gone.com"))
        assert cache.known_negative(n("gone.com"), RRType.A)

    def test_nodata_is_type_specific(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.put_nodata(n("x.com"), RRType.AAAA, 60)
        assert cache.is_nodata(n("x.com"), RRType.AAAA)
        assert not cache.is_nodata(n("x.com"), RRType.A)

    def test_expiry(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.put_nxdomain(n("gone.com"), 30)
        clock.advance(31)
        assert not cache.is_nxdomain(n("gone.com"))

    def test_ttl_capped(self):
        clock = SimClock()
        cache = NegativeCache(clock, max_ttl=50)
        cache.put_nxdomain(n("gone.com"), 10_000)
        clock.advance(51)
        assert not cache.is_nxdomain(n("gone.com"))


class TestAggressiveNsecCache:
    ZONE = Name.from_text("dlv.isc.org")

    def test_range_covers_between(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org"))
        assert cache.nsec_covers(self.ZONE, n("c.com.dlv.isc.org"))
        assert not cache.nsec_covers(self.ZONE, n("z.com.dlv.isc.org"))

    def test_endpoints_not_covered(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org"))
        assert not cache.nsec_covers(self.ZONE, n("a.com.dlv.isc.org"))
        assert not cache.nsec_covers(self.ZONE, n("f.com.dlv.isc.org"))

    def test_wrapped_range(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        # Last NSEC in the chain wraps back to the apex.
        cache.add_nsec(self.ZONE, nsec_rrset("z.org.dlv.isc.org", "dlv.isc.org"))
        assert cache.nsec_covers(self.ZONE, n("zz.org.dlv.isc.org"))

    def test_zone_isolation(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org"))
        assert not cache.nsec_covers(n("other.zone"), n("c.com.dlv.isc.org"))

    def test_range_expiry(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(
            self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org", ttl=10)
        )
        clock.advance(11)
        assert not cache.nsec_covers(self.ZONE, n("c.com.dlv.isc.org"))

    def test_refresh_replaces_range(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "b.com.dlv.isc.org"))
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org"))
        assert cache.nsec_range_count(self.ZONE) == 1
        assert cache.nsec_covers(self.ZONE, n("c.com.dlv.isc.org"))

    def test_aggressive_hits_counter(self):
        clock = SimClock()
        cache = NegativeCache(clock)
        cache.add_nsec(self.ZONE, nsec_rrset("a.com.dlv.isc.org", "f.com.dlv.isc.org"))
        cache.nsec_covers(self.ZONE, n("c.com.dlv.isc.org"))
        assert cache.aggressive_hits == 1

    @settings(max_examples=60)
    @given(
        st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        st.text(alphabet="abcdefghij", min_size=1, max_size=5),
    )
    def test_chain_coverage_matches_reference(self, labels, probe_label):
        """Covered names are exactly those strictly inside a cached
        range — checked against a brute-force reference over a full
        NSEC chain built from random owner labels."""
        clock = SimClock()
        cache = NegativeCache(clock)
        zone = self.ZONE
        owners = canonical_sort(
            [zone] + [zone.prepend(label, "com") for label in labels]
        )
        for index, owner in enumerate(owners):
            next_owner = owners[(index + 1) % len(owners)]
            cache.add_nsec(
                zone,
                RRset(
                    owner,
                    RRType.NSEC,
                    600,
                    (NSEC(next_owner, frozenset({RRType.DLV})),),
                ),
            )
        probe = zone.prepend(probe_label, "com")
        expected = probe not in owners
        assert cache.nsec_covers(zone, probe) == expected
