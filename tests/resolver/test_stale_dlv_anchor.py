"""A stale or wrong DLV trust anchor (e.g. after a registry key roll).

With a wrong anchor the resolver cannot validate anything the registry
returns: DLV records do not anchor chains, denials cannot feed the
aggressive cache — so islands stay insecure AND more queries leak.
A double failure mode the paper's outage discussion gestures at.
"""

import pytest

from repro.core import LeakageExperiment
from repro.dnscore import RRType
from repro.resolver import TrustAnchor, ValidationStatus, correct_bind_config
from repro.workloads import (
    AlexaWorkload,
    Universe,
    UniverseParams,
    WorkloadParams,
    secured_domains,
)


def make_resolver_with_stale_anchor(universe):
    resolver = universe.make_resolver(correct_bind_config())
    wrong = universe.keys.fresh_keyset()
    resolver.anchors.remove(universe.registry_origin)
    resolver.anchors.add(
        TrustAnchor(zone=universe.registry_origin, dnskey=wrong.ksk.dnskey)
    )
    return resolver


class TestStaleDlvAnchor:
    def test_islands_lose_validation(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        resolver = make_resolver_with_stale_anchor(universe)
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.status is not ValidationStatus.SECURE

    def test_queries_still_leak_without_benefit(self):
        """The worst of both: the registry keeps seeing the queries but
        can no longer provide any validation utility."""
        workload = AlexaWorkload(25, WorkloadParams(seed=201))
        universe = Universe(
            workload.domains,
            UniverseParams(
                modulus_bits=256,
                registry_filler=tuple(workload.registry_filler(400)),
            ),
        )
        resolver = make_resolver_with_stale_anchor(universe)
        for spec in workload.domains:
            resolver.resolve(spec.name, RRType.A)
        registry_queries = [
            q
            for q in universe.capture.queries_of_type(RRType.DLV)
            if q.dst == universe.registry_address
        ]
        assert registry_queries

    def test_aggressive_caching_degrades(self):
        """Unvalidatable NSEC records cannot enter the aggressive cache,
        so suppression weakens versus the healthy-anchor baseline."""
        workload = AlexaWorkload(30, WorkloadParams(seed=202))

        def leak_count(stale):
            universe = Universe(
                workload.domains,
                UniverseParams(
                    modulus_bits=256,
                    registry_filler=tuple(workload.registry_filler(400)),
                ),
            )
            if stale:
                resolver = make_resolver_with_stale_anchor(universe)
            else:
                resolver = universe.make_resolver(correct_bind_config())
            stub = universe.make_stub(resolver)
            for spec in workload.domains:
                stub.query(spec.name, RRType.A)
            return resolver.negcache.nsec_range_count(universe.registry_origin)

        assert leak_count(stale=True) == 0
        assert leak_count(stale=False) > 0
