"""Iterative-engine edge cases: CNAME chasing, loops, cut expiry."""

import pytest

from repro.crypto import KeyPool
from repro.dnscore import A, CNAME, Name, NS, RCode, RRType
from repro.netsim import Network, ZeroLatency
from repro.resolver import (
    IterativeEngine,
    NegativeCache,
    ResolutionError,
    RRsetCache,
)
from repro.servers import AuthoritativeServer
from repro.zones import ZoneBuilder, standard_ns_hosts


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=51, pool_size=8, modulus_bits=256)


def build_world(cname_loop=False, short_ttl=None):
    """Root -> {com, org}; example.com has CNAMEs into example.org."""
    network = Network(latency=ZeroLatency())

    example_com = ZoneBuilder(n("example.com"))
    example_com.with_ns(standard_ns_hosts(n("example.com"), ["10.1.0.3"]))
    if cname_loop:
        example_com.with_rrset(
            n("alias.example.com"), RRType.CNAME, [CNAME(n("alias2.example.com"))]
        )
        example_com.with_rrset(
            n("alias2.example.com"), RRType.CNAME, [CNAME(n("alias.example.com"))]
        )
    else:
        example_com.with_rrset(
            n("alias.example.com"), RRType.CNAME, [CNAME(n("real.example.org"))]
        )

    example_org = ZoneBuilder(n("example.org"))
    example_org.with_ns(standard_ns_hosts(n("example.org"), ["10.1.0.4"]))
    example_org.with_address(n("real.example.org"), ipv4="10.1.0.80")

    com = ZoneBuilder(n("com"), default_ttl=short_ttl or 3600)
    com.with_ns(standard_ns_hosts(n("com"), ["10.1.0.1"]))
    com.delegate(
        n("example.com"),
        standard_ns_hosts(n("example.com"), ["10.1.0.3"]),
        ttl=short_ttl,
    )

    org = ZoneBuilder(n("org"))
    org.with_ns(standard_ns_hosts(n("org"), ["10.1.0.2"]))
    org.delegate(n("example.org"), standard_ns_hosts(n("example.org"), ["10.1.0.4"]))

    root = ZoneBuilder(Name(()))
    root.with_ns([(n("ns1.rootsrv.net"), "10.1.0.0")])
    root.delegate(n("com"), standard_ns_hosts(n("com"), ["10.1.0.1"]))
    root.delegate(n("org"), standard_ns_hosts(n("org"), ["10.1.0.2"]))

    network.register("10.1.0.0", AuthoritativeServer([root.build()]))
    network.register("10.1.0.1", AuthoritativeServer([com.build()]))
    network.register("10.1.0.2", AuthoritativeServer([org.build()]))
    network.register("10.1.0.3", AuthoritativeServer([example_com.build()]))
    network.register("10.1.0.4", AuthoritativeServer([example_org.build()]))
    engine = IterativeEngine(
        network=network,
        address="10.1.0.100",
        cache=RRsetCache(network.clock),
        negcache=NegativeCache(network.clock),
        root_hints=["10.1.0.0"],
        sld_ns_requery_fraction=0.0,
        ns_address_lookups=False,
        tld_priming=False,
    )
    return network, engine


class TestCnameChasing:
    def test_cross_zone_chase(self):
        _, engine = build_world()
        outcome = engine.resolve(n("alias.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        types = [rrset.rtype for rrset in outcome.answer]
        assert RRType.CNAME in types and RRType.A in types
        final = [r for r in outcome.answer if r.rtype is RRType.A][0]
        assert final.name == n("real.example.org")

    def test_cname_query_itself_not_chased(self):
        _, engine = build_world()
        outcome = engine.resolve(n("alias.example.com"), RRType.CNAME)
        assert [r.rtype for r in outcome.answer] == [RRType.CNAME]

    def test_cname_loop_detected(self):
        _, engine = build_world(cname_loop=True)
        with pytest.raises(ResolutionError):
            engine.resolve(n("alias.example.com"), RRType.A)


class TestCutExpiry:
    def test_expired_cut_falls_back_to_parent(self):
        network, engine = build_world(short_ttl=10)
        engine.resolve(n("example.com"), RRType.NS)
        assert engine.deepest_cut(n("x.example.com")) == n("example.com")
        network.clock.advance(11)
        # The example.com cut has expired; descent restarts at com.
        assert engine.deepest_cut(n("x.example.com")) in (n("com"), Name(()))
        outcome = engine.resolve(n("example.com"), RRType.NS)
        assert outcome.rcode is RCode.NOERROR

    def test_root_cut_never_expires(self):
        network, engine = build_world()
        network.clock.advance(10**9)
        assert engine.deepest_cut(n("anything.com")) == Name(())


class TestChainBookkeeping:
    def test_known_cuts_are_root_first(self):
        _, engine = build_world()
        engine.resolve(n("alias.example.com"), RRType.A)
        chain = engine.known_cuts(n("alias.example.com"))
        assert chain[0] == Name(())
        assert chain[-1] == n("example.com")

    def test_parent_cut(self):
        _, engine = build_world()
        engine.resolve(n("alias.example.com"), RRType.A)
        assert engine.parent_cut(n("example.com")) == n("com")
        assert engine.parent_cut(Name(())) is None

    def test_queries_sent_counter(self):
        _, engine = build_world()
        before = engine.queries_sent
        engine.resolve(n("real.example.org"), RRType.A)
        assert engine.queries_sent > before


class TestNegativeResults:
    def test_nxdomain_cached_for_repeat(self):
        network, engine = build_world()
        engine.resolve(n("missing.example.org"), RRType.A)
        packets = len(network.capture)
        outcome = engine.resolve(n("missing.example.org"), RRType.A)
        assert outcome.rcode is RCode.NXDOMAIN
        assert outcome.from_cache
        assert len(network.capture) == packets

    def test_nodata_cached_per_type(self):
        network, engine = build_world()
        engine.resolve(n("real.example.org"), RRType.AAAA)  # NODATA
        outcome = engine.resolve(n("real.example.org"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert outcome.answer
