"""Resolver hardening: spoof rejection, bailiwick scrubbing, referral
direction checks, and per-resolution work budgets.

Policy-level units first, then the engine integration: a small
root → com → example.com world with tamper hooks standing in for the
adversary personas (the personas themselves are exercised end-to-end in
``tests/netsim/test_adversary.py``).
"""

import dataclasses

import pytest

from repro.dnscore import (
    A,
    HeaderFlags,
    Message,
    NS,
    Name,
    Question,
    RCode,
    RRType,
    RRset,
)
from repro.netsim import Network, ZeroLatency
from repro.resolver import (
    HardeningCounters,
    HardeningPolicy,
    IterativeEngine,
    NegativeCache,
    ResolutionError,
    ResolverConfig,
    RRsetCache,
    ServerHealth,
    WorkBudget,
)
from repro.servers import AuthoritativeServer
from repro.zones import ZoneBuilder, standard_ns_hosts

ROOT_ADDR = "10.9.0.0"
COM_ADDR = "10.9.0.1"
LEAF_ADDR = "10.9.0.11"
ATTACKER_ADDR = "203.0.113.200"


def n(text):
    return Name.from_text(text)


# ----------------------------------------------------------------------
# Policy units
# ----------------------------------------------------------------------


class TestResponseMatching:
    def query(self):
        return Message.make_query(42, n("www.example.com"), RRType.A)

    def test_matching_response_accepted(self):
        query = self.query()
        assert HardeningPolicy().response_matches(query, query.make_response())

    def test_wrong_id_rejected(self):
        query = self.query()
        forged = dataclasses.replace(query.make_response(), message_id=43)
        assert not HardeningPolicy().response_matches(query, forged)

    def test_wrong_question_rejected(self):
        query = self.query()
        forged = dataclasses.replace(
            query.make_response(),
            question=Question(n("evil.example.com"), RRType.A),
        )
        assert not HardeningPolicy().response_matches(query, forged)

    def test_disabled_policy_trusts_everything(self):
        query = self.query()
        forged = dataclasses.replace(query.make_response(), message_id=9999)
        assert HardeningPolicy.off().response_matches(query, forged)


class TestBailiwick:
    def rrset(self, owner, address="192.0.2.1"):
        return RRset(n(owner), RRType.A, 300, (A(address),))

    def test_scrub_drops_out_of_zone_records(self):
        inside = self.rrset("www.example.com")
        outside = self.rrset("victim-bank.example")
        kept, dropped = HardeningPolicy().scrub_rrsets(
            (inside, outside), n("example.com")
        )
        assert kept == [inside]
        assert dropped == 1

    def test_scrub_disabled_keeps_everything(self):
        outside = self.rrset("victim-bank.example")
        kept, dropped = HardeningPolicy.off().scrub_rrsets(
            (outside,), n("example.com")
        )
        assert kept == [outside] and dropped == 0

    def test_glue_must_be_address_record_inside_referred_zone(self):
        policy = HardeningPolicy()
        good = self.rrset("ns1.example.com")
        assert policy.glue_in_bailiwick(good, n("example.com"))
        foreign = self.rrset("ns1.victim-bank.example")
        assert not policy.glue_in_bailiwick(foreign, n("example.com"))
        wrong_type = RRset(
            n("example.com"), RRType.NS, 300, (NS(n("ns1.example.com")),)
        )
        assert not policy.glue_in_bailiwick(wrong_type, n("example.com"))


class TestReferralDirection:
    def test_downward_on_path_allowed(self):
        assert HardeningPolicy().referral_allowed(
            child=n("example.com"), cut=n("com"), qname=n("www.example.com")
        )

    def test_upward_rejected(self):
        policy = HardeningPolicy()
        assert not policy.referral_allowed(
            child=Name(()), cut=n("com"), qname=n("www.example.com")
        )
        assert not policy.referral_allowed(  # self-referral
            child=n("com"), cut=n("com"), qname=n("www.example.com")
        )

    def test_sideways_rejected(self):
        assert not HardeningPolicy().referral_allowed(
            child=n("other.com"), cut=n("com"), qname=n("www.example.com")
        )

    def test_disabled_allows_loops(self):
        assert HardeningPolicy.off().referral_allowed(
            child=Name(()), cut=n("com"), qname=n("www.example.com")
        )


class TestWorkBudget:
    def test_unlimited_budget_never_denies(self):
        budget = WorkBudget()
        assert all(budget.charge_send() for _ in range(10_000))

    def test_budget_denies_after_cap(self):
        budget = WorkBudget(sends_left=2)
        assert budget.charge_send() and budget.charge_send()
        assert not budget.charge_send()
        assert not budget.charge_send()  # stays denied

    def test_fresh_budget_reflects_policy(self):
        budget = HardeningPolicy(max_upstream_sends=7).fresh_budget()
        assert budget.sends_left == 7
        unlimited = HardeningPolicy.off().fresh_budget()
        assert unlimited.sends_left is None
        assert unlimited.charge_signature()

    def test_describe(self):
        assert HardeningPolicy.off().describe() == "unhardened"
        text = HardeningPolicy().describe()
        assert text.startswith("hardened[") and "bailiwick" in text

    def test_counters_totals(self):
        counters = HardeningCounters(spoofs_rejected=2, glue_rejected=1)
        assert counters.total_rejections() == 3
        assert counters.budget_denials() == 0


class TestConfigPromotion:
    def test_resolver_config_carries_hardening_and_limits(self):
        config = ResolverConfig()
        assert config.hardening.enabled
        assert config.max_referrals > 0
        assert config.max_cname_chain > 0
        assert config.max_retries > 0


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def build_world(policy=None, **engine_overrides):
    """Root -> com -> example.com, hardening policy injectable."""
    network = Network(latency=ZeroLatency())

    example = ZoneBuilder(n("example.com"))
    example.with_ns([(n("ns1.example.com"), LEAF_ADDR)])
    example.with_address(n("www.example.com"), ipv4="10.9.0.80")

    com = ZoneBuilder(n("com"))
    com.with_ns(standard_ns_hosts(n("com"), [COM_ADDR]))
    com.delegate(n("example.com"), [(n("ns1.example.com"), LEAF_ADDR)])

    root = ZoneBuilder(Name(()))
    root.with_ns([(n("ns1.rootsrv.net"), ROOT_ADDR)])
    root.delegate(n("com"), standard_ns_hosts(n("com"), [COM_ADDR]))

    network.register(ROOT_ADDR, AuthoritativeServer([root.build()]))
    network.register(COM_ADDR, AuthoritativeServer([com.build()]))
    network.register(LEAF_ADDR, AuthoritativeServer([example.build()]))

    cache = RRsetCache(network.clock)
    engine = IterativeEngine(
        network=network,
        address="10.9.0.100",
        cache=cache,
        negcache=NegativeCache(network.clock),
        root_hints=[ROOT_ADDR],
        sld_ns_requery_fraction=0.0,
        ns_address_lookups=False,
        tld_priming=False,
        health=ServerHealth(network.clock),
        hardening=policy if policy is not None else HardeningPolicy(),
        **engine_overrides,
    )
    return network, engine, cache


def cached_names(cache):
    return {entry.rrset.name for entry in cache.entries()}


def forge_id(response):
    return dataclasses.replace(
        response, message_id=(response.message_id + 1) & 0xFFFF
    )


class TestSpoofRejection:
    def test_hardened_engine_rejects_wrong_id_and_keeps_retrying(self):
        network, engine, _ = build_world()
        network.faults.set_tamper(LEAF_ADDR, forge_id)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)
        assert engine.counters.spoofs_rejected >= engine.max_retries

    def test_unhardened_engine_swallows_the_forgery(self):
        network, engine, _ = build_world(policy=HardeningPolicy.off())
        network.faults.set_tamper(LEAF_ADDR, forge_id)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert engine.counters.spoofs_rejected == 0

    def test_question_rewrite_also_rejected(self):
        network, engine, _ = build_world()

        def rewrite_question(response):
            return dataclasses.replace(
                response, question=Question(n("evil.com"), RRType.A)
            )

        network.faults.set_tamper(LEAF_ADDR, rewrite_question)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)
        assert engine.counters.spoofs_rejected > 0


def inject_poison(response):
    """Append an out-of-bailiwick answer RRset to every response."""
    poison = RRset(
        n("victim-bank.example"), RRType.A, 86400, (A(ATTACKER_ADDR),)
    )
    return dataclasses.replace(response, answer=response.answer + (poison,))


class TestBailiwickScrubbing:
    def test_hardened_cache_stays_clean(self):
        network, engine, cache = build_world()
        network.faults.set_tamper(LEAF_ADDR, inject_poison)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert n("victim-bank.example") not in cached_names(cache)
        assert engine.counters.records_scrubbed > 0

    def test_unhardened_cache_is_poisoned(self):
        network, engine, cache = build_world(policy=HardeningPolicy.off())
        network.faults.set_tamper(LEAF_ADDR, inject_poison)
        engine.resolve(n("www.example.com"), RRType.A)
        assert n("victim-bank.example") in cached_names(cache)

    def test_foreign_glue_rejected(self):
        network, engine, cache = build_world()

        def inject_glue(response):
            if not response.find_rrsets(RRType.NS, "authority"):
                return response
            glue = RRset(
                n("ns1.victim-bank.example"),
                RRType.A,
                86400,
                (A(ATTACKER_ADDR),),
            )
            return dataclasses.replace(
                response, additional=response.additional + (glue,)
            )

        network.faults.set_tamper(COM_ADDR, inject_glue)
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert engine.counters.glue_rejected > 0
        assert n("ns1.victim-bank.example") not in cached_names(cache)


class TestReferralDirectionEnforcement:
    def upward_referral(self, response):
        """Rewrite com's referral into one pointing back at the root."""
        if not response.find_rrsets(RRType.NS, "authority"):
            return response
        loop = RRset(Name(()), RRType.NS, 86400, (NS(n("ns1.rootsrv.net")),))
        glue = RRset(n("ns1.rootsrv.net"), RRType.A, 86400, (A(ROOT_ADDR),))
        return dataclasses.replace(
            response,
            flags=HeaderFlags(qr=True, aa=False, rcode=RCode.NOERROR),
            answer=(),
            authority=(loop,),
            additional=(glue,),
        )

    def test_hardened_engine_refuses_the_loop(self):
        network, engine, _ = build_world()
        network.faults.set_tamper(COM_ADDR, self.upward_referral)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)
        assert engine.counters.referrals_rejected > 0
        # The loop died immediately: no runaway traffic.
        assert engine.queries_sent < 10

    def test_unhardened_engine_chases_it_until_the_referral_cap(self):
        network, engine, _ = build_world(policy=HardeningPolicy.off())
        network.faults.set_tamper(COM_ADDR, self.upward_referral)
        with pytest.raises(ResolutionError):
            engine.resolve(n("www.example.com"), RRType.A)
        assert engine.queries_sent >= engine.max_referrals


class TestWorkBudgets:
    def test_send_budget_fails_resolution_gracefully(self):
        _, engine, _ = build_world(
            policy=HardeningPolicy(max_upstream_sends=2)
        )
        with pytest.raises(ResolutionError, match="work budget"):
            engine.resolve(n("www.example.com"), RRType.A)
        assert engine.counters.send_budget_exhausted == 1

    def test_budget_resets_between_sessions(self):
        _, engine, _ = build_world(
            policy=HardeningPolicy(max_upstream_sends=4)
        )
        # A cold-cache resolution fits in 4 sends (root, com, leaf);
        # each new session gets a fresh budget, so repeats also pass.
        for _ in range(3):
            with engine.resolution_session():
                outcome = engine.resolve(n("www.example.com"), RRType.A)
            assert outcome.rcode is RCode.NOERROR

    def test_nested_sessions_share_one_budget(self):
        # A cold-cache resolution costs exactly 3 sends (root, com,
        # leaf), so the budget is spent when the outer resolve returns.
        _, engine, _ = build_world(
            policy=HardeningPolicy(max_upstream_sends=3)
        )
        with engine.resolution_session():
            engine.resolve(n("www.example.com"), RRType.A)
            with engine.resolution_session():  # joins the outer budget
                with pytest.raises(ResolutionError, match="work budget"):
                    # Cache bypass forces a fresh send: new qtype.
                    engine.resolve(n("www.example.com"), RRType.AAAA)

    def test_signature_budget_via_charge_signature(self):
        _, engine, _ = build_world(
            policy=HardeningPolicy(max_signature_validations=2)
        )
        with engine.resolution_session():
            assert engine.charge_signature()
            assert engine.charge_signature()
            assert not engine.charge_signature()
        assert engine.counters.signature_budget_exhausted == 1


class TestHonestTrafficHeadroom:
    def test_default_policy_is_invisible_to_honest_traffic(self):
        """The default budgets sit far above honest cold-cache work, so
        a benign resolution trips no counter at all."""
        _, engine, _ = build_world()
        outcome = engine.resolve(n("www.example.com"), RRType.A)
        assert outcome.rcode is RCode.NOERROR
        assert engine.counters.total_rejections() == 0
        assert engine.counters.budget_denials() == 0
        # And the whole resolution used a small fraction of the budget.
        assert engine.queries_sent * 10 < HardeningPolicy().max_upstream_sends
