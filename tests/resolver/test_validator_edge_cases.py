"""Validator edge cases: signature windows, CD queries, bogus chains."""

import dataclasses

import pytest

from repro.dnscore import Name, RCode, RRType, RRSIG, RRset, Message
from repro.resolver import ValidationStatus, correct_bind_config
from repro.workloads import (
    AlexaWorkload,
    Universe,
    UniverseParams,
    WorkloadParams,
    secured_domains,
)


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def secured_world():
    specs = secured_domains()
    return specs, Universe(specs, UniverseParams(modulus_bits=256))


class TestSignatureWindow:
    def test_expired_rrsig_rejected(self, secured_world):
        """A signature whose window ended before the simulated 'now'
        must not validate."""
        specs, universe = secured_world
        resolver = universe.make_resolver(correct_bind_config())
        anchored = next(s for s in specs if s.ds_in_parent)
        outcome = resolver.engine.resolve(anchored.name, RRType.A)
        assert outcome.rrsig is not None
        original = outcome.rrsig.first()
        expired = dataclasses.replace(original, expiration=0, inception=0)
        forged_outcome = dataclasses.replace(
            outcome,
            rrsig=RRset(
                outcome.rrsig.name, RRType.RRSIG, outcome.rrsig.ttl, (expired,)
            ),
        )
        # Advance past the forged expiration (clock starts > 0 anyway
        # after the resolution traffic above).
        assert universe.clock.now > 0
        status = resolver.validator.validate_outcome(forged_outcome)
        assert status is ValidationStatus.BOGUS

    def test_not_yet_valid_rrsig_rejected(self, secured_world):
        specs, universe = secured_world
        resolver = universe.make_resolver(correct_bind_config())
        anchored = [s for s in specs if s.ds_in_parent][1]
        outcome = resolver.engine.resolve(anchored.name, RRType.A)
        future = dataclasses.replace(
            outcome.rrsig.first(), inception=2**31 - 2, expiration=2**31 - 1
        )
        forged_outcome = dataclasses.replace(
            outcome,
            rrsig=RRset(
                outcome.rrsig.name, RRType.RRSIG, outcome.rrsig.ttl, (future,)
            ),
        )
        status = resolver.validator.validate_outcome(forged_outcome)
        assert status is ValidationStatus.BOGUS

    def test_valid_window_accepted(self, secured_world):
        specs, universe = secured_world
        resolver = universe.make_resolver(correct_bind_config())
        anchored = [s for s in specs if s.ds_in_parent][2]
        result = resolver.resolve(anchored.name, RRType.A)
        assert result.status is ValidationStatus.SECURE


class TestCheckingDisabled:
    def test_cd_query_skips_dlv_entirely(self):
        workload = AlexaWorkload(15, WorkloadParams(seed=81))
        universe = Universe(
            workload.domains,
            UniverseParams(
                modulus_bits=256,
                registry_filler=tuple(workload.registry_filler(300)),
            ),
        )
        resolver = universe.make_resolver(correct_bind_config())
        stub = universe.make_stub(resolver)
        for spec in workload.domains[:10]:
            query = Message.make_query(
                1, spec.name, RRType.A, dnssec_ok=True, checking_disabled=True
            )
            response = universe.network.query(
                stub.address, resolver.address, query
            )
            assert response.rcode is RCode.NOERROR
            assert not response.flags.ad
        assert not universe.capture.queries_to(universe.registry_address)

    def test_cd_query_still_answers(self, secured_world):
        specs, universe = secured_world
        resolver = universe.make_resolver(correct_bind_config())
        query = Message.make_query(
            7, specs[0].name, RRType.A, dnssec_ok=True, checking_disabled=True
        )
        response = resolver.handle(query)
        assert response.rcode is RCode.NOERROR
        assert response.answer


class TestBogusChains:
    def test_ds_pointing_at_wrong_key_is_bogus(self):
        """A parent-published DS that matches no child DNSKEY makes the
        child bogus (zone-poisoning defence)."""
        from repro.crypto import KeyPool, make_ds
        from repro.dnscore import A, NS
        from repro.servers import AuthoritativeServer
        from repro.zones import ZoneBuilder, standard_ns_hosts
        from repro.netsim import Network, ZeroLatency
        from repro.resolver import (
            RecursiveResolver,
            TrustAnchor,
            TrustAnchorStore,
        )

        pool = KeyPool(seed=91, pool_size=8, modulus_bits=256)
        network = Network(latency=ZeroLatency())
        wrong_keys = pool.fresh_keyset()
        child_keys = pool.keys_for_zone(n("victim.test"))

        child = ZoneBuilder(n("victim.test"))
        child.with_ns(standard_ns_hosts(n("victim.test"), ["10.9.0.2"]))
        child.with_address(n("victim.test"), ipv4="10.9.0.9")
        child_zone = child.signed(child_keys)

        tld = ZoneBuilder(n("test"))
        tld.with_ns(standard_ns_hosts(n("test"), ["10.9.0.1"]))
        # Poisoned DS: digest of the WRONG key.
        tld.zone.add(
            n("victim.test"), RRType.NS, [NS(n("ns1.victim.test"))]
        )
        tld.zone.add(n("ns1.victim.test"), RRType.A, [A("10.9.0.2")])
        tld.zone.add(
            n("victim.test"), RRType.DS,
            [make_ds(n("victim.test"), wrong_keys.ksk.dnskey)],
        )
        tld_keys = pool.keys_for_zone(n("test"))
        tld_zone = tld.signed(tld_keys)

        root = ZoneBuilder(Name(()))
        root.with_ns([(n("ns1.rootsrv.test"), "10.9.0.0")])
        root.delegate(n("test"), standard_ns_hosts(n("test"), ["10.9.0.1"]), child_keyset=tld_keys)
        root_keys = pool.keys_for_zone(Name(()))
        root_zone = root.signed(root_keys)

        network.register("10.9.0.0", AuthoritativeServer([root_zone]))
        network.register("10.9.0.1", AuthoritativeServer([tld_zone]))
        network.register("10.9.0.2", AuthoritativeServer([child_zone]))

        anchors = TrustAnchorStore()
        anchors.add(TrustAnchor(zone=Name(()), dnskey=root_keys.ksk.dnskey))
        resolver = RecursiveResolver(
            network=network,
            address="10.9.0.100",
            config=correct_bind_config(dlv_anchor_included=False),
            root_hints=["10.9.0.0"],
            anchors=anchors,
        )
        network.register(resolver.address, resolver)
        result = resolver.resolve(n("victim.test"), RRType.A)
        assert result.status is ValidationStatus.BOGUS
        assert result.rcode is RCode.SERVFAIL
