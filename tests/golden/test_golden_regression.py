"""Golden-file regression suite for the headline numbers.

Each golden file pins, for one seed, the quantities the paper's
evaluation leads with: the Case-2 leak proportion, the
validation-utility fraction, the DLV query counts, the status/rcode
histograms, and the (static) Table 1 environment rows.  The runs are
small sharded sweeps, so a golden mismatch localises a behaviour change
to a seed and a headline metric instead of a distant assertion.

On intentional behaviour changes, regenerate with::

    pytest tests/golden --update-golden

and commit the resulting JSON diff.  On failure the assertion message
carries a unified diff of the golden vs observed JSON.
"""

import difflib
import json
import pathlib

import pytest

from repro.analysis import table1_environments
from repro.core import (
    SerialExecutor,
    run_sharded_experiment,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config

GOLDEN_DIR = pathlib.Path(__file__).parent

SEEDS = (2016, 2017, 2018)
DOMAINS = 40
FILLER = 1500
SHARDS = 2


def compute_headline(seed):
    """The pinned quantities for one seed, as a JSON-stable dict."""
    workload = standard_workload(DOMAINS, seed=seed)
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=seed
    )
    result = run_sharded_experiment(
        factory,
        correct_bind_config(),
        workload.names(DOMAINS),
        seed=seed,
        shards=SHARDS,
        executor=SerialExecutor(),
    )
    leak = result.leakage
    rows, _ = table1_environments()
    return {
        "seed": seed,
        "domains": DOMAINS,
        "filler": FILLER,
        "shards": SHARDS,
        "summary": result.summary(),
        "dlv_queries": leak.dlv_queries,
        "case1_queries": leak.case1_queries,
        "case2_queries": leak.case2_queries,
        "case2_fraction": round(leak.case2_fraction, 6),
        "leaked_count": leak.leaked_count,
        "leaked_proportion": round(leak.leaked_proportion, 6),
        "utility_fraction": round(leak.utility_fraction, 6),
        "tld_level_queries": leak.tld_level_queries,
        "noerror_responses": leak.noerror_responses,
        "nxdomain_responses": leak.nxdomain_responses,
        "status_counts": dict(sorted(result.status_counts.items())),
        "rcode_counts": dict(sorted(result.rcode_counts.items())),
        "authenticated_answers": result.authenticated_answers,
        "queries_issued": result.overhead.queries_issued,
        "traffic_bytes": result.overhead.traffic_bytes,
        "response_time": round(result.overhead.response_time, 6),
        "table1_environments": table1_rows_as_json(rows),
    }


def table1_rows_as_json(rows):
    return [
        {str(key): _jsonable(value) for key, value in row.items()}
        for row in rows
    ]


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _render(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(seed):
    return GOLDEN_DIR / f"golden_seed_{seed}.json"


@pytest.mark.parametrize("seed", SEEDS)
def test_headline_numbers_match_golden(seed, update_golden):
    observed = _render(compute_headline(seed))
    path = golden_path(seed)
    if update_golden:
        path.write_text(observed, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        f"`pytest tests/golden --update-golden` and commit it"
    )
    expected = path.read_text(encoding="utf-8")
    if observed != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                observed.splitlines(keepends=True),
                fromfile=f"golden/{path.name}",
                tofile="observed",
            )
        )
        pytest.fail(
            "golden mismatch for seed "
            f"{seed} — if the change is intentional, rerun with "
            "--update-golden and commit the diff:\n" + diff
        )


def test_golden_files_are_committed_for_every_seed():
    """The suite must never silently skip a seed because its file is
    missing from the repository."""
    missing = [seed for seed in SEEDS if not golden_path(seed).exists()]
    assert not missing, f"golden files missing for seeds: {missing}"
