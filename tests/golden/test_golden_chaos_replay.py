"""Golden-file regression for chaos-replay fingerprints.

Pins, per seed, the full canonical payload of one small chaos replay —
a strict-policy resolver riding out a scripted registry SERVFAIL outage
under four concurrent users — plus its SHA-256 fingerprint.  Any drift
in the event scheduler's dispatch order, the availability window
accounting, or the fault scripting shows up as a readable JSON diff
here before it shows up anywhere else.

On intentional behaviour changes, regenerate with::

    pytest tests/golden --update-golden

and commit the resulting JSON diff.
"""

import difflib
import json
import pathlib

import pytest

from repro.core import (
    ReplayLoad,
    chaos_replay_fingerprint,
    chaos_replay_payload,
    registry_outage_scenario,
    run_chaos_replay,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RCode
from repro.resolver import DlvOutagePolicy, correct_bind_config

GOLDEN_DIR = pathlib.Path(__file__).parent

SEEDS = (2016, 2017, 2018)
DOMAINS = 15
FILLER = 50
FAULT_START = 100.0
FAULT_END = 700.0


def compute_chaos_payload(seed):
    workload = standard_workload(DOMAINS, seed=seed)
    universe = standard_universe(workload, filler_count=FILLER, seed=seed)
    names = [spec.name for spec in workload.domains]
    load = ReplayLoad(
        users=4,
        per_user_qps=0.05,
        queries=80,
        window_seconds=200.0,
        max_concurrent=16,
        seed=seed,
    )
    result = run_chaos_replay(
        universe,
        correct_bind_config(dlv_outage_policy=DlvOutagePolicy.SERVFAIL),
        names,
        scenario=registry_outage_scenario(
            rcode=RCode.SERVFAIL, start=FAULT_START, end=FAULT_END
        ),
        scenario_label="registry-servfail",
        policy_label="strict",
        load=load,
    )
    return {
        "seed": seed,
        "domains": DOMAINS,
        "filler": FILLER,
        "fingerprint": chaos_replay_fingerprint(result),
        "payload": chaos_replay_payload(result),
    }


def _render(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(seed):
    return GOLDEN_DIR / f"golden_chaos_seed_{seed}.json"


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_replay_matches_golden(seed, update_golden):
    observed = _render(compute_chaos_payload(seed))
    path = golden_path(seed)
    if update_golden:
        path.write_text(observed, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        f"`pytest tests/golden --update-golden` and commit it"
    )
    expected = path.read_text(encoding="utf-8")
    if observed != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                observed.splitlines(keepends=True),
                fromfile=f"golden/{path.name}",
                tofile="observed",
            )
        )
        pytest.fail(
            f"chaos replay drifted from golden for seed {seed}:\n{diff}"
        )


def test_chaos_golden_files_are_committed_for_every_seed():
    missing = [
        golden_path(seed).name
        for seed in SEEDS
        if not golden_path(seed).exists()
    ]
    assert not missing, (
        f"golden files not committed: {missing}; run "
        f"`pytest tests/golden --update-golden`"
    )
