"""The hot-path caches' one promise: byte-identical results.

Every memo in :mod:`repro.perf`'s registry (crypto verify/sign/keygen,
name interning, wire caches, workload memo) skips only redundant pure
computation — the simulation's visible outputs must be bit-for-bit the
same with the caches on, forcibly disabled, or toggled per resolver.
These tests pin that invariant the same way the parallel-equivalence
suite pins the sharding contract: full fingerprints across seeds, trace
JSONL byte for byte, the logical KeyTrap counters, and the adversary
acceptance criteria.  The unit half pins the mechanisms that make the
invariant hold: complete-input memo keys (a tampered signature can never
alias a cached verdict), RNG-state keygen replay, deterministic LRU
eviction, and interning semantics.
"""

import dataclasses
import os
import pickle
import random
import subprocess
import sys

import pytest

from repro import perf
from repro.core import (
    LeakageExperiment,
    MetricsRegistry,
    SerialExecutor,
    deploy_poisoner,
    result_fingerprint,
    run_adversary_matrix,
    run_sharded_experiment,
    standard_universe,
    standard_universe_factory,
    standard_workload,
)
from repro.crypto import KeyPool
from repro.crypto.memo import BoundedMemo, VerifyMemo
from repro.crypto.rsa import generate_keypair
from repro.dnscore import Name, RRType, RRset, TXT
from repro.resolver import ResolverConfig, correct_bind_config
from repro.zones import (
    ZoneBuilder,
    standard_ns_hosts,
    verify_rrset_signature,
)

DOMAINS = 12
FILLER = 200
SHARDS = 2
SEEDS = (2016, 2017, 2018)


@pytest.fixture(autouse=True)
def _caches_restored():
    """Every test leaves the process in the default cached state."""
    yield
    perf.set_caches_enabled(True)


def n(text):
    return Name.from_text(text)


def _sharded_run(seed, trace=False):
    workload = standard_workload(DOMAINS, seed=seed)
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=seed
    )
    return run_sharded_experiment(
        factory,
        correct_bind_config(),
        workload.names(DOMAINS),
        seed=seed,
        shards=SHARDS,
        executor=SerialExecutor(),
        trace=trace,
    )


def _strip_memo_counters(snapshot):
    """The verify-memo's own hit/miss counters exist only when the memo
    does; everything else in the snapshot must be cache-invariant."""
    return {
        key: value
        for key, value in snapshot.items()
        if not key.startswith("validator.verify_memo_")
    }


# ----------------------------------------------------------------------
# End-to-end invariance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprints_identical_with_caches_on_and_off(seed):
    perf.set_caches_enabled(True)
    cached = _sharded_run(seed)
    with perf.caches_disabled():
        uncached = _sharded_run(seed)
    assert result_fingerprint(cached) == result_fingerprint(uncached)


def test_traces_and_keytrap_counters_identical_on_and_off():
    perf.set_caches_enabled(True)
    cached = _sharded_run(SEEDS[0], trace=True)
    with perf.caches_disabled():
        uncached = _sharded_run(SEEDS[0], trace=True)

    cached_print = result_fingerprint(cached)
    uncached_print = result_fingerprint(uncached)
    assert cached_print["traces_jsonl"] == uncached_print["traces_jsonl"]

    cached_counters = cached.metrics["counters"]
    uncached_counters = uncached.metrics["counters"]
    # The KeyTrap cost units advance on every logical check, memo or not.
    for counter in (
        "validator.signature_checks",
        "validator.crypto_verify_calls",
    ):
        assert cached_counters[counter] == uncached_counters[counter]
    assert _strip_memo_counters(cached_counters) == _strip_memo_counters(
        uncached_counters
    )


def test_config_toggle_is_equivalent_to_global_toggle():
    workload = standard_workload(DOMAINS)
    universe_on = standard_universe(workload, filler_count=FILLER)
    enabled = LeakageExperiment(universe_on, correct_bind_config()).run(
        workload.names(DOMAINS)
    )
    universe_off = standard_universe(workload, filler_count=FILLER)
    disabled = LeakageExperiment(
        universe_off, correct_bind_config(hot_path_caches=False)
    ).run(workload.names(DOMAINS))
    assert result_fingerprint(enabled) == result_fingerprint(disabled)


def test_adversary_outcomes_invariant_under_caches():
    """Hardened-vs-poisoner acceptance is identical with caches on/off:
    zero poisoned entries either way, same describe() lines."""

    def cell():
        factory = standard_universe_factory(8, filler_count=100)

        def universe_factory():
            return factory(7)

        names = standard_workload(8).names(8)
        adversaries = {
            "poisoner": lambda u: deploy_poisoner(u, victims=names[:3], seed=7)
        }
        hardened = ResolverConfig()
        configs = {
            "hardened": hardened,
            "unhardened": dataclasses.replace(
                hardened, hardening=hardened.hardening.off()
            ),
        }
        return run_adversary_matrix(
            universe_factory, names, adversaries, configs
        )

    perf.set_caches_enabled(True)
    cached = cell()
    with perf.caches_disabled():
        uncached = cell()
    assert [r.describe() for r in cached] == [r.describe() for r in uncached]
    # The logical KeyTrap counter is part of the report — identical
    # cell by cell, memo or no memo.
    assert [r.crypto_verify_calls for r in cached] == [
        r.crypto_verify_calls for r in uncached
    ]
    by_key = {(r.policy, r.adversary): r for r in cached}
    assert by_key[("hardened", "poisoner")].poisoned_cache_entries == 0


# ----------------------------------------------------------------------
# Toggles
# ----------------------------------------------------------------------


def test_disabling_caches_clears_every_registered_store():
    perf.set_caches_enabled(True)
    standard_workload(DOMAINS)  # populate at least the workload memo
    assert any(
        stats.get("size", 0) > 0
        for stats in perf.hotpath_cache_stats().values()
    )
    perf.set_caches_enabled(False)
    assert not perf.caches_enabled()
    assert all(
        stats.get("size", 0) == 0
        for stats in perf.hotpath_cache_stats().values()
    )


def test_environment_variable_disables_caches_at_import():
    code = "import repro.perf as p; print(p.ENABLED)"
    for value, expected in (("1", "False"), ("", "True"), ("0", "True")):
        env = dict(os.environ, REPRO_DISABLE_HOTPATH_CACHES=value)
        env["PYTHONPATH"] = "src"
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            check=True,
        ).stdout.strip()
        assert output == expected, f"env value {value!r}"


# ----------------------------------------------------------------------
# Verify memo: aliasing is impossible, accounting is deterministic
# ----------------------------------------------------------------------


POOL = KeyPool(seed=11, pool_size=4, modulus_bits=256)


def _signed_zone():
    builder = ZoneBuilder(n("com"))
    builder.with_ns(standard_ns_hosts(n("com"), ["192.0.2.1"]))
    builder.with_rrset(n("txt.com"), RRType.TXT, [TXT(("dlv=1",))])
    return builder.signed(POOL.keys_for_zone(n("com")))


def test_tampered_signature_is_bogus_with_and_without_memo():
    zone = _signed_zone()
    txt = zone.get(n("txt.com"), RRType.TXT)
    rrsig = zone.rrsig_for(n("txt.com"), RRType.TXT).first()
    zsk = zone.keyset.zsk.dnskey
    memo = VerifyMemo(store=BoundedMemo(64))

    assert verify_rrset_signature(txt, rrsig, zsk, memo=memo)
    # Same verification again: served from the memo, same verdict.
    assert verify_rrset_signature(txt, rrsig, zsk, memo=memo)
    assert memo.store_hits == 1

    # Tampered rrset data — different signing input, never aliases.
    forged = RRset(n("txt.com"), RRType.TXT, 3600, (TXT(("dlv=0",)),))
    for _ in range(2):
        assert not verify_rrset_signature(forged, rrsig, zsk, memo=memo)
        assert not verify_rrset_signature(forged, rrsig, zsk)

    # Tampered signature bytes — different memo key, never aliases.
    bad_sig = dataclasses.replace(
        rrsig, signature=bytes(rrsig.signature[:-1]) + b"\x00"
    )
    for _ in range(2):
        assert not verify_rrset_signature(txt, bad_sig, zsk, memo=memo)

    # The honest verification still answers True from the same memo.
    assert verify_rrset_signature(txt, rrsig, zsk, memo=memo)


def test_verify_memo_counters_ignore_cross_resolver_store_warmth():
    """Two resolvers sharing a store must report identical logical
    counters regardless of who warmed it — the property that keeps
    serial and forked shard runs byte-identical."""
    zone = _signed_zone()
    txt = zone.get(n("txt.com"), RRType.TXT)
    rrsig = zone.rrsig_for(n("txt.com"), RRType.TXT).first()
    zsk = zone.keyset.zsk.dnskey

    store = BoundedMemo(64)
    metrics_a, metrics_b = MetricsRegistry(), MetricsRegistry()
    memo_a = VerifyMemo(store=store, metrics=metrics_a)
    memo_b = VerifyMemo(store=store, metrics=metrics_b)

    assert verify_rrset_signature(txt, rrsig, zsk, memo=memo_a)
    assert verify_rrset_signature(txt, rrsig, zsk, memo=memo_b)

    # b's modexp was skipped via a's store entry...
    assert memo_b.store_hits == 1
    # ...but both resolvers report the same first-sight accounting.
    for registry in (metrics_a, metrics_b):
        counters = registry.snapshot()["counters"]
        assert counters["validator.verify_memo_misses"] == 1
        assert "validator.verify_memo_hits" not in counters


# ----------------------------------------------------------------------
# Keygen replay, LRU mechanics, interning
# ----------------------------------------------------------------------


def test_keygen_memo_replays_rng_state_transparently():
    perf.set_caches_enabled(True)
    perf.clear_hotpath_caches()

    rng_miss = random.Random(42)
    key_miss = generate_keypair(rng_miss, 256)
    tail_miss = [rng_miss.random() for _ in range(4)]

    # Same seed again: the memo hit must return the same key AND leave
    # the RNG exactly where the real generation would have.
    rng_hit = random.Random(42)
    key_hit = generate_keypair(rng_hit, 256)
    tail_hit = [rng_hit.random() for _ in range(4)]
    assert key_hit.modulus == key_miss.modulus
    assert key_hit.private_exponent == key_miss.private_exponent
    assert tail_hit == tail_miss

    # And the memoized result matches an uncached generation bit for bit.
    with perf.caches_disabled():
        rng_plain = random.Random(42)
        key_plain = generate_keypair(rng_plain, 256)
        tail_plain = [rng_plain.random() for _ in range(4)]
    assert key_plain.modulus == key_miss.modulus
    assert tail_plain == tail_miss


def test_bounded_memo_evicts_least_recently_used():
    memo = BoundedMemo(2)
    memo.put("a", 1)
    memo.put("b", 2)
    assert memo.get("a") == 1  # refresh a; b is now oldest
    memo.put("c", 3)
    assert memo.get("b") is None
    assert memo.get("a") == 1
    assert memo.get("c") == 3
    stats = memo.stats()
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    with pytest.raises(ValueError):
        BoundedMemo(0)


class TestNameInterning:
    def test_equal_names_are_the_same_object_when_enabled(self):
        perf.set_caches_enabled(True)
        assert Name(("www", "example", "com")) is Name(("www", "example", "com"))

    def test_pickle_round_trip_reinterns(self):
        perf.set_caches_enabled(True)
        name = Name(("a", "example", "com"))
        clone = pickle.loads(pickle.dumps(name))
        assert clone is name

    def test_equality_and_hash_survive_disabling(self):
        with perf.caches_disabled():
            first = Name(("x", "example", "org"))
            second = Name(("x", "example", "org"))
            # No interning: distinct objects, still equal, same hash.
            assert first is not second
            assert first == second
            assert hash(first) == hash(second)

    def test_validation_runs_in_both_modes(self):
        too_long = "a" * 64
        with pytest.raises(ValueError):
            Name((too_long, "com"))
        with perf.caches_disabled():
            with pytest.raises(ValueError):
                Name((too_long, "com"))
