"""Tests for the report builder and the CLI."""

import pytest

from repro.analysis.report import ReportScale, build_report
from repro.cli import build_parser, main


class TestReportScale:
    def test_quick_defaults(self):
        scale = ReportScale.quick()
        assert max(scale.sweep_sizes) <= 1000

    def test_paper_is_bigger(self):
        quick = ReportScale.quick()
        paper = ReportScale.paper()
        assert max(paper.sweep_sizes) > max(quick.sweep_sizes)
        assert paper.filler_count > quick.filler_count


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        scale = ReportScale(
            sweep_sizes=(50, 150),
            table_sizes=(50,),
            filler_count=1500,
            fig11_size=50,
            ditl_scale=0.003,
        )
        return build_report(scale)

    def test_contains_every_artifact(self, report):
        for marker in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Fig 8",
            "Fig 9",
            "Fig 10",
            "Fig 11",
            "Fig 12",
            "DNS-OARC",
        ):
            assert marker in report, f"missing {marker}"

    def test_mentions_paper_baselines(self, report):
        assert "92,705,013" in report

    def test_is_plain_text(self, report):
        assert report.endswith("\n")
        assert "\t" not in report


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("info", "quickstart", "sweep", "tables", "report", "attack"):
            args = parser.parse_args(
                [command] if command in ("info",) else [command]
            )
            assert callable(args.func)

    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Look-Aside" in out

    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--domains", "15", "--filler", "300"]) == 0
        out = capsys.readouterr().out
        assert "leaked domains" in out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "--sizes", "20,40", "--filler", "300"]) == 0
        out = capsys.readouterr().out
        assert "Fig 8" in out and "Fig 9" in out

    def test_attack_command(self, capsys):
        assert main(["attack", "--domains", "10", "--filler", "200"]) == 0
        out = capsys.readouterr().out
        assert "Attack demonstrations" in out

    def test_report_tiny_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["report", "--scale", "tiny", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert str(target) in out
        text = target.read_text()
        assert "Table 5" in text and "Fig 12" in text

    def test_tables_command(self, capsys):
        assert main(["tables", "--sizes", "30", "--filler", "400"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Table 5" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
