"""Tests for the sweep/figures plumbing and the standard setup helpers."""

import pytest

from repro.analysis import leakage_sweep
from repro.analysis.render import format_series
from repro.core import (
    DEFAULT_REGISTRY_FILLER_COUNT,
    EXPERIMENT_MODULUS_BITS,
    standard_experiment,
    standard_universe,
    standard_workload,
)
from repro.resolver import broken_anchor_bind_config
from repro.servers import DenialMode


class TestStandardSetup:
    def test_workload_seeded_and_sized(self):
        workload = standard_workload(40)
        assert len(workload) == 40
        assert standard_workload(40).names() == workload.names()

    def test_workload_overrides(self):
        workload = standard_workload(20, signed_fraction=0.5)
        signed = sum(1 for s in workload if s.signed)
        assert signed >= 5

    def test_universe_overrides_forwarded(self):
        workload = standard_workload(10)
        universe = standard_universe(
            workload, filler_count=50, registry_denial=DenialMode.NSEC3
        )
        assert universe.params.registry_denial is DenialMode.NSEC3
        assert universe.registry_zone.deposit_count() >= 50

    def test_experiment_config_override(self):
        experiment = standard_experiment(
            10, broken_anchor_bind_config(), filler_count=50
        )
        assert not experiment.config.root_anchor_available

    def test_default_constants(self):
        assert DEFAULT_REGISTRY_FILLER_COUNT >= 10000
        assert EXPERIMENT_MODULUS_BITS in (256, 512)


class TestLeakageSweep:
    def test_deterministic(self):
        a = leakage_sweep(sizes=(30, 60), filler_count=300)
        b = leakage_sweep(sizes=(30, 60), filler_count=300)
        assert [(p.domains, p.leaked_domains) for p in a] == [
            (p.domains, p.leaked_domains) for p in b
        ]

    def test_sizes_sorted_internally(self):
        points = leakage_sweep(sizes=(60, 30), filler_count=300)
        assert [p.domains for p in points] == [30, 60]

    def test_dlv_queries_cumulative(self):
        points = leakage_sweep(sizes=(30, 60), filler_count=300)
        assert points[1].dlv_queries >= points[0].dlv_queries

    def test_sweep_respects_config(self):
        strict = leakage_sweep(
            sizes=(40,), filler_count=300, config=broken_anchor_bind_config()
        )
        assert strict[0].leaked_domains > 0


class TestRenderEdges:
    def test_empty_series(self):
        text = format_series("x", "y", [])
        assert "x" in text

    def test_zero_peak(self):
        text = format_series("x", "y", [(1, 0.0), (2, 0.0)])
        assert "#" not in text
