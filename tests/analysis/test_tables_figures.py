"""Tests for the table/figure regeneration layer (small scales)."""

import pytest

from repro.analysis import (
    fig8_dlv_queries,
    fig9_leak_proportion,
    fig10_overhead_breakdown,
    fig11_remedy_comparison,
    fig12_ditl,
    format_series,
    format_table,
    leakage_sweep,
    model_population,
    percent,
    prevalence_estimate,
    survey_breakdown,
    table1_environments,
    table2_config_variations,
    table3_secured_domains,
    table4_query_types,
    table5_txt_overhead,
)


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or "|" in line for line in lines)

    def test_format_series_bars(self):
        text = format_series("x", "y", [(1, 10), (2, 20)])
        assert "#" in text

    def test_percent(self):
        assert percent(0.1234) == "12.3%"


class TestStaticTables:
    def test_table1_has_eight_rows(self):
        rows, text = table1_environments()
        assert len(rows) == 8
        assert "CentOS 6.7" in text
        assert "9.8.4" in text  # Debian 7 package BIND

    def test_table2_rows_and_compliance(self):
        rows, text = table2_config_variations()
        by_installer = {r["installer"]: r for r in rows}
        assert by_installer["apt-get"]["validation"] == "Auto"
        assert by_installer["yum"]["dlv"] == "Auto"
        assert not by_installer["apt-get"]["arm_compliant"]
        assert not by_installer["yum"]["arm_compliant"]


class TestSimulatedTables:
    @pytest.fixture(scope="class")
    def table3(self):
        return table3_secured_domains(filler_count=500)

    def test_table3_verdicts_match_paper(self, table3):
        rows, text = table3
        verdicts = {r["config"]: r["leaks"] for r in rows}
        assert verdicts["apt-get"] is False
        assert verdicts["apt-get+ARM-edit"] is True
        assert verdicts["yum"] is False
        assert verdicts["manual"] is True

    def test_table3_yum_serves_islands_only(self, table3):
        rows, _ = table3
        yum = next(r for r in rows if r["config"] == "yum")
        assert yum["islands_via_dlv"] == 5
        assert yum["secured_domains_leaked"] == 0
        assert yum["authenticated"] == 45

    def test_table4_counts(self):
        rows, text = table4_query_types(sizes=(50,), filler_count=500)
        row = rows[0]
        assert row["A"] > row["AAAA"] > 0
        assert row["PTR"] <= 3
        assert "Table 4" in text

    def test_table5_ratios_positive_and_modest(self):
        rows, text = table5_txt_overhead(sizes=(50,), filler_count=500)
        row = rows[0]
        assert 0.0 < row["time_ratio"] < 0.6
        assert 0.0 < row["traffic_ratio"] < 0.3
        assert 0.0 < row["queries_ratio"] < 0.4


class TestFigures:
    @pytest.fixture(scope="class")
    def sweep(self):
        return leakage_sweep(sizes=(50, 200), filler_count=2000)

    def test_sweep_counts_monotone(self, sweep):
        counts = [p.leaked_domains for p in sweep]
        assert counts == sorted(counts)

    def test_sweep_proportion_decays(self, sweep):
        proportions = [p.proportion for p in sweep]
        assert proportions[0] > proportions[-1]

    def test_fig8_fig9_render(self, sweep):
        rows8, text8 = fig8_dlv_queries(sweep)
        rows9, text9 = fig9_leak_proportion(sweep)
        assert len(rows8) == len(rows9) == 2
        assert "Fig 8" in text8 and "Fig 9" in text9

    def test_fig10_from_table5(self):
        rows5, _ = table5_txt_overhead(sizes=(50,), filler_count=500)
        rows, text = fig10_overhead_breakdown(rows5)
        assert "response time" in text
        assert "traffic" in text

    def test_fig11_ordering(self):
        rows, text = fig11_remedy_comparison(size=50, filler_count=500)
        by_option = {r["option"]: r for r in rows}
        # Paper accounting: TXT total > DLV total; Z bit adds nothing.
        assert by_option["TXT"]["queries"] > by_option["DLV"]["queries"]
        assert by_option["Z bit"]["queries"] == by_option["DLV"]["queries"]
        # Deployed: both remedies eliminate leakage.
        assert by_option["TXT"]["leaked"] == 0
        assert by_option["Z bit"]["leaked"] == 0
        assert by_option["DLV"]["leaked"] > 0

    def test_fig12_summary(self):
        summary, text = fig12_ditl(scale=0.005)
        assert summary["minutes"] == 420
        assert 80_000_000 < summary["total_queries_rescaled"] < 110_000_000
        assert 0.3 < summary["overhead_gb_rescaled"] < 3.0
        assert "Fig 12a" in text


class TestSurvey:
    def test_breakdown_matches_published(self):
        rows = survey_breakdown()
        by_answer = {r["answer"]: r for r in rows}
        assert by_answer["package-installer defaults"]["respondents"] == 17
        assert by_answer["uses ISC DLV server"]["share"] == pytest.approx(0.625)

    def test_population_size(self):
        assert len(model_population()) == 56

    def test_population_deterministic(self):
        a = [r.config_class for r in model_population(seed=1)]
        b = [r.config_class for r in model_population(seed=1)]
        assert a == b

    def test_prevalence_estimate_fields(self):
        estimate = prevalence_estimate()
        assert estimate["respondents"] == 56.0
        assert 0.0 < estimate["leaks_everything_fraction"] < 1.0
        assert 0.0 < estimate["dlv_enabled_fraction"] <= 1.0
