"""Tests for the per-TLD breakdown and the NSEC5 denial mode."""

import pytest

from repro.analysis import per_tld_leakage, render_per_tld
from repro.core import LeakageExperiment, NsecZoneWalker
from repro.crypto import KeyPool
from repro.dnscore import Name, RRType
from repro.netsim import Network, ZeroLatency
from repro.resolver import correct_bind_config
from repro.servers import DenialMode, DLVRegistryServer
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


def n(text):
    return Name.from_text(text)


class TestPerTldBreakdown:
    @pytest.fixture(scope="class")
    def run(self):
        workload = AlexaWorkload(120, WorkloadParams(seed=131))
        universe = Universe(
            workload.domains,
            UniverseParams(
                modulus_bits=256,
                registry_filler=tuple(workload.registry_filler(3000)),
            ),
        )
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        result = experiment.run(workload.names(120))
        return workload, result

    def test_rows_cover_all_queried_tlds(self, run):
        workload, result = run
        rows = per_tld_leakage(result, workload.names(120))
        queried_tlds = {name.labels[-1] for name in workload.names(120)}
        assert {row["tld"] for row in rows} == queried_tlds

    def test_totals_consistent(self, run):
        workload, result = run
        rows = per_tld_leakage(result, workload.names(120))
        assert sum(r["queried"] for r in rows) == 120
        assert sum(r["leaked"] for r in rows) == result.leakage.leaked_count

    def test_deposit_free_tlds_suppressed_harder(self, run):
        """The calibrated registry has no entries in ru/cn/io/xyz/uk:
        their leak proportion must be below the covered TLDs'."""
        workload, result = run
        rows = {r["tld"]: r for r in per_tld_leakage(result, workload.names(120))}
        uncovered = [
            rows[tld]
            for tld in ("ru", "cn", "uk")
            if tld in rows and rows[tld]["queried"] >= 3
        ]
        covered = [rows[tld] for tld in ("com",) if tld in rows]
        if not uncovered or not covered:
            pytest.skip("workload sample too small for this comparison")
        avg_uncovered = sum(r["proportion"] for r in uncovered) / len(uncovered)
        avg_covered = sum(r["proportion"] for r in covered) / len(covered)
        assert avg_uncovered < avg_covered

    def test_render(self, run):
        workload, result = run
        text = render_per_tld(per_tld_leakage(result, workload.names(120)))
        assert "TLD" in text and "com" in text


POOL = KeyPool(seed=141, pool_size=8, modulus_bits=256)


class TestNsec5Mode:
    def build(self, denial):
        network = Network(latency=ZeroLatency())
        server = DLVRegistryServer.build(
            origin=n("dlv.isc.org"),
            keyset=POOL.keys_for_zone(n("dlv.isc.org")),
            deposits={n("alpha.com"): POOL.keys_for_zone(n("alpha.com"))},
            denial=denial,
        )
        network.register("registry", server)
        return network, server

    def test_mode_properties(self):
        assert DenialMode.NSEC.allows_aggressive_caching
        assert DenialMode.NSEC.allows_enumeration
        for mode in (DenialMode.NSEC3, DenialMode.NSEC5):
            assert not mode.allows_aggressive_caching
            assert not mode.allows_enumeration

    def test_nsec5_denial_is_hashed(self):
        network, server = self.build(DenialMode.NSEC5)
        result = server.registry.lookup(
            n("missing.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        types = [r.rtype for r in result.authority]
        assert RRType.NSEC not in types
        assert RRType.NSEC3 in types  # hashed-denial wire form

    def test_nsec5_resists_enumeration(self):
        network, server = self.build(DenialMode.NSEC5)
        walker = NsecZoneWalker(network, "registry", n("dlv.isc.org"))
        result = walker.walk(max_queries=20)
        assert not result.complete
        assert result.enumerated_domains(n("dlv.isc.org")) == []

    def test_nsec5_positive_answers_intact(self):
        network, server = self.build(DenialMode.NSEC5)
        result = server.registry.lookup(n("alpha.com.dlv.isc.org"), RRType.DLV)
        assert result.answer
