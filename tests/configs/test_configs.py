"""Tests for the BIND/Unbound installation models and environments."""

import pytest

from repro.configs import (
    Environment,
    InstallMethod,
    OPERATING_SYSTEMS,
    OsFamily,
    UnboundInstall,
    all_environments,
    config_from_install,
    config_from_unbound_install,
    named_conf_for,
    unbound_conf_for,
)


class TestBindDefaults:
    def test_apt_get_default_has_no_dlv(self):
        config = config_from_install(InstallMethod.APT_GET)
        assert not config.lookaside_enabled
        assert config.root_anchor_available  # validation auto

    def test_apt_get_arm_edit_is_the_trap(self):
        """Table 3's apt-get†: validation yes + DLV auto, anchor still
        missing — everything will flow to DLV."""
        config = config_from_install(InstallMethod.APT_GET, arm_edited=True)
        assert config.lookaside_enabled
        assert not config.root_anchor_available

    def test_yum_default_enables_dlv_with_anchor(self):
        config = config_from_install(InstallMethod.YUM)
        assert config.lookaside_enabled
        assert config.root_anchor_available

    def test_manual_default_misses_anchor(self):
        config = config_from_install(InstallMethod.MANUAL)
        assert config.lookaside_enabled
        assert not config.root_anchor_available

    def test_manual_with_anchor_override_is_correct(self):
        config = config_from_install(InstallMethod.MANUAL, anchor_included=True)
        assert config.root_anchor_available


class TestNamedConfRendering:
    def test_apt_get_matches_fig4(self):
        text = named_conf_for(InstallMethod.APT_GET)
        assert "dnssec-validation auto" in text
        assert "lookaside" not in text
        assert "bind.keys" not in text

    def test_yum_matches_fig5(self):
        text = named_conf_for(InstallMethod.YUM)
        assert "dnssec-enable yes" in text
        assert "dnssec-validation yes" in text
        assert "dnssec-lookaside auto" in text
        assert 'include "/etc/bind.keys"' in text

    def test_manual_matches_fig6(self):
        text = named_conf_for(InstallMethod.MANUAL)
        assert "dnssec-lookaside auto" in text

    def test_arm_edited_apt_get(self):
        text = named_conf_for(InstallMethod.APT_GET, arm_edited=True)
        assert "dnssec-lookaside auto" in text
        assert "bind.keys" not in text  # the forgotten line


class TestUnbound:
    def test_package_install_validates_without_dlv(self):
        config = config_from_unbound_install(UnboundInstall.PACKAGE)
        assert config.validation_machinery_active
        assert not config.lookaside_enabled

    def test_manual_default_disables_everything(self):
        config = config_from_unbound_install(UnboundInstall.MANUAL_DEFAULT)
        assert not config.validation_machinery_active

    def test_manual_configured_matches_fig7(self):
        text = unbound_conf_for(UnboundInstall.MANUAL_CONFIGURED)
        assert "auto-trust-anchor-file" in text
        assert "dlv-anchor-file" in text
        config = config_from_unbound_install(UnboundInstall.MANUAL_CONFIGURED)
        assert config.lookaside_enabled and config.root_anchor_available

    def test_manual_default_conf_is_commented_out(self):
        text = unbound_conf_for(UnboundInstall.MANUAL_DEFAULT)
        assert "# auto-trust-anchor-file" in text

    def test_no_unbound_state_leaks_everything(self):
        """The paper's Section 4.4 claim: Unbound's config style makes
        the flood-DLV misconfiguration unrepresentable."""
        for install in UnboundInstall:
            config = config_from_unbound_install(install)
            floods_dlv = (
                config.lookaside_enabled and not config.root_anchor_available
            )
            assert not floods_dlv


class TestEnvironments:
    def test_sixteen_per_resolver(self):
        assert len(all_environments("bind")) == 16
        assert len(all_environments("unbound")) == 16

    def test_rejects_unknown_resolver(self):
        with pytest.raises(ValueError):
            all_environments("djbdns")

    def test_versions_match_table1(self):
        environments = {
            (env.os.name, env.manual_install): env
            for env in all_environments("bind")
        }
        assert environments[("Debian 7", False)].version == "9.8.4"
        assert environments[("Fedora 22", False)].version == "9.10.2"
        assert environments[("Debian 7", True)].version == "9.10.3"

    def test_installer_follows_os_family(self):
        for env in all_environments("bind"):
            if env.manual_install:
                assert env.installer == "manual"
            elif env.os.family is OsFamily.DEBIAN:
                assert env.installer == "apt-get"
            else:
                assert env.installer == "yum"

    def test_default_config_per_installer(self):
        for env in all_environments("bind"):
            config = env.default_config()
            if env.installer == "yum":
                assert config.lookaside_enabled
                assert config.root_anchor_available
            elif env.installer == "apt-get":
                assert not config.lookaside_enabled

    def test_describe(self):
        env = all_environments("bind")[0]
        text = env.describe()
        assert "CentOS 6.7" in text and "bind" in text

    def test_unbound_environments_never_flood(self):
        for env in all_environments("unbound"):
            config = env.default_config()
            assert not (
                config.lookaside_enabled and not config.root_anchor_available
            )
